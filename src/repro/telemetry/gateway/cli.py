"""``python -m repro gateway`` -- fleet gateway episode + status report.

Runs a deterministic fleet episode through the full stack (windowed
ARQ clients -> adversarial channel -> :class:`FleetGateway` -> ingest
-> telemetry store), verifies the chaos invariants on the way out, and
prints the operator status dashboard (or the JSON document behind it).

``--overload`` starves the gateway's drain budget so the overload
ladder escalates and sheds by class mid-episode -- the dashboard then
shows the shed accounting and the ladder's logged transitions.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.telemetry.gateway.chaos import GatewayChaosScenario
from repro.telemetry.gateway.overload import OverloadPolicy
from repro.telemetry.gateway.status import render_status, status_report
from repro.telemetry.uplink.chaos import ChaosConfig, ScenarioResult


def episode_scenario(overload: bool) -> GatewayChaosScenario:
    """The episode the CLI (and the example) runs."""
    if overload:
        return GatewayChaosScenario(
            name="episode_overload",
            description="drain-starved episode: ladder escalates, "
                        "sheds by class, recovers",
            drain_per_step=8,
            recv_window=64,
            overload=OverloadPolicy(
                degraded_above=24, safe_above=64, recover_below=8,
                dwell=4,
            ),
            faulty_every=2,
            check_digest=False,
            expect_shed=True,
        )
    return GatewayChaosScenario(
        name="episode",
        description="clean gateway episode (handshake, windowed "
                    "uplink, status report)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro gateway",
        description="overload-hardened fleet gateway: run an episode "
                    "and print the fleet status report",
    )
    parser.add_argument("--vehicles", type=int, default=5)
    parser.add_argument("--frames", type=int, default=24)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--overload", action="store_true",
                        help="starve the drain budget so the overload "
                             "ladder escalates and sheds by class")
    parser.add_argument("--json", action="store_true",
                        help="print the status document as JSON")
    parser.add_argument("--report", type=Path, default=None,
                        metavar="PATH",
                        help="write the status JSON here")
    args = parser.parse_args(argv)

    scenario = episode_scenario(args.overload)
    config = ChaosConfig(
        vehicles=args.vehicles, frames=args.frames, seed=args.seed,
        protocol="windowed",
    )
    with tempfile.TemporaryDirectory(prefix="repro-gateway-") as tmp:
        driver = scenario.make_driver(config, Path(tmp))
        result: ScenarioResult = driver.run()
        report = status_report(
            driver.ingestor.service, gateway=driver.gateway
        )
    report["episode"] = result.to_json()

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_status(report))
        print()
        print(result.render())
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"report -> {args.report}")
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
