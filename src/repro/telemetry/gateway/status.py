"""Fleet status endpoint: one JSON document over the telemetry store.

:func:`status_report` is the gateway's operator view -- the same
document a ``GET /status`` would serve, built from the live
:class:`~repro.telemetry.service.TelemetryService`:

- per-vehicle heartbeat/liveness tiles (last-seen age against a
  heartbeat deadline, open sequence gaps, reorders, duplicates);
- fleet-wide per-segment latency percentiles (p50/p95/p99 from the
  merged streaming sketches);
- the (m,k) chain summary and an alert feed (most recent first).

:func:`render_status` turns the document into the terminal dashboard
``python -m repro gateway --status`` prints.  Both are pure functions
of the service state, so a status report replays byte-identically with
the run that produced it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.telemetry.service import TelemetryService

#: A vehicle whose last record is older than this many nanoseconds is
#: flagged stale in the heartbeat tiles (2 virtual seconds).
DEFAULT_STALE_AFTER_NS = 2_000_000_000


def status_report(
    service: TelemetryService,
    now_ns: Optional[int] = None,
    stale_after_ns: int = DEFAULT_STALE_AFTER_NS,
    alert_tail: int = 10,
    gateway: Optional[object] = None,
) -> dict:
    """Build the status document (JSON-able, deterministic ordering)."""
    store = service.store
    if now_ns is None:
        now_ns = service.watermark_ns
    vehicles = []
    for source in sorted(store.sources):
        state = store.source_state(source)
        age_ns = (
            now_ns - state.last_seen_ns if state.last_seen_ns >= 0 else -1
        )
        vehicles.append({
            "source": source,
            "records": state.records,
            "last_seen_ns": state.last_seen_ns,
            "age_ns": age_ns,
            "stale": bool(age_ns < 0 or age_ns > stale_after_ns),
            "last_seq": state.last_seq,
            "open_gaps": state.seq_gaps,
            "gap_open": bool(state.gap_open),
            "reorders": state.reorders,
            "duplicates": state.duplicates,
            "level": state.level.value
            if hasattr(state.level, "value") else state.level,
        })
    alerts = service.alert_log.alerts
    report = {
        "schema": "repro-gateway-status/1",
        "now_ns": now_ns,
        "vehicles": vehicles,
        "stale_vehicles": sum(1 for v in vehicles if v["stale"]),
        "latency": store.segment_percentiles(),
        "chains": store.chain_summary(),
        "violations": store.total_violations(),
        "violations_by_source": store.violations_by_source(),
        "alert_counts": service.alert_log.counts_by_rule(),
        "alert_feed": [
            alert.to_json() for alert in alerts[-alert_tail:][::-1]
        ],
        "service": service.stats(),
    }
    if gateway is not None and hasattr(gateway, "stats"):
        report["gateway"] = gateway.stats()
    return report


def _fmt_ns(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value / 1e6:8.3f}ms"


def render_status(report: dict) -> str:
    """The terminal dashboard for one status document."""
    lines: List[str] = []
    lines.append(
        f"fleet status @ {report['now_ns']} ns  "
        f"(vehicles={len(report['vehicles'])}, "
        f"stale={report['stale_vehicles']}, "
        f"violations={report['violations']})"
    )
    gateway = report.get("gateway")
    if gateway:
        shed = gateway.get("shed_by_class", {})
        lines.append(
            f"  gateway: mode={gateway.get('mode')} "
            f"sessions={gateway.get('sessions')} "
            f"backlog={gateway.get('backlog_records')} "
            f"shed={sum(shed.values())} {dict(sorted(shed.items()))}"
        )
    lines.append("")
    lines.append(
        f"  {'vehicle':<14} {'records':>8} {'age':>12} {'gaps':>5} "
        f"{'reord':>6} {'dups':>5}  liveness"
    )
    for vehicle in report["vehicles"]:
        age = vehicle["age_ns"]
        age_text = "-" if age < 0 else f"{age / 1e6:.1f}ms"
        flag = "STALE" if vehicle["stale"] else "ok"
        lines.append(
            f"  {vehicle['source']:<14} {vehicle['records']:>8} "
            f"{age_text:>12} {vehicle['open_gaps']:>5} "
            f"{vehicle['reorders']:>6} {vehicle['duplicates']:>5}  {flag}"
        )
    lines.append("")
    lines.append(
        f"  {'segment':<22} {'count':>8} {'p50':>10} {'p95':>10} "
        f"{'p99':>10}"
    )
    for name, tile in report["latency"].items():
        lines.append(
            f"  {name:<22} {tile['count']:>8} "
            f"{_fmt_ns(tile['p50']):>10} {_fmt_ns(tile['p95']):>10} "
            f"{_fmt_ns(tile['p99']):>10}"
        )
    feed = report["alert_feed"]
    lines.append("")
    lines.append(f"  alerts ({sum(report['alert_counts'].values())} total)")
    for alert in feed:
        lines.append(
            f"    [{alert['severity']}] {alert['rule']} "
            f"{alert['source']} @ {alert['timestamp_ns']} "
            f"{alert['detail']}".rstrip()
        )
    if not feed:
        lines.append("    (none)")
    return "\n".join(lines)
