"""Gateway chaos scenarios: overload, backpressure, and crash healing.

Extends the uplink chaos harness (:mod:`repro.telemetry.uplink.chaos`)
with a :class:`FleetGateway` standing between the adversarial channel
and the ingestor.  Same determinism contract -- seeded RNG, virtual
step clock, byte-identical replay -- plus the gateway-specific
invariants:

- the per-vehicle ledger law grows a fourth disjoint bucket:
  ``offered == acked + spooled + evicted + shed``;
- shedding is **never silent**: every shed record is settled in dedup,
  announced in an ack, and counted by traffic class -- and the alert
  class is never shed in any mode;
- a gateway crash loses only soft state: sessions and backlog die,
  clients re-handshake on REJECT ``hello``, retransmits replay through
  dedup, and the store digest still converges;
- explicit backpressure (window-update acks, rate ``retry_after``)
  stalls clients without losing records.

``python -m repro chaos`` appends these scenarios to the sweep when
the protocol is ``windowed`` (the default).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Optional

from repro.telemetry.gateway.overload import (
    CLASS_ALERT,
    OverloadPolicy,
)
from repro.telemetry.gateway.ratelimit import RateLimitConfig
from repro.telemetry.gateway.service import FleetGateway, GatewayConfig
from repro.telemetry.uplink.chaos import (
    ChaosConfig,
    ChaosDriver,
    ChaosScenario,
    CrashEvent,
    ScenarioResult,
)
from repro.telemetry.uplink.transport import ChannelFaultPlan

#: The shared secret every scenario's gateway expects.
GATEWAY_TOKEN = "fleet-secret"

#: Gateway counters folded into the scenario's protocol section.  The
#: client has its own ``rate_rejects`` (REJECTs *received*), so the
#: gateway's count (REJECTs *issued*) gets a distinct name.
_GATEWAY_FOLD = {
    "auth_rejects": "auth_rejects",
    "session_rejects": "session_rejects",
    "window_rejects": "window_rejects",
    "rate_rejects": "gateway_rate_rejects",
}


@dataclass
class GatewayChaosScenario(ChaosScenario):
    """One gateway fault schedule + admission/overload shape."""

    recv_window: int = 128
    drain_per_step: int = 256
    rate: RateLimitConfig = None  # type: ignore[assignment]
    overload: OverloadPolicy = None  # type: ignore[assignment]
    #: Stream fault cadence (nonzero gives a dashboard/telemetry/alert
    #: class mix, which overload shedding needs).
    faulty_every: int = 0
    #: Index of a vehicle configured with the wrong shared secret.
    bad_token_vehicle: Optional[int] = None
    expect_shed: bool = False
    expect_rate_rejects: bool = False
    expect_window_stalls: bool = False
    expect_auth_reject: bool = False

    def __post_init__(self) -> None:
        if self.rate is None:
            self.rate = RateLimitConfig()
        if self.overload is None:
            self.overload = OverloadPolicy()

    def make_driver(
        self, config: ChaosConfig, workdir: Path
    ) -> "GatewayChaosDriver":
        return GatewayChaosDriver(self, config, workdir)


def gateway_scenarios() -> list:
    """The gateway leg of the chaos sweep."""
    return [
        GatewayChaosScenario(
            name="gw_window_stall",
            description="tiny receive window + slow drain: clients "
                        "stall on window updates, then heal",
            recv_window=16,
            drain_per_step=8,
            expect_window_stalls=True,
        ),
        GatewayChaosScenario(
            name="gw_crash_midwindow",
            description="gateway killed twice with windows in flight;"
                        " replay-through-dedup recovery",
            crashes=(
                CrashEvent(step=8, side="server", down_for=6),
                CrashEvent(step=22, side="server", down_for=6),
            ),
        ),
        GatewayChaosScenario(
            name="gw_partition_inflight",
            description="two-way partition drops a full window in "
                        "flight; retransmits heal",
            up=ChannelFaultPlan(partitions=((12, 32),)),
            down=ChannelFaultPlan(partitions=((12, 32),)),
        ),
        GatewayChaosScenario(
            name="gw_rate_flood",
            description="token buckets far below offered load: rate "
                        "rejects + retry_after pushback",
            rate=RateLimitConfig(capacity=24, refill_per_step=4),
            expect_rate_rejects=True,
        ),
        GatewayChaosScenario(
            name="gw_auth_reject",
            description="one vehicle has the wrong shared secret: "
                        "terminal auth reject, records stay spooled",
            bad_token_vehicle=0,
            check_digest=False,
            expect_auth_reject=True,
        ),
        GatewayChaosScenario(
            name="gw_overload_shed",
            description="drain starved until the ladder sheds by "
                        "class; alerts always pass, ledger holds",
            drain_per_step=8,
            recv_window=64,
            overload=OverloadPolicy(
                degraded_above=24, safe_above=64, recover_below=8,
                dwell=4,
            ),
            faulty_every=2,
            check_digest=False,
            expect_shed=True,
        ),
    ]


class GatewayChaosDriver(ChaosDriver):
    """ChaosDriver with a FleetGateway as the server endpoint."""

    def __init__(
        self, scenario: GatewayChaosScenario, config: ChaosConfig,
        workdir: Path,
    ):
        # Gateway scenarios need frames + sessions: force the windowed
        # protocol, and adopt the scenario's stream fault cadence.
        config = replace(
            config, protocol="windowed",
            faulty_every=scenario.faulty_every,
        )
        self._vehicle_index: Dict[str, int] = {}
        #: Gateway counters folded across gateway lives (soft state
        #: dies with the process; ground truth lives in the driver).
        self.gw_totals: Dict[str, int] = {}
        self.gw_shed_by_class: Dict[str, int] = {}
        super().__init__(scenario, config, workdir)
        self.gateway = FleetGateway(
            self.ingestor.service, self.server_dir,
            self._gateway_config(), _ingestor=self.ingestor,
        )

    def _gateway_config(self) -> GatewayConfig:
        scenario = self.scenario
        return GatewayConfig(
            token=GATEWAY_TOKEN,
            recv_window=scenario.recv_window,
            drain_records_per_step=scenario.drain_per_step,
            rate=scenario.rate,
            overload=scenario.overload,
            fsync=self.config.fsync,
            checkpoint_every=self.config.checkpoint_every,
        )

    def _vehicle_client_config(self, source: str):
        index = self._vehicle_index.setdefault(
            source, len(self._vehicle_index)
        )
        token = GATEWAY_TOKEN
        if index == self.scenario.bad_token_vehicle:
            token = "not-the-secret"
        return self.config.windowed_client_config(token)

    # ------------------------------------------------------------------
    def _deliver_up(self, frame, now: int) -> None:
        if not self.server_up:
            self.up.stats.dead_letter += 1
            self.dead_ingests += 1
            return
        self.gateway.handle_payload(frame.payload, now)

    def _server_step(self, now: int) -> None:
        if not self.server_up:
            return
        self.gateway.step(now)
        for source, payload in self.gateway.poll_outbox():
            self.down.send(payload, src="fleet", dst=source, now=now)

    def _server_idle(self) -> bool:
        return self.gateway.idle()

    # ------------------------------------------------------------------
    def _fold_gateway(self) -> None:
        stats = self.gateway.stats()
        for src_key, dst_key in _GATEWAY_FOLD.items():
            self.gw_totals[dst_key] = (
                self.gw_totals.get(dst_key, 0) + stats[src_key]
            )
        for name, count in stats["shed_by_class"].items():
            self.gw_shed_by_class[name] = (
                self.gw_shed_by_class.get(name, 0) + count
            )

    def _kill(self, event: CrashEvent) -> bool:
        if event.side == "server" and self.server_up:
            self._fold_gateway()
        return super()._kill(event)

    def _recover(self, event: CrashEvent) -> None:
        if event.side != "server":
            super()._recover(event)
            return
        self.gateway, _ = FleetGateway.recover(
            self.server_dir, self._gateway_config(),
            self.config.service_config(),
        )
        self.ingestor = self.gateway.ingestor
        self.server_up = True
        self.server_recoveries += 1

    # ------------------------------------------------------------------
    def _finish_server(self, result: ScenarioResult) -> None:
        scenario = self.scenario
        if self.server_up:
            self._fold_gateway()
        result.protocol.update(self.gw_totals)
        result.protocol["shed_by_class"] = dict(
            sorted(self.gw_shed_by_class.items())
        )
        shed_total = sum(self.gw_shed_by_class.values())
        client_shed = sum(len(v.shed) for v in self.vehicles)

        result.check(
            "alerts_never_shed",
            self.gw_shed_by_class.get(CLASS_ALERT, 0) == 0,
            "the gateway shed alert-bearing records",
        )
        if scenario.expect_shed:
            result.check(
                "shed", shed_total > 0,
                "overload scenario shed nothing",
            )
            if not scenario.crashes:
                # Without crashes every settled shed must have been
                # announced and released client-side: zero silent drops.
                result.check(
                    "shed_announced", client_shed == shed_total,
                    f"client released {client_shed} shed records, "
                    f"gateway settled {shed_total}",
                )
        else:
            result.check(
                "no_shed", shed_total == 0,
                f"{shed_total} records shed without overload pressure",
            )
        if scenario.expect_rate_rejects:
            result.check(
                "rate_rejects",
                self.gw_totals.get("gateway_rate_rejects", 0) > 0,
                "flood scenario saw no rate rejects",
            )
        if scenario.expect_window_stalls:
            result.check(
                "window_stalls",
                result.protocol.get("window_stalls", 0) > 0,
                "backpressure scenario saw no client window stalls",
            )
        if scenario.expect_auth_reject:
            bad = self.vehicles[scenario.bad_token_vehicle or 0]
            result.check(
                "auth_reject",
                self.gw_totals.get("auth_rejects", 0) > 0
                and not bad.acked and not bad.shed,
                "bad-token vehicle was not cleanly rejected",
            )
