"""Deterministic per-source token buckets for gateway admission.

Integer arithmetic on the virtual step counter -- no floats, no wall
clock -- so every admission decision replays byte-identically.  A
bucket holds at most ``capacity`` tokens and refills ``refill_per_step``
tokens per elapsed step (lazily, at the next ``take``); one record
costs one token.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RateLimitConfig:
    """Token-bucket shape shared by every source on a gateway."""

    capacity: int = 256
    refill_per_step: int = 32

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if self.refill_per_step < 1:
            raise ValueError("refill_per_step must be >= 1")


class TokenBucket:
    """One source's admission budget, refilled on the step clock."""

    __slots__ = ("config", "tokens", "_last_step", "taken", "denied")

    def __init__(self, config: RateLimitConfig, now: int = 0):
        self.config = config
        self.tokens = config.capacity
        self._last_step = now
        self.taken = 0
        self.denied = 0

    def _refill(self, now: int) -> None:
        elapsed = now - self._last_step
        if elapsed <= 0:
            return
        self.tokens = min(
            self.config.capacity,
            self.tokens + elapsed * self.config.refill_per_step,
        )
        self._last_step = now

    def take(self, amount: int, now: int) -> bool:
        """Spend *amount* tokens; False (counted) when short."""
        self._refill(now)
        if amount > self.tokens:
            self.denied += 1
            return False
        self.tokens -= amount
        self.taken += amount
        return True

    def retry_after(self, amount: int, now: int) -> int:
        """Steps until *amount* tokens will be available (>= 1)."""
        self._refill(now)
        shortfall = amount - self.tokens
        if shortfall <= 0:
            return 1
        per = self.config.refill_per_step
        return max(1, -(-shortfall // per))

    def to_json(self) -> dict:
        return {
            "tokens": self.tokens,
            "taken": self.taken,
            "denied": self.denied,
        }
