"""Gateway overload ladder and traffic-class shedding policy.

Mirrors the vehicle-side NORMAL -> DEGRADED -> SAFE degradation idiom
(:mod:`repro.faults.degradation`), driven by the gateway's record
backlog instead of chain violations:

- **NORMAL** -- everything is ingested;
- **DEGRADED** -- dashboard traffic (heartbeats) is shed first;
- **SAFE** -- everything but alert-bearing records is shed: mode
  transitions, temporal exceptions and ``miss`` verdicts always get
  through, because they are exactly what an overloaded fleet operator
  must still see.

Every shed record is counted by class and announced to the vehicle in
the next ack's cumulative ``shed`` list -- rejection is explicit,
never a silent drop.  De-escalation requires the backlog to stay below
the low-water mark for ``dwell`` consecutive steps (hysteresis), one
rung at a time, so the ladder cannot flap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.telemetry.records import RecordKind, TelemetryRecord

#: Traffic classes, in shed order (first shed under pressure first).
CLASS_DASHBOARD = "dashboard"
CLASS_TELEMETRY = "telemetry"
CLASS_ALERT = "alert"


def classify(record: TelemetryRecord) -> str:
    """Which traffic class a record belongs to (shedding unit)."""
    kind = record.kind
    if kind in (RecordKind.EXCEPTION, RecordKind.MODE):
        return CLASS_ALERT
    if record.verdict == "miss":
        return CLASS_ALERT
    if kind is RecordKind.HEARTBEAT:
        return CLASS_DASHBOARD
    return CLASS_TELEMETRY


class GatewayMode(enum.Enum):
    """Gateway-level operating mode (the overload ladder rungs)."""

    NORMAL = "normal"
    DEGRADED = "degraded"
    SAFE = "safe"


#: Classes shed at each rung.
SHED_AT = {
    GatewayMode.NORMAL: frozenset(),
    GatewayMode.DEGRADED: frozenset({CLASS_DASHBOARD}),
    GatewayMode.SAFE: frozenset({CLASS_DASHBOARD, CLASS_TELEMETRY}),
}


@dataclass
class OverloadPolicy:
    """Backlog thresholds (records) and de-escalation hysteresis."""

    degraded_above: int = 512
    safe_above: int = 2048
    #: Backlog below this for ``dwell`` steps de-escalates one rung.
    recover_below: int = 128
    dwell: int = 8

    def __post_init__(self) -> None:
        if self.degraded_above < 1:
            raise ValueError("degraded_above must be >= 1")
        if self.safe_above < self.degraded_above:
            raise ValueError("safe_above must be >= degraded_above")
        if not (0 <= self.recover_below <= self.degraded_above):
            raise ValueError(
                "need 0 <= recover_below <= degraded_above"
            )
        if self.dwell < 1:
            raise ValueError("dwell must be >= 1")


class OverloadLadder:
    """Backlog-driven mode machine with logged transitions."""

    def __init__(self, policy: OverloadPolicy):
        self.policy = policy
        self.mode = GatewayMode.NORMAL
        #: ``(step, from, to, backlog)`` -- every rung change.
        self.transitions: List[Tuple[int, str, str, int]] = []
        self._calm_since: int = -1

    def sheds(self, traffic_class: str) -> bool:
        return traffic_class in SHED_AT[self.mode]

    def observe(self, backlog: int, now: int) -> GatewayMode:
        """Fold one step's backlog reading; returns the (new) mode."""
        policy = self.policy
        target = self.mode
        if backlog > policy.safe_above:
            target = GatewayMode.SAFE
        elif backlog > policy.degraded_above:
            if self.mode is not GatewayMode.SAFE:
                target = GatewayMode.DEGRADED
        if target.value != self.mode.value and _rank(target) > _rank(self.mode):
            self._enter(target, backlog, now)
            self._calm_since = -1
            return self.mode
        # De-escalation: one rung after a sustained calm streak.
        if self.mode is not GatewayMode.NORMAL:
            if backlog < policy.recover_below:
                if self._calm_since < 0:
                    self._calm_since = now
                elif now - self._calm_since + 1 >= policy.dwell:
                    down = (
                        GatewayMode.DEGRADED
                        if self.mode is GatewayMode.SAFE
                        else GatewayMode.NORMAL
                    )
                    self._enter(down, backlog, now)
                    self._calm_since = now
            else:
                self._calm_since = -1
        return self.mode

    def _enter(self, mode: GatewayMode, backlog: int, now: int) -> None:
        self.transitions.append(
            (now, self.mode.value, mode.value, backlog)
        )
        self.mode = mode

    def to_json(self) -> dict:
        return {
            "mode": self.mode.value,
            "transitions": [list(t) for t in self.transitions],
        }


def _rank(mode: GatewayMode) -> int:
    return {GatewayMode.NORMAL: 0, GatewayMode.DEGRADED: 1,
            GatewayMode.SAFE: 2}[mode]
