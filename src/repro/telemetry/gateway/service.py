"""The fleet gateway: a long-running front end over the uplink ingestor.

:class:`FleetGateway` is what the passive
:class:`~repro.telemetry.uplink.ingest.UplinkIngestor` becomes when it
has to defend itself: a connection front end over the deterministic
in-process channel (the served socket transport in
:mod:`repro.telemetry.gateway.socket_server` is a thin adapter over
exactly this object) that adds

- a **shared-secret handshake** (HELLO -> WELCOME / REJECT ``auth``):
  data frames from sources without a live session are answered with
  REJECT ``hello`` -- which is also how clients discover a gateway
  crash and re-handshake;
- **per-source token-bucket rate limiting** (REJECT ``rate`` with a
  deterministic ``retry_after``);
- a **bounded per-connection receive window** with explicit
  backpressure: every ack advertises the remaining window, an intake
  overflow answers with a window-update ack instead of silently
  dropping the frame;
- the **overload ladder** (:mod:`repro.telemetry.gateway.overload`):
  under backlog pressure the gateway sheds records by traffic class --
  dashboards first, alert-bearing telemetry never -- each shed seq
  settled in dedup, announced in the next ack's cumulative ``shed``
  list, and counted by class.

Processing is two-phase per virtual step, which is also the batching
that makes the pipelined path fast: :meth:`handle_payload` only
validates and queues; :meth:`step` drains up to
``drain_records_per_step`` records through the ingestor with **one**
log sync and **one coalesced ack per source**.

Crash semantics: everything except the ingestor's WAL + checkpoint is
soft state.  :meth:`recover` rebuilds the ingestor (replay through
dedup), comes back with no sessions and an empty backlog, and the
protocol heals: clients re-handshake on REJECT ``hello`` and
retransmit whatever the backlog lost.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.telemetry.records import TelemetryRecord
from repro.telemetry.service import ServiceConfig, TelemetryService
from repro.telemetry.uplink.ingest import (
    IngestRecoveryReport,
    UplinkIngestor,
)
from repro.telemetry.uplink.transport import (
    HELLO_SCHEMA,
    decode_envelope,
    encode_reject,
    encode_welcome,
)
from repro.telemetry.gateway.overload import (
    CLASS_ALERT,
    CLASS_DASHBOARD,
    CLASS_TELEMETRY,
    OverloadLadder,
    OverloadPolicy,
    classify,
)
from repro.telemetry.gateway.ratelimit import RateLimitConfig, TokenBucket


@dataclass
class GatewayConfig:
    """Admission, backpressure, and overload policy of one gateway."""

    #: Shared secret every vehicle must present in HELLO.
    token: str = "fleet-secret"
    #: Per-connection receive window (records the gateway will buffer
    #: for one source before pushing back).
    recv_window: int = 128
    #: Records drained through the ingestor per step (the service
    #: capacity; backlog above it is what drives the overload ladder).
    drain_records_per_step: int = 256
    rate: RateLimitConfig = field(default_factory=RateLimitConfig)
    overload: OverloadPolicy = field(default_factory=OverloadPolicy)
    fsync: str = "rotate"
    checkpoint_every: Optional[int] = 8

    def __post_init__(self) -> None:
        if self.recv_window < 1:
            raise ValueError("recv_window must be >= 1")
        if self.drain_records_per_step < 1:
            raise ValueError("drain_records_per_step must be >= 1")


class FleetGateway:
    """Sessions + admission + backpressure over an UplinkIngestor."""

    def __init__(
        self,
        service: TelemetryService,
        directory: Path,
        config: Optional[GatewayConfig] = None,
        _ingestor: Optional[UplinkIngestor] = None,
    ):
        self.config = config or GatewayConfig()
        self.service = service
        self.directory = Path(directory)
        self.ingestor = _ingestor if _ingestor is not None else UplinkIngestor(
            service, self.directory, fsync=self.config.fsync,
            checkpoint_every=self.config.checkpoint_every,
        )
        self.ingestor.on_shed_settled = self._note_shed
        self.ladder = OverloadLadder(self.config.overload)
        #: source -> client life presented in HELLO (a live session).
        self.sessions: Dict[str, int] = {}
        self.buckets: Dict[str, TokenBucket] = {}
        #: FIFO intake across sources: ``(source, payload, count)``.
        self._backlog: Deque[Tuple[str, str, int]] = deque()
        self.backlog_records = 0
        self._backlog_by_source: Dict[str, int] = {}
        #: Cumulative shed seqs per source, announced on every ack so a
        #: lost ack can never turn a shed record into a silent drop.
        self._shed: Dict[str, Set[int]] = {}
        #: Traffic class of each nominated seq, so the settle callback
        #: (seqs only) can keep per-class counts honest.
        self._nominated_class: Dict[Tuple[str, int], str] = {}
        #: Control/ack envelopes awaiting the downlink:
        #: ``(source, payload)``.
        self._outbox: List[Tuple[str, str]] = []
        # Counters (never-silent accounting).
        self.hellos = 0
        self.welcomes = 0
        self.auth_rejects = 0
        self.session_rejects = 0
        self.rate_rejects = 0
        self.window_rejects = 0
        self.frames_queued = 0
        self.records_queued = 0
        self.acks_out = 0
        self.corrupt_payloads = 0
        self.shed_by_class: Dict[str, int] = {
            CLASS_DASHBOARD: 0, CLASS_TELEMETRY: 0, CLASS_ALERT: 0,
        }

    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        directory: Path,
        config: Optional[GatewayConfig] = None,
        service_config: Optional[ServiceConfig] = None,
    ) -> Tuple["FleetGateway", IngestRecoveryReport]:
        """Rebuild after a crash: durable ingest state via WAL replay,
        sessions/backlog/buckets start empty (the protocol re-fills
        them -- REJECT ``hello`` triggers re-handshakes)."""
        config = config or GatewayConfig()
        ingestor, report = UplinkIngestor.recover(
            directory, service_config=service_config, fsync=config.fsync,
            checkpoint_every=config.checkpoint_every,
        )
        gateway = cls(ingestor.service, directory, config,
                      _ingestor=ingestor)
        return gateway, report

    # ------------------------------------------------------------------
    def _note_shed(self, source: str, seqs: List[int]) -> None:
        """Ingestor callback: these seqs settled as shed (first time)."""
        self._shed.setdefault(source, set()).update(seqs)
        for seq in seqs:
            traffic_class = self._nominated_class.pop(
                (source, seq), CLASS_TELEMETRY
            )
            self.shed_by_class[traffic_class] += 1

    def _bucket(self, source: str, now: int) -> TokenBucket:
        bucket = self.buckets.get(source)
        if bucket is None:
            bucket = self.buckets[source] = TokenBucket(
                self.config.rate, now
            )
        return bucket

    def advertised_window(self, source: str) -> int:
        """Receive window remaining for one source (explicit
        backpressure: rides every ack and WELCOME)."""
        used = self._backlog_by_source.get(source, 0)
        return max(0, self.config.recv_window - used)

    def _emit(self, source: str, payload: str) -> None:
        self._outbox.append((source, payload))

    def poll_outbox(self) -> List[Tuple[str, str]]:
        """Drain queued control/ack envelopes for the downlink."""
        out = self._outbox
        self._outbox = []
        return out

    def idle(self) -> bool:
        """No queued intake and nothing waiting on the downlink."""
        return self.backlog_records == 0 and not self._outbox

    # ------------------------------------------------------------------
    def handle_payload(self, payload: str, now: int) -> None:
        """Phase one: validate and queue one uplink datagram.

        Every refusal is an explicit, counted reply -- the only silent
        outcome is a corrupt datagram (counted; the client's retransmit
        timer covers it)."""
        if not isinstance(payload, str):
            self.corrupt_payloads += 1
            return
        if "\n" in payload:
            self._handle_frame(payload, now)
            return
        doc = decode_envelope(payload)
        if doc is None:
            self.corrupt_payloads += 1
            return
        if doc.get("schema") == HELLO_SCHEMA and isinstance(
            doc.get("source"), str
        ):
            self._handle_hello(doc, now)
            return
        self.corrupt_payloads += 1

    def _handle_hello(self, doc: dict, now: int) -> None:
        self.hellos += 1
        source = doc["source"]
        if doc.get("token") != self.config.token:
            self.auth_rejects += 1
            self._emit(source, encode_reject(source, "auth"))
            return
        self.sessions[source] = int(doc.get("life", 0))
        self.welcomes += 1
        self._emit(
            source,
            encode_welcome(source, self.advertised_window(source)),
        )

    def _handle_frame(self, payload: str, now: int) -> None:
        header_line = payload.split("\n", 1)[0]
        header = decode_envelope(header_line)
        if header is None or not isinstance(header.get("source"), str):
            self.corrupt_payloads += 1
            return
        source = header["source"]
        count = header.get("count")
        if not isinstance(count, int) or count < 0:
            self.corrupt_payloads += 1
            return
        if source not in self.sessions:
            self.session_rejects += 1
            self._emit(source, encode_reject(source, "hello"))
            return
        bucket = self._bucket(source, now)
        # Empty floor-probe frames are free; record-bearing frames pay
        # one token per record.
        if count and not bucket.take(count, now):
            self.rate_rejects += 1
            self._emit(
                source,
                encode_reject(source, "rate",
                              retry_after=bucket.retry_after(count, now)),
            )
            return
        used = self._backlog_by_source.get(source, 0)
        if used + count > self.config.recv_window:
            # Window overrun: answer with a window update (an ack at
            # the current watermark), never a silent drop.
            self.window_rejects += 1
            self._emit(
                source,
                self.ingestor.ack_payload(
                    source, int(header.get("frame_id", -1)),
                    shed=self._shed_list(source),
                    window=self.advertised_window(source),
                ),
            )
            self.acks_out += 1
            return
        self._backlog.append((source, payload, count))
        self._backlog_by_source[source] = used + count
        self.backlog_records += count
        self.frames_queued += 1
        self.records_queued += count

    # ------------------------------------------------------------------
    def _shed_list(self, source: str) -> Optional[List[int]]:
        shed = self._shed.get(source)
        return sorted(shed) if shed else None

    def _shed_hook(self, records: List[TelemetryRecord]) -> Set[int]:
        """Overload nomination: seqs whose class the ladder sheds."""
        nominated: Set[int] = set()
        for record in records:
            traffic_class = classify(record)
            if self.ladder.sheds(traffic_class):
                nominated.add(record.seq)
                self._nominated_class[(record.source, record.seq)] = (
                    traffic_class
                )
        return nominated

    def step(self, now: int) -> int:
        """Phase two: drain the backlog through the ingestor.

        One log sync and one coalesced ack per source, however many
        frames were drained -- this is the batching that buys the
        pipelined path its throughput."""
        self.ladder.observe(self.backlog_records, now)
        shed_hook = (
            self._shed_hook
            if any(
                self.ladder.sheds(c)
                for c in (CLASS_DASHBOARD, CLASS_TELEMETRY, CLASS_ALERT)
            )
            else None
        )
        budget = self.config.drain_records_per_step
        drained = 0
        acked: Dict[str, int] = {}
        while self._backlog:
            source, payload, count = self._backlog[0]
            if drained and drained + count > budget:
                break
            self._backlog.popleft()
            self._backlog_by_source[source] = max(
                0, self._backlog_by_source.get(source, 0) - count
            )
            self.backlog_records = max(0, self.backlog_records - count)
            drained += count
            header = self.ingestor.ingest_frame(
                payload, now, sync=False, shed=shed_hook
            )
            if header is None:
                continue
            acked[source] = int(header["frame_id"])
        if acked:
            self.ingestor.log.sync()
            for source, frame_id in sorted(acked.items()):
                self._emit(
                    source,
                    self.ingestor.ack_payload(
                        source, frame_id,
                        shed=self._shed_list(source),
                        window=self.advertised_window(source),
                    ),
                )
                self.acks_out += 1
        return drained

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "mode": self.ladder.mode.value,
            "sessions": len(self.sessions),
            "backlog_records": self.backlog_records,
            "hellos": self.hellos,
            "welcomes": self.welcomes,
            "auth_rejects": self.auth_rejects,
            "session_rejects": self.session_rejects,
            "rate_rejects": self.rate_rejects,
            "window_rejects": self.window_rejects,
            "frames_queued": self.frames_queued,
            "records_queued": self.records_queued,
            "acks_out": self.acks_out,
            "corrupt_payloads": self.corrupt_payloads,
            "shed_by_class": dict(self.shed_by_class),
            "shed_total": sum(self.shed_by_class.values()),
            "ladder": self.ladder.to_json(),
            "buckets": {
                source: bucket.to_json()
                for source, bucket in sorted(self.buckets.items())
            },
            "ingest": self.ingestor.stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FleetGateway mode={self.ladder.mode.value} "
            f"sessions={len(self.sessions)} "
            f"backlog={self.backlog_records}>"
        )
