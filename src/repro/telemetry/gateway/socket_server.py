"""Served socket transport: a thin TCP adapter over the gateway.

The gateway itself is transport-agnostic -- everything above is driven
through :meth:`FleetGateway.handle_payload` / :meth:`step` /
:meth:`poll_outbox` on a virtual step clock, which is what the chaos
harness and tests exercise deterministically.  This module is the
*adapter* that serves the same object over a real TCP socket for
interactive use:

- **wire format**: length-prefixed payloads, ``<decimal length>\\n``
  followed by exactly that many UTF-8 bytes.  Frames contain newlines
  (header line + one WAL entry line per record), so the prefix -- not
  a newline -- delimits datagrams;
- **request/response**: after each received payload the server runs
  one gateway step and writes back every envelope queued for that
  payload's source (acks, WELCOME/REJECT, window updates);
- **clock**: one step per received payload, so rate limits and
  backoff behave sanely without a wall clock (the adapter stays
  deterministic per request sequence).

One handler thread per connection; all gateway calls serialize behind
one lock, preserving the single-threaded semantics everything else is
verified under.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Optional, Tuple

from repro.telemetry.gateway.service import FleetGateway

MAX_PAYLOAD_BYTES = 1 << 22


def send_payload(sock: socket.socket, payload: str) -> None:
    """Write one length-prefixed payload."""
    data = payload.encode("utf-8")
    sock.sendall(f"{len(data)}\n".encode("ascii") + data)


def recv_payload(reader) -> Optional[str]:
    """Read one length-prefixed payload from a file-like reader."""
    header = reader.readline()
    if not header:
        return None
    try:
        length = int(header.strip())
    except ValueError:
        return None
    if not (0 <= length <= MAX_PAYLOAD_BYTES):
        return None
    data = reader.read(length)
    if data is None or len(data) != length:
        return None
    return data.decode("utf-8", errors="replace")


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: "GatewaySocketServer" = self.server  # type: ignore
        while True:
            payload = recv_payload(self.rfile)
            if payload is None:
                return
            for reply in server.submit(payload):
                send_payload(self.request, reply)


class GatewaySocketServer(socketserver.ThreadingTCPServer):
    """Serve one FleetGateway over TCP (see module docstring)."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self, gateway: FleetGateway, address: Tuple[str, int] = ("127.0.0.1", 0)
    ):
        super().__init__(address, _Handler)
        self.gateway = gateway
        self._lock = threading.Lock()
        self._step = 0

    @property
    def port(self) -> int:
        return self.server_address[1]

    def submit(self, payload: str) -> list:
        """One request: queue the payload, run one gateway step, and
        return every envelope addressed to the payload's source."""
        with self._lock:
            now = self._step
            self._step += 1
            self.gateway.handle_payload(payload, now)
            self.gateway.step(now)
            replies = []
            keep = []
            source = _payload_source(payload)
            for dst, envelope in self.gateway.poll_outbox():
                if source is not None and dst == source:
                    replies.append(envelope)
                else:
                    keep.append((dst, envelope))
            # Envelopes for other sources go back to the outbox for
            # their own connections' next request.
            self.gateway._outbox = keep + self.gateway._outbox
            return replies

    def serve_background(self) -> threading.Thread:
        """Start serving on a daemon thread; returns the thread."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread


def _payload_source(payload: str) -> Optional[str]:
    from repro.telemetry.uplink.transport import decode_envelope

    doc = decode_envelope(payload.split("\n", 1)[0])
    if doc is None:
        return None
    source = doc.get("source")
    return source if isinstance(source, str) else None
