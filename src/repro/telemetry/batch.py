"""Struct-of-arrays record batches for the telemetry hot path.

The scalar ingest path touches one :class:`TelemetryRecord` object at a
time: every field read is a slot-descriptor lookup and every record
pays the full per-call overhead of ``ChainStateStore.apply``.  At fleet
rates the per-record constant dominates, so the batched engine works on
a :class:`RecordBatch` instead -- ten parallel Python lists, one per
wire field -- which lets the store group records by key once, bind
columns to locals, and run vectorized (m,k) automaton updates per
shard.

A batch is a *view format*, not a new schema: ``from_records`` /
``to_records`` round-trip losslessly through the existing
:class:`TelemetryRecord`, and :meth:`record` materializes a single row
on demand (the store only does this for the rare flagged record that
becomes alert-engine input).
"""

from __future__ import annotations

from operator import attrgetter
from typing import Iterable, List, Optional, Sequence

from repro.telemetry.records import RecordKind, TelemetryRecord

#: One attrgetter per column, bound once: ``map(getter, records)`` runs
#: the whole transpose at C speed instead of one interpreted loop
#: iteration per record.
_GETTERS = tuple(
    attrgetter(name)
    for name in (
        "kind", "source", "chain", "segment", "activation",
        "latency_ns", "verdict", "level", "timestamp_ns", "seq",
    )
)

__all__ = ["RecordBatch"]


class RecordBatch:
    """Columnar view of a telemetry record stream (wire field order)."""

    __slots__ = (
        "kinds", "sources", "chains", "segments", "activations",
        "latencies", "verdicts", "levels", "timestamps", "seqs",
    )

    def __init__(
        self,
        kinds: Sequence[RecordKind],
        sources: Sequence[str],
        chains: Sequence[str],
        segments: Sequence[str],
        activations: Sequence[int],
        latencies: Sequence[Optional[int]],
        verdicts: Sequence[str],
        levels: Sequence[str],
        timestamps: Sequence[int],
        seqs: Sequence[int],
    ):
        n = len(kinds)
        columns = (
            sources, chains, segments, activations, latencies,
            verdicts, levels, timestamps, seqs,
        )
        if any(len(col) != n for col in columns):
            raise ValueError("all RecordBatch columns must have equal length")
        self.kinds = list(kinds)
        self.sources = list(sources)
        self.chains = list(chains)
        self.segments = list(segments)
        self.activations = list(activations)
        self.latencies = list(latencies)
        self.verdicts = list(verdicts)
        self.levels = list(levels)
        self.timestamps = list(timestamps)
        self.seqs = list(seqs)

    def __len__(self) -> int:
        return len(self.kinds)

    @classmethod
    def from_records(cls, records: Iterable[TelemetryRecord]) -> "RecordBatch":
        """Transpose a record stream into columns (ten C-speed maps)."""
        if not isinstance(records, (list, tuple)):
            records = list(records)
        batch = cls.__new__(cls)
        (batch.kinds, batch.sources, batch.chains, batch.segments,
         batch.activations, batch.latencies, batch.verdicts, batch.levels,
         batch.timestamps, batch.seqs) = (
            list(map(getter, records)) for getter in _GETTERS
        )
        return batch

    def slice(self, n: int) -> "RecordBatch":
        """The first *n* rows as a new batch (bounded-queue truncation)."""
        batch = RecordBatch.__new__(RecordBatch)
        batch.kinds = self.kinds[:n]
        batch.sources = self.sources[:n]
        batch.chains = self.chains[:n]
        batch.segments = self.segments[:n]
        batch.activations = self.activations[:n]
        batch.latencies = self.latencies[:n]
        batch.verdicts = self.verdicts[:n]
        batch.levels = self.levels[:n]
        batch.timestamps = self.timestamps[:n]
        batch.seqs = self.seqs[:n]
        return batch

    def record(self, i: int) -> TelemetryRecord:
        """Materialize row *i* as a :class:`TelemetryRecord`."""
        record = TelemetryRecord.__new__(TelemetryRecord)
        record.kind = self.kinds[i]
        record.source = self.sources[i]
        record.chain = self.chains[i]
        record.segment = self.segments[i]
        record.activation = self.activations[i]
        record.latency_ns = self.latencies[i]
        record.verdict = self.verdicts[i]
        record.level = self.levels[i]
        record.timestamp_ns = self.timestamps[i]
        record.seq = self.seqs[i]
        return record

    def to_records(self) -> List[TelemetryRecord]:
        """Materialize every row (inverse of :meth:`from_records`)."""
        return [self.record(i) for i in range(len(self.kinds))]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RecordBatch n={len(self.kinds)}>"
