"""Deterministic multi-vehicle load generator + ingest throughput bench.

The generator synthesizes the record stream a fleet of vehicles would
publish: per frame and vehicle, one SEGMENT record per monitored
segment, one CHAIN verdict per chain, periodic HEARTBEATs -- interleaved
frame-major/vehicle-minor the way an ingest endpoint would see mixed
traffic.  Everything derives from per-vehicle ``np.random.default_rng``
streams seeded from crc32 of the vehicle id (never ``hash``), so the
same config yields the byte-identical stream on every host -- the
determinism test pins a digest of it.

The fleet is deliberately imperfect, so every alert rule has traffic:

- every ``faulty_every``-th vehicle suffers a mid-run fault window with
  inflated latencies and raised miss rates (latency-over-budget,
  (m,k) margin/violation alerts);
- the same vehicles lose a fraction of records in "transport"
  (sequence-gap alerts: the seq number advances, the record never
  arrives);
- the last vehicle of every faulty group falls silent for the final
  third of the run (heartbeat-gap alerts).

:func:`run_load` drives a :class:`~repro.telemetry.service.TelemetryService`
with the stream and measures sustained ingest throughput (records/s,
p95 per-batch latency) -- the number the acceptance criterion and the
``telemetry_ingest`` benchmark report.
"""

from __future__ import annotations

import hashlib
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.telemetry.emitter import TelemetryEmitter
from repro.telemetry.records import TelemetryRecord, encode_stream
from repro.telemetry.store import StoreConfig

#: ns helpers (kept local: the load generator must not import the sim).
_MS = 1_000_000


@dataclass
class FleetConfig:
    """Shape of the synthesized fleet."""

    vehicles: int = 8
    frames: int = 400
    chains: Tuple[str, ...] = ("front_objects", "rear_objects")
    segments_per_chain: int = 3
    period_ns: int = 100 * _MS
    seed: int = 2025
    mk: Tuple[int, int] = (2, 10)
    #: Per-segment latency budget (the alert rule input).
    budget_ns: int = 20 * _MS
    base_latency_ns: int = 8 * _MS
    jitter_ns: int = 6 * _MS
    #: Baseline per-segment miss probability.
    miss_rate: float = 0.002
    #: Every n-th vehicle runs a scripted fault window.
    faulty_every: int = 4
    #: Miss probability inside a fault window.
    fault_miss_rate: float = 0.35
    #: Fraction of a faulty vehicle's records lost in transport.
    loss_rate: float = 0.01
    #: Vehicles emit a heartbeat every this many frames.
    heartbeat_frames: int = 10

    def __post_init__(self) -> None:
        if self.vehicles < 1:
            raise ValueError("vehicles must be >= 1")
        if self.frames < 1:
            raise ValueError("frames must be >= 1")
        if self.segments_per_chain < 1:
            raise ValueError("segments_per_chain must be >= 1")
        if not self.chains:
            raise ValueError("need at least one chain")

    # ------------------------------------------------------------------
    def vehicle_ids(self) -> List[str]:
        return [f"vehicle-{i:03d}" for i in range(self.vehicles)]

    def segment_names(self, chain: str) -> List[str]:
        return [f"{chain}/s{i}" for i in range(self.segments_per_chain)]

    def is_faulty(self, vehicle_index: int) -> bool:
        return (
            self.faulty_every > 0
            and vehicle_index % self.faulty_every == self.faulty_every - 1
        )

    def fault_window(self) -> Tuple[int, int]:
        """Frame range of the scripted fault (inclusive, exclusive)."""
        return self.frames // 3, self.frames // 2

    def silent_from(self) -> int:
        """Frame after which the silent vehicle stops emitting."""
        return (2 * self.frames) // 3

    def store_config(self, n_shards: int = 8) -> StoreConfig:
        budgets = {
            name: self.budget_ns
            for chain in self.chains for name in self.segment_names(chain)
        }
        return StoreConfig(
            n_shards=n_shards,
            default_mk=self.mk,
            budget_by_segment=budgets,
        )

    def records_expected(self) -> int:
        """Upper bound on generated records (before transport loss)."""
        per_frame = self.vehicles * len(self.chains) * (self.segments_per_chain + 1)
        heartbeats = self.vehicles * (self.frames // max(1, self.heartbeat_frames) + 1)
        return self.frames * per_frame + heartbeats


class FleetLoadGenerator:
    """Generates the deterministic fleet record stream."""

    def __init__(self, config: Optional[FleetConfig] = None):
        self.config = config or FleetConfig()
        #: Records the "transport" lost (seq advanced, record dropped) --
        #: ground truth for the sequence-gap accounting tests.
        self.lost_in_transport = 0

    def _vehicle_rng(self, vehicle: str) -> "np.random.Generator":
        return np.random.default_rng(
            self.config.seed * 0x9E3779B1 + zlib.crc32(vehicle.encode())
        )

    # ------------------------------------------------------------------
    def records(self) -> Iterator[TelemetryRecord]:
        """The stream, frame-major / vehicle-minor interleaved."""
        cfg = self.config
        self.lost_in_transport = 0
        out: List[TelemetryRecord] = []
        emitters: Dict[str, TelemetryEmitter] = {}
        rngs: Dict[str, "np.random.Generator"] = {}
        for vehicle in cfg.vehicle_ids():
            emitters[vehicle] = TelemetryEmitter(vehicle, out.append)
            rngs[vehicle] = self._vehicle_rng(vehicle)
        fault_first, fault_last = cfg.fault_window()
        silent_from = cfg.silent_from()
        vehicles = cfg.vehicle_ids()

        for frame in range(cfg.frames):
            for index, vehicle in enumerate(vehicles):
                faulty = cfg.is_faulty(index)
                # The last faulty vehicle goes silent for the tail.
                silent = (
                    faulty and index == len(vehicles) - 1
                    and frame >= silent_from
                )
                if silent:
                    continue
                emitter = emitters[vehicle]
                rng = rngs[vehicle]
                in_fault = faulty and fault_first <= frame < fault_last
                base_ts = frame * cfg.period_ns + index * 111_111
                if cfg.heartbeat_frames and frame % cfg.heartbeat_frames == 0:
                    emitter.heartbeat(base_ts)
                for chain in cfg.chains:
                    chain_missed = False
                    for segment in cfg.segment_names(chain):
                        miss_rate = cfg.fault_miss_rate if in_fault else cfg.miss_rate
                        missed = rng.random() < miss_rate
                        latency = cfg.base_latency_ns + int(
                            rng.random() * cfg.jitter_ns
                        )
                        if in_fault:
                            latency += cfg.budget_ns  # over budget for sure
                        if missed:
                            latency += 2 * cfg.budget_ns
                            chain_missed = True
                        verdict = "miss" if missed else "ok"
                        before = len(out)
                        emitter.segment(
                            chain, segment, frame, verdict, latency,
                            base_ts + latency,
                        )
                        if (faulty and rng.random() < cfg.loss_rate):
                            # Transport loss: the seq was consumed but
                            # the record never reaches the service.
                            del out[before:]
                            self.lost_in_transport += 1
                    emitter.chain(
                        chain, frame, chain_missed,
                        base_ts + cfg.period_ns,
                    )
        return iter(out)

    def materialize(self) -> List[TelemetryRecord]:
        """The full stream as a list (bench/CLI convenience)."""
        return list(self.records())

    def stream_digest(self) -> str:
        """sha256 of the encoded stream -- the determinism fingerprint."""
        text = encode_stream(self.materialize())
        return hashlib.sha256(text.encode()).hexdigest()


# ----------------------------------------------------------------------
# Throughput measurement
# ----------------------------------------------------------------------
@dataclass
class LoadReport:
    """Outcome of one :func:`run_load` drive."""

    records: int
    duration_ns: int
    records_per_s: float
    batch_p95_ns: int
    applied: int
    dropped: int
    pending: int
    lost_in_transport: int
    accounting_ok: bool
    alerts_by_rule: Dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"records ingested : {self.records}",
            f"wall time        : {self.duration_ns / 1e6:.1f} ms",
            f"throughput       : {self.records_per_s:,.0f} records/s",
            f"batch p95        : {self.batch_p95_ns / 1e6:.3f} ms",
            f"applied          : {self.applied}",
            f"dropped (counted): {self.dropped}",
            f"pending          : {self.pending}",
            f"lost in transport: {self.lost_in_transport} (before ingest)",
            f"accounting       : {'OK' if self.accounting_ok else 'VIOLATED'}",
            "alerts           : "
            + (", ".join(
                f"{rule}={count}"
                for rule, count in sorted(self.alerts_by_rule.items())
            ) or "none"),
        ]
        return "\n".join(lines)


def run_load(
    service,
    generator: Optional[FleetLoadGenerator] = None,
    batch_size: int = 2048,
) -> LoadReport:
    """Drive *service* with the generator's stream; measure throughput.

    Records are offered in batches; after each batch the queue is
    pumped, so the measured time covers the full ingest -> store ->
    alert path.  One final poll runs the time-based rules at the data
    watermark.
    """
    generator = generator or FleetLoadGenerator()
    records = generator.materialize()
    batch_times: List[int] = []
    t_start = time.perf_counter_ns()
    for start in range(0, len(records), batch_size):
        t0 = time.perf_counter_ns()
        for record in records[start:start + batch_size]:
            service.ingest(record)
        service.pump()
        batch_times.append(time.perf_counter_ns() - t0)
    service.pump()
    duration_ns = max(1, time.perf_counter_ns() - t_start)
    service.poll()
    batch_times.sort()
    p95_index = min(
        len(batch_times) - 1, int(round(0.95 * (len(batch_times) - 1)))
    ) if batch_times else 0
    stats = service.stats()
    return LoadReport(
        records=len(records),
        duration_ns=duration_ns,
        records_per_s=len(records) / (duration_ns / 1e9),
        batch_p95_ns=batch_times[p95_index] if batch_times else 0,
        applied=stats["applied"],
        dropped=stats["dropped"],
        pending=stats["pending"],
        lost_in_transport=generator.lost_in_transport,
        accounting_ok=stats["accounting_ok"],
        alerts_by_rule=stats["alerts_by_rule"],
    )
