"""Verification oracles: soundness and no-silent-violation.

*Soundness* -- every violation a monitor reported corresponds to a real
overrun: for each reported MISS/RECOVERED of segment ``s`` at activation
``n``, the ground-truth end event either never happened, happened more
than ``d_mon - epsilon`` after the real start, or -- for remote
monitors, whose deadline grid is anchored at the send time of the last
*accepted* sample and advances one period per timeout -- arrived more
than ``d_mon - epsilon`` past that reconstructed grid deadline.  The
grid rule matters when an upstream recovery delays every send: transit
stays fast, yet each sample genuinely violates the synchronization-based
arrival contract of Sec. IV-B.  ``epsilon`` is the total clock-error
budget (PTP bound plus any injected clock faults' bounds plus a
margin): a monitor whose clock is legitimately wrong by up to
``epsilon`` may report a miss that global time disagrees with by that
much, and the paper's monitors only promise detection to within the sync
error.

*Completeness / no-silent-violation* -- every ground-truth violation of
a chain activation is visible in the chain runtime's records: either a
detected temporal exception (MISS/SKIPPED) or a handler recovery
(RECOVERED).  A ground-truth violation is an activation whose sink
completion is missing or over the end-to-end budget, **or** whose source
sensor data never entered the pipeline (the sink was served substitute
data) -- the stuck/silent-sensor case that liveliness checks miss.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.chain_runtime import Outcome

#: Chain -> the source segment whose data the chain nominally carries.
CHAIN_SOURCE = {
    "front_objects": "s0_front",
    "front_ground": "s0_front",
    "rear_objects": "s0_rear",
    "rear_ground": "s0_rear",
}

#: Outcomes that count as "the violation was made observable".
DETECTED_OUTCOMES = (Outcome.MISS, Outcome.SKIPPED, Outcome.RECOVERED)


@dataclass
class OracleFailure:
    """One oracle counterexample."""

    oracle: str
    subject: str  # segment or chain name
    activation: int
    detail: str


@dataclass
class OracleReport:
    """Verdict of one oracle over one run."""

    name: str
    #: How many reported violations (soundness) / ground-truth
    #: violations (completeness) were examined.
    checked: int = 0
    failures: List[OracleFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no counterexample was found."""
        return not self.failures

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "PASS" if self.passed else f"FAIL ({len(self.failures)})"
        return f"{self.name}: {verdict} over {self.checked} checks"


def check_soundness(stack, truth, epsilon_ns: int,
                    first: int, last: int) -> OracleReport:
    """No false alarms: each reported miss maps to a real overrun.

    Checks activations in ``[first, last)``; *epsilon_ns* is the clock
    error the monitors may legitimately carry.
    """
    report = OracleReport(name="soundness")
    period = stack.config.period
    sources: Dict[str, object] = {}
    sources.update(stack.local_runtimes)
    sources.update(stack.remote_monitors)
    for seg_name, source in sources.items():
        d_mon = source.segment.d_mon
        is_remote = seg_name in stack.remote_monitors
        accepted = sorted(
            a for a, _lat, o in source.latencies if o is Outcome.OK
        )
        for n, _latency, outcome in source.latencies:
            if outcome not in (Outcome.MISS, Outcome.RECOVERED):
                continue
            if not (first <= n < last):
                continue
            report.checked += 1
            start = truth.segment_start(seg_name, n)
            end = truth.segment_end(seg_name, n)
            if end is None or start is None:
                continue  # the end event truly never occurred
            real = end - start
            if real > d_mon - epsilon_ns:
                continue  # genuinely (or indistinguishably) late
            if is_remote:
                # Reconstruct the monitor's deadline grid: anchored at
                # the send of the last accepted sample before n, one
                # period per activation since.
                idx = bisect.bisect_left(accepted, n)
                anchor_n = accepted[idx - 1] if idx > 0 else None
                anchor = (truth.segment_start(seg_name, anchor_n)
                          if anchor_n is not None else None)
                if anchor is None:
                    continue  # no established grid (cold start / watchdog)
                grid_late = end - (anchor + (n - anchor_n) * period)
                if grid_late > d_mon - epsilon_ns:
                    continue  # late w.r.t. the arrival grid: justified
            report.failures.append(OracleFailure(
                oracle="soundness", subject=seg_name, activation=n,
                detail=(
                    f"reported {outcome.value} but real latency "
                    f"{real / 1e6:.3f} ms <= d_mon - eps = "
                    f"{(d_mon - epsilon_ns) / 1e6:.3f} ms"
                ),
            ))
    return report


def check_completeness(stack, truth, first: int, last: int) -> OracleReport:
    """No silent violations: every ground-truth overrun left a record."""
    report = OracleReport(name="no_silent_violation")
    budget = stack.config.budget_e2e
    for chain_name, runtime in stack.chain_runtimes.items():
        source_segment = CHAIN_SOURCE[chain_name]
        for n in range(first, last):
            e2e = truth.e2e_latency(chain_name, n)
            served = e2e is not None and e2e <= budget
            source_entered = truth.accepted_end(source_segment, n) is not None
            if served and source_entered:
                continue  # no ground-truth violation at this activation
            report.checked += 1
            records = runtime.records.get(n, {})
            if any(r.outcome in DETECTED_OUTCOMES for r in records.values()):
                continue  # detected or recovered: observable
            if e2e is None:
                why = "no sink completion"
            elif not served:
                why = f"e2e {e2e / 1e6:.1f} ms over budget {budget / 1e6:.1f} ms"
            else:
                why = f"{source_segment} data never entered the pipeline"
            report.failures.append(OracleFailure(
                oracle="no_silent_violation", subject=chain_name, activation=n,
                detail=f"silent violation: {why}; records={_render(records)}",
            ))
    return report


def _render(records) -> str:
    if not records:
        return "{}"
    return "{" + ", ".join(
        f"{seg}: {rec.outcome.value}" for seg, rec in sorted(records.items())
    ) + "}"
