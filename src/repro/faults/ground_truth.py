"""Omniscient ground-truth recording for oracle verification.

The monitors deliberately *suppress* what they judge invalid -- skip
gates eat late end events, remote monitors discard late arrivals -- so a
naive observer sees exactly what the monitor saw and can never judge the
monitor itself.  The recorder therefore installs itself at **index 0**
of every relevant publish/receive filter list: it observes every event
attempt (including ones a later filter suppresses), always returns True,
and stamps *global simulation time* (which no in-system component may
read -- clocks drift; this is the test oracle's privilege).

Two inclusion rules keep the bookkeeping honest:

- **end tables** exclude ``recovered`` samples: a handler's substitute
  publication is not the real end event of the activation it stands in
  for;
- **start tables** and **sink completion tables** include them: a
  recovered sample genuinely starts the downstream segment and carries
  real (if degraded) data to the sink.

For the source segments (s0_*) a third table records *accepted* ends:
a filter appended at the END of the receive-filter chain, which only
runs for samples the monitor let through.  The difference between
physical and accepted ends is exactly the monitor's discard policy --
a late cloud arrives physically but never enters the pipeline, so the
chain ran on substitute data.  Completeness uses accepted ends;
soundness justification uses physical ones.
"""

from __future__ import annotations

from typing import Dict, Optional


def _frame_of(sample) -> Optional[int]:
    return getattr(sample.data, "frame_index", None)


class GroundTruthRecorder:
    """Global-time event log of one stack run, keyed by activation."""

    def __init__(self, stack):
        self.stack = stack
        self.period = stack.config.period
        #: segment -> activation -> global time of first real start event.
        self.starts: Dict[str, Dict[int, int]] = {}
        #: segment -> activation -> global time of first real end event.
        self.ends: Dict[str, Dict[int, int]] = {}
        #: sink topic -> activation -> global time of first arrival.
        self.completions: Dict[str, Dict[int, int]] = {}
        #: s0 segment -> activation -> global time the sample passed all
        #: receive filters (i.e. actually entered the application).
        self.accepted_ends: Dict[str, Dict[int, int]] = {}
        self._install(stack)

    # ------------------------------------------------------------------
    def _recorder(self, start_tables, end_tables, completion_tables=()):
        sim = self.stack.sim

        def record(sample) -> bool:
            n = _frame_of(sample)
            if n is not None:
                for table in start_tables:
                    table.setdefault(n, sim.now)
                if not sample.recovered:
                    for table in end_tables:
                        table.setdefault(n, sim.now)
                for table in completion_tables:
                    table.setdefault(n, sim.now)
            return True

        return record

    def _install(self, stack) -> None:
        for name in ("s0_front", "s0_rear", "s1_front", "s1_rear", "s2",
                     "s3_objects", "s3_ground"):
            self.starts[name] = {}
            self.ends[name] = {}
        self.completions = {"objects": {}, "ground_points": {}}

        def at_writer(writer, start_tables, end_tables):
            writer.publish_filters.insert(
                0, self._recorder(start_tables, end_tables)
            )

        def at_reader(reader, start_tables, end_tables, completion_tables=()):
            reader.receive_filters.insert(
                0, self._recorder(start_tables, end_tables, completion_tables)
            )

        self.accepted_ends = {"s0_front": {}, "s0_rear": {}}

        def accepted(reader, table):
            # Appended (not inserted) so it only sees samples every
            # earlier filter -- including the monitor's discard -- let
            # through.  Substitutes issued by the monitor are excluded.
            reader.receive_filters.append(self._recorder([], [table]))

        s, e, c = self.starts, self.ends, self.completions
        at_writer(stack.lidar_front.publisher.writer, [s["s0_front"]], [])
        at_writer(stack.lidar_rear.publisher.writer, [s["s0_rear"]], [])
        at_reader(stack.fusion.sub_front.reader,
                  [s["s1_front"]], [e["s0_front"]])
        at_reader(stack.fusion.sub_rear.reader,
                  [s["s1_rear"]], [e["s0_rear"]])
        accepted(stack.fusion.sub_front.reader, self.accepted_ends["s0_front"])
        accepted(stack.fusion.sub_rear.reader, self.accepted_ends["s0_rear"])
        at_writer(stack.fusion.publisher.writer,
                  [s["s2"]], [e["s1_front"], e["s1_rear"]])
        at_reader(stack.classifier.subscription.reader,
                  [s["s3_objects"], s["s3_ground"]], [e["s2"]])
        at_reader(stack.sink.subscriptions[0].reader,
                  [], [e["s3_objects"]], [c["objects"]])
        at_reader(stack.sink.subscriptions[1].reader,
                  [], [e["s3_ground"]], [c["ground_points"]])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def segment_start(self, segment: str, activation: int) -> Optional[int]:
        """Global time of the segment's real start event, if any."""
        return self.starts[segment].get(activation)

    def segment_end(self, segment: str, activation: int) -> Optional[int]:
        """Global time of the segment's real end event, if any."""
        return self.ends[segment].get(activation)

    def accepted_end(self, segment: str, activation: int) -> Optional[int]:
        """Global time the sample entered the application (s0 only)."""
        return self.accepted_ends[segment].get(activation)

    def e2e_completion(self, chain_name: str, activation: int) -> Optional[int]:
        """Global time the chain's sink first saw data of *activation*."""
        topic = "objects" if chain_name.endswith("objects") else "ground_points"
        return self.completions[topic].get(activation)

    def e2e_latency(self, chain_name: str, activation: int) -> Optional[int]:
        """Completion time relative to the nominal activation instant."""
        completed = self.e2e_completion(chain_name, activation)
        if completed is None:
            return None
        return completed - activation * self.period
