"""DAG fault campaign: fork/join scenarios x executor models, with oracles.

Each :class:`DagFaultScenario` pairs a fault hypothesis with an executor
model and runs the fork/join perception-fusion pipeline
(:mod:`repro.faults.dag_stack`) under it.  Two omniscient oracles judge
every root->sink path independently:

- **Soundness** -- a reported per-path MISS implies the path's true
  end-to-end latency exceeded its telescoped monitored deadline
  ``D_p`` minus the clock-error band epsilon (no false alarms).
- **No silent violation** -- a true latency above ``D_p + epsilon`` (or
  a frame that never completed) implies the path monitor reported a
  MISS for that activation (completeness).

The matrix deliberately includes executor-model *pairs* under the same
fault -- e.g. ``cpu_overload`` on the single-threaded executor blocks
the visualization path behind planning (head-of-line blocking at the
polling point) while the multi-threaded reentrant executor isolates it
-- so the per-path verdicts demonstrate why monitoring the DAG's paths
separately matters.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.chain_runtime import Outcome
from repro.faults.campaign import campaign_frames
from repro.faults.dag_stack import DagStack, DagStackConfig
from repro.faults.oracles import OracleFailure, OracleReport
from repro.sim.kernel import msec, usec

#: Oracle names (mirror the linear campaign's).
DAG_SOUNDNESS = "dag_soundness"
DAG_COMPLETENESS = "dag_no_silent_violation"


# ----------------------------------------------------------------------
# Fault injectors (DAG-stack hook based)
# ----------------------------------------------------------------------
class DagFault:
    """Base class: arms hooks on a :class:`DagStack` before the run."""

    fault_class = "unknown"

    def __init__(self) -> None:
        #: Physical fault actions actually taken (deterministic).
        self.injections: List[Tuple] = []

    def arm(self, stack: DagStack) -> None:
        raise NotImplementedError

    def clock_error_bound(self) -> int:
        """Worst-case monitor clock error this fault can induce (ns)."""
        return 0


class DagLossBurst(DagFault):
    """A sensor branch's samples are dropped for a frame window."""

    fault_class = "loss_burst"

    def __init__(self, source: str, start: int, end: int):
        super().__init__()
        self.source = source
        self.start = start
        self.end = end

    def arm(self, stack: DagStack) -> None:
        def hook(source: str, frame: int) -> bool:
            if source == self.source and self.start <= frame < self.end:
                self.injections.append(("drop", source, frame))
                return True
            return False

        stack.config.drop_source.append(hook)


class DagSilentSensor(DagLossBurst):
    """A sensor goes silent mid-run and stays silent for a long window."""

    fault_class = "silent_sensor"


class DagLatencySpike(DagFault):
    """One link gains a constant extra delay for a frame window."""

    fault_class = "latency_spike"

    def __init__(self, link: str, start: int, end: int, extra_ns: int):
        super().__init__()
        self.link = link
        self.start = start
        self.end = end
        self.extra_ns = extra_ns

    def arm(self, stack: DagStack) -> None:
        def hook(link: str, frame: int) -> int:
            if link == self.link and self.start <= frame < self.end:
                self.injections.append(("delay", link, frame, self.extra_ns))
                return self.extra_ns
            return 0

        stack.config.link_extra_delay.append(hook)


class DagCpuOverload(DagFault):
    """A compute node's execution times inflate by a factor."""

    fault_class = "cpu_overload"

    def __init__(self, node: str, start: int, end: int, factor: float):
        super().__init__()
        self.node = node
        self.start = start
        self.end = end
        self.factor = factor

    def arm(self, stack: DagStack) -> None:
        def hook(node: str, frame: int) -> float:
            if node == self.node and self.start <= frame < self.end:
                self.injections.append(("overload", node, frame))
                return self.factor
            return 1.0

        stack.config.exec_scale.append(hook)


class DagExecutorStall(DagFault):
    """A runaway low-priority callback hogs the sink-side executor."""

    fault_class = "executor_stall"

    def __init__(self, start: int, end: int, stall_ns: int):
        super().__init__()
        self.start = start
        self.end = end
        self.stall_ns = stall_ns

    def arm(self, stack: DagStack) -> None:
        def hook(frame: int) -> Optional[int]:
            if self.start <= frame < self.end:
                self.injections.append(("stall", frame, self.stall_ns))
                return self.stall_ns
            return None

        stack.config.stall_exec.append(hook)


class DagClockDrift(DagFault):
    """The monitor's clock ramps away from global time within a window."""

    fault_class = "clock_drift"

    def __init__(self, start: int, end: int, ppm: float):
        super().__init__()
        self.start = start
        self.end = end
        self.ppm = ppm
        self._period = 0

    def arm(self, stack: DagStack) -> None:
        self._period = stack.config.period
        start_t = self.start * self._period
        end_t = self.end * self._period

        def hook(global_time: int) -> int:
            elapsed = min(max(global_time - start_t, 0), end_t - start_t)
            return int(self.ppm * 1e-6 * elapsed)

        stack.config.clock_error.append(hook)
        self.injections.extend(
            ("drift", frame) for frame in range(self.start, self.end)
        )

    def clock_error_bound(self) -> int:
        return int(self.ppm * 1e-6 * (self.end - self.start) * self._period) + 1


# ----------------------------------------------------------------------
# Scenario matrix
# ----------------------------------------------------------------------
@dataclass
class DagFaultScenario:
    """One fault hypothesis under one executor model."""

    name: str
    description: str
    fault_classes: Tuple[str, ...]
    #: Executor model key (see :data:`repro.ros.executors.EXECUTOR_MODELS`).
    executor_model: str
    #: Builds the injectors for a run of *n_frames* activations.
    build: Callable[[int], List[DagFault]]
    #: DagStackConfig field overrides.
    config_overrides: dict = field(default_factory=dict)


def default_dag_scenarios() -> List[DagFaultScenario]:
    """The DAG campaign matrix: 6 fault classes x 3 executor models."""

    def s(name, description, classes, executor, build, **overrides):
        return DagFaultScenario(
            name=name, description=description, fault_classes=classes,
            executor_model=executor, build=build,
            config_overrides=overrides,
        )

    return [
        s("dag_baseline_single",
          "fault-free fork/join pipeline on the single-threaded executor",
          ("baseline",), "single",
          lambda n: []),
        s("dag_loss_burst_single",
          "camera branch drops every frame for a quarter of the run",
          ("loss_burst",), "single",
          lambda n: [DagLossBurst("cam", n // 4, n // 2)]),
        s("dag_silent_sensor_multi",
          "lidar silent from a third of the run until near the end",
          ("silent_sensor",), "multi",
          lambda n: [DagSilentSensor("lid", n // 3, n - 6)]),
        s("dag_latency_spike_single",
          "fused-output transfer link gains +80 ms, beyond every sink",
          ("latency_spike",), "single",
          lambda n: [DagLatencySpike("link_xfer", n // 4, n // 2, msec(80))]),
        s("dag_cpu_overload_single",
          "planner 12x overrun; polling point also starves the viz path",
          ("cpu_overload",), "single",
          lambda n: [DagCpuOverload("plan", n // 4, n // 2, 12.0)]),
        s("dag_cpu_overload_multi",
          "planner 12x overrun; reentrant group isolates the viz path",
          ("cpu_overload",), "multi",
          lambda n: [DagCpuOverload("plan", n // 4, n // 2, 12.0)]),
        s("dag_executor_stall_single",
          "110 ms diagnostic hog per frame blocks the sink executor",
          ("executor_stall",), "single",
          lambda n: [DagExecutorStall(n // 4, n // 2, msec(110))]),
        s("dag_executor_stall_priority",
          "same 110 ms hog; priority-driven dispatch rescues both sinks",
          ("executor_stall",), "priority",
          lambda n: [DagExecutorStall(n // 4, n // 2, msec(110))]),
        s("dag_drift_spike_multi",
          "monitor clock drifts at 15000 ppm while the transfer link spikes",
          ("clock_drift", "latency_spike"), "multi",
          lambda n: [DagClockDrift(n // 4, n - 8, 15000.0),
                     DagLatencySpike("link_xfer", n // 3, n // 2, msec(80))]),
    ]


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
def check_dag_soundness(
    stack: DagStack, epsilon_ns: int, first: int, last: int
) -> OracleReport:
    """No false alarms: a reported MISS implies a real deadline overrun.

    For every path p and activation n in ``[first, last)``: if the path
    monitor reported MISS, the ground-truth end-to-end latency must not
    be provably fine, i.e. it must NOT hold that
    ``L_true <= D_p - epsilon``.
    """
    failures = []
    checked = 0
    for monitor in stack.monitors:
        for frame in range(first, last):
            verdict = monitor.reported.get(frame)
            if verdict is None or verdict.outcome is not Outcome.MISS:
                continue
            checked += 1
            true_latency = stack.truth.e2e_latency(monitor.sink, frame)
            if true_latency is None:
                continue  # never completed: the MISS is trivially sound
            if true_latency <= monitor.deadline - epsilon_ns:
                failures.append(OracleFailure(
                    oracle=DAG_SOUNDNESS,
                    subject=monitor.path_id,
                    activation=frame,
                    detail=(
                        f"reported MISS but true latency "
                        f"{true_latency} <= D_p {monitor.deadline} "
                        f"- eps {epsilon_ns}"
                    ),
                ))
    return OracleReport(name=DAG_SOUNDNESS, checked=checked, failures=failures)


def check_dag_completeness(
    stack: DagStack, epsilon_ns: int, first: int, last: int
) -> OracleReport:
    """No silent violation: every real overrun is reported per path.

    For every path p and activation n in ``[first, last)``: if the
    ground truth shows no completion, or a latency above
    ``D_p + epsilon``, the path monitor must have reported MISS.
    """
    failures = []
    checked = 0
    for monitor in stack.monitors:
        for frame in range(first, last):
            true_latency = stack.truth.e2e_latency(monitor.sink, frame)
            violated = (
                true_latency is None
                or true_latency > monitor.deadline + epsilon_ns
            )
            if not violated:
                continue
            checked += 1
            verdict = monitor.reported.get(frame)
            if verdict is None:
                failures.append(OracleFailure(
                    oracle=DAG_COMPLETENESS,
                    subject=monitor.path_id,
                    activation=frame,
                    detail=f"true latency {true_latency} but no verdict",
                ))
            elif verdict.outcome is not Outcome.MISS:
                failures.append(OracleFailure(
                    oracle=DAG_COMPLETENESS,
                    subject=monitor.path_id,
                    activation=frame,
                    detail=(
                        f"true latency {true_latency} > D_p "
                        f"{monitor.deadline} + eps {epsilon_ns} but "
                        f"verdict {verdict.outcome.value}"
                    ),
                ))
    return OracleReport(
        name=DAG_COMPLETENESS, checked=checked, failures=failures
    )


# ----------------------------------------------------------------------
# Campaign
# ----------------------------------------------------------------------
@dataclass
class DagCampaignConfig:
    """Execution parameters shared by every DAG scenario."""

    n_frames: int = field(default_factory=campaign_frames)
    seed: int = 17
    warmup: int = 2
    tail: int = 4
    epsilon_margin: int = usec(500)

    def __post_init__(self) -> None:
        if self.n_frames < self.warmup + self.tail + 8:
            raise ValueError(
                f"n_frames={self.n_frames} too small for "
                f"warmup={self.warmup} + tail={self.tail}"
            )


@dataclass
class DagScenarioResult:
    """Everything observed while running one DAG scenario."""

    name: str
    fault_classes: Tuple[str, ...]
    executor_model: str
    n_frames: int
    soundness: OracleReport
    completeness: OracleReport
    #: Reported per-path MISS verdicts inside the check window.
    detections: int
    #: Physical fault actions the injectors recorded.
    injections: int
    epsilon_ns: int
    #: path id -> summary of the finalized per-path chain report.
    path_reports: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Path ids whose (m,k) automaton fired during the run.
    violated_paths: List[str] = field(default_factory=list)
    alert_counts: Dict[str, int] = field(default_factory=dict)
    telemetry_records: int = 0

    @property
    def passed(self) -> bool:
        """Both per-path oracles hold."""
        return self.soundness.passed and self.completeness.passed

    def digest_payload(self) -> dict:
        """Canonical JSON-able content for golden-trace pinning."""
        return {
            "name": self.name,
            "executor_model": self.executor_model,
            "n_frames": self.n_frames,
            "detections": self.detections,
            "injections": self.injections,
            "path_reports": {
                path_id: dict(sorted(report.items()))
                for path_id, report in sorted(self.path_reports.items())
            },
            "violated_paths": sorted(self.violated_paths),
            "alert_counts": dict(sorted(self.alert_counts.items())),
            "telemetry_records": self.telemetry_records,
        }

    def digest(self) -> str:
        """Stable sha256 over the scenario's observable behaviour."""
        payload = json.dumps(
            self.digest_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class DagCampaignResult:
    """Aggregate outcome of a DAG campaign."""

    scenarios: List[DagScenarioResult]

    @property
    def passed(self) -> bool:
        return all(s.passed for s in self.scenarios)

    @property
    def fault_classes_covered(self) -> set:
        return {c for s in self.scenarios for c in s.fault_classes}

    @property
    def executor_models_covered(self) -> set:
        return {s.executor_model for s in self.scenarios}

    def render_report(self) -> str:
        """Human-readable scenario x executor matrix."""
        lines = [
            f"{'scenario':26s} {'classes':24s} {'exec':>8s} {'sound':>6s} "
            f"{'complete':>9s} {'detect':>6s} {'mk-viol':>7s} {'alerts':>7s}"
        ]
        for s in self.scenarios:
            lines.append(
                f"{s.name:26s} {','.join(s.fault_classes):24s} "
                f"{s.executor_model:>8s} "
                f"{('PASS' if s.soundness.passed else 'FAIL'):>6s} "
                f"{('PASS' if s.completeness.passed else 'FAIL'):>9s} "
                f"{s.detections:>6d} {len(s.violated_paths):>7d} "
                f"{sum(s.alert_counts.values()):>7d}"
            )
        covered = sorted(self.fault_classes_covered - {"baseline"})
        lines.append(
            f"{len(self.scenarios)} scenarios, "
            f"{len(covered)} fault classes ({', '.join(covered)}), "
            f"executors: {', '.join(sorted(self.executor_models_covered))}"
        )
        lines.append(f"dag campaign: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


class DagCampaign:
    """Runs the DAG scenario matrix and judges every path per scenario."""

    def __init__(
        self,
        scenarios: Optional[Sequence[DagFaultScenario]] = None,
        config: Optional[DagCampaignConfig] = None,
    ):
        self.scenarios = list(scenarios) if scenarios is not None \
            else default_dag_scenarios()
        self.config = config or DagCampaignConfig()

    def run(self) -> DagCampaignResult:
        """Execute every scenario (each on a fresh DAG stack)."""
        return DagCampaignResult(
            scenarios=[self.run_scenario(s) for s in self.scenarios]
        )

    def run_scenario(self, scenario: DagFaultScenario) -> DagScenarioResult:
        """Build, fault, run and judge one DAG scenario."""
        cc = self.config
        stack_config = DagStackConfig(
            seed=cc.seed,
            executor_model=scenario.executor_model,
            **scenario.config_overrides,
        )
        stack = DagStack(stack_config)
        injectors = scenario.build(cc.n_frames)
        for injector in injectors:
            injector.arm(stack)
        stack.run(cc.n_frames)

        first = cc.warmup
        last = cc.n_frames - cc.tail
        epsilon = (
            sum(i.clock_error_bound() for i in injectors)
            + cc.epsilon_margin
        )
        reports = stack.runtime.finalize(cc.n_frames - 1)
        alert_counts, telemetry_records = self._replay_telemetry(stack)
        return DagScenarioResult(
            name=scenario.name,
            fault_classes=scenario.fault_classes,
            executor_model=scenario.executor_model,
            n_frames=cc.n_frames,
            soundness=check_dag_soundness(stack, epsilon, first, last),
            completeness=check_dag_completeness(stack, epsilon, first, last),
            detections=stack.detections(first, last),
            injections=sum(len(i.injections) for i in injectors),
            epsilon_ns=epsilon,
            path_reports={
                path_id: {
                    "misses": report.miss_count,
                    "ok": report.ok_count,
                    "max_window_misses": report.max_window_misses,
                    "mk_satisfied": int(report.mk_satisfied),
                }
                for path_id, report in reports.items()
            },
            violated_paths=stack.runtime.violated_paths,
            alert_counts=alert_counts,
            telemetry_records=telemetry_records,
        )

    @staticmethod
    def _replay_telemetry(stack: DagStack) -> Tuple[Dict[str, int], int]:
        """Replay the finished DAG run through a fresh telemetry service.

        Per-path chain records are keyed by path id, so the fleet
        store's bit-packed automata re-track exactly the windows the
        in-system runtime tracked.  Only data time flows in.
        """
        from repro.telemetry.emitter import TelemetryEmitter
        from repro.telemetry.service import ServiceConfig, TelemetryService
        from repro.telemetry.store import StoreConfig

        cfg = stack.config
        dag = stack.dag
        store = StoreConfig(
            mk_by_chain={
                path.path_id: (dag.mk[path.sink].m, dag.mk[path.sink].k)
                for path in dag.paths()
            },
            budget_by_segment={
                name: cfg.d_mon[name] for name in sorted(dag.segments)
            },
        )
        records = []
        emitter = TelemetryEmitter("dag_campaign", records.append)
        for monitor in sorted(stack.monitors, key=lambda m: m.path_id):
            for frame in sorted(monitor.reported):
                verdict = monitor.reported[frame]
                latency = verdict.latency
                timestamp = frame * cfg.period + max(
                    0, latency if latency is not None else monitor.deadline
                )
                emitter.segment(
                    chain=monitor.path_id,
                    segment=monitor.sink,
                    activation=frame,
                    verdict=(
                        "ok" if verdict.outcome is Outcome.OK else "miss"
                    ),
                    latency_ns=latency,
                    timestamp_ns=timestamp,
                )
                emitter.chain(
                    chain=monitor.path_id,
                    activation=frame,
                    violated=verdict.outcome is Outcome.MISS,
                    timestamp_ns=timestamp,
                )
        records.sort(key=lambda r: (r.timestamp_ns, r.seq))
        service = TelemetryService(ServiceConfig(store=store))
        service.ingest_many(records)
        service.drain()
        return service.alert_log.counts_by_rule(), service.applied


def run_dag_campaign(
    config: Optional[DagCampaignConfig] = None,
    scenarios: Optional[Sequence[DagFaultScenario]] = None,
) -> DagCampaignResult:
    """Convenience entry point: the standard DAG matrix."""
    return DagCampaign(scenarios=scenarios, config=config).run()
