"""Fault-injection primitives.

A :class:`FaultInjector` arms itself against a built (not yet running)
:class:`~repro.perception.stack.PerceptionStack`: it installs hooks or
schedules state changes on the simulation clock, and records every
physical action it takes as an :class:`Injection` so oracles can
correlate monitor reports with ground truth.

All injectors are deterministic: their activity windows are expressed in
chain activations (frames) or absolute simulation time, and any
randomness they need comes from the simulator's named seeded streams --
two campaign runs with the same seed produce bit-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Injection:
    """One physical fault action taken by an injector."""

    #: Fault class, e.g. ``"loss_burst"`` or ``"clock_step"``.
    kind: str
    #: What was faulted (a link, ECU, node or lidar mount name).
    target: str
    #: Simulation-time window during which the fault is active.
    start_ns: int
    end_ns: int
    #: Affected chain activations, when frame-addressable.
    frames: Optional[range] = None
    #: Free-form specifics (drop counts, ppm, stall ns, ...).
    detail: dict = field(default_factory=dict)


class FaultInjector:
    """Base class for all injectors.

    Subclasses override :meth:`arm`; it is called exactly once, after
    the stack is built and before ``stack.run``.  Everything an injector
    does must be either an immediate hook installation or an event
    scheduled via ``stack.sim`` -- never direct mutation of running
    state from outside the event loop.
    """

    #: Fault class identifier (used by campaign coverage accounting).
    kind: str = "fault"

    def __init__(self, name: Optional[str] = None):
        self.name = name or type(self).__name__
        self.injections: List[Injection] = []
        self._armed = False

    def arm(self, stack) -> None:
        """Install the fault on *stack* (exactly once, pre-run)."""
        if self._armed:
            raise RuntimeError(f"{self.name} is already armed")
        self._armed = True
        self._arm(stack)

    def _arm(self, stack) -> None:
        raise NotImplementedError

    def clock_error_bound(self) -> int:
        """Worst extra clock desync (ns) this fault can cause.

        Folded into the soundness oracle's epsilon: a monitor using a
        desynchronized clock may legitimately report a miss that global
        time disagrees with by up to this much.
        """
        return 0

    def record(self, injection: Injection) -> None:
        """Archive one physical action (called by subclasses)."""
        self.injections.append(injection)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name} armed={self._armed}>"


def frame_window_ns(stack, first_frame: int, last_frame: int) -> tuple:
    """[start, end) simulation-time window covering the given frames.

    Frame n is published at ``n * period`` (plus capture time), so the
    window opens at the first frame's nominal activation and closes at
    the activation after the last.
    """
    period = stack.config.period
    return (first_frame * period, (last_frame + 1) * period)
