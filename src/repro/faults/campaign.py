"""The fault-injection campaign: scenarios, runner, verdicts.

A :class:`FaultScenario` names a fault hypothesis ("the inter-ECU link
goes dark for a quarter of the run") and builds the injectors realizing
it; the :class:`FaultCampaign` executes each scenario on a freshly built
:class:`~repro.perception.stack.PerceptionStack` with ground-truth
recording, optional graceful degradation, and checks both oracles
afterwards.  Scenario windows scale with the configured frame count, so
the same matrix runs as a CI smoke (``REPRO_FAULT_FRAMES=40``) or a
long soak.

The ``disable_violation_reporting`` switch exists purely to prove the
no-silent-violation oracle discriminates: it silences every non-OK
monitor report (the physical suppression still happens), which must make
completeness fail on any scenario that causes real overruns.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.chain_runtime import Outcome
from repro.faults.base import FaultInjector
from repro.faults.degradation import (
    EscalationPolicy,
    GracefulDegradationManager,
    MonitorWatchdog,
)
from repro.faults.ground_truth import GroundTruthRecorder
from repro.faults.injectors import (
    ClockDrift,
    ClockStep,
    CpuOverload,
    ExecutorStall,
    LatencySpike,
    LinkPartition,
    LossBurst,
    PtpHoldover,
    SilentSensor,
    StuckSensor,
)
from repro.faults.oracles import OracleReport, check_completeness, check_soundness
from repro.perception.stack import PerceptionStack, StackConfig
from repro.sim.kernel import msec, usec

#: Environment knob for campaign length (frames per scenario).
FRAMES_ENV = "REPRO_FAULT_FRAMES"
DEFAULT_FRAMES = 48


def campaign_frames(default: int = DEFAULT_FRAMES) -> int:
    """Frames per scenario, overridable via ``REPRO_FAULT_FRAMES``."""
    try:
        value = int(os.environ.get(FRAMES_ENV, default))
    except ValueError:
        return default
    return max(16, value)


@dataclass
class FaultScenario:
    """One scripted fault hypothesis."""

    name: str
    description: str
    #: Distinct fault classes this scenario exercises (coverage).
    fault_classes: Tuple[str, ...]
    #: Builds the injectors for a run of *n_frames* activations.
    build: Callable[[int], List[FaultInjector]]
    #: StackConfig field overrides for this scenario.
    config_overrides: dict = field(default_factory=dict)
    #: True when detection depends on the monitor watchdog (cold-start
    #: silence) -- such scenarios are skipped when the watchdog is off.
    watchdog_required: bool = False


@dataclass
class CampaignConfig:
    """Execution parameters shared by every scenario."""

    n_frames: int = field(default_factory=campaign_frames)
    seed: int = 11
    #: Activations excluded from oracle checks at the start/end of the
    #: run (startup transients / frames still in flight at shutdown).
    warmup: int = 2
    tail: int = 4
    #: Slack added to the clock-error epsilon of the soundness oracle.
    epsilon_margin: int = usec(500)
    degradation: bool = True
    watchdog: bool = True
    policy: EscalationPolicy = field(default_factory=EscalationPolicy)
    disable_violation_reporting: bool = False
    #: Attach a span recorder to every scenario's stack (causal span
    #: tracing; the campaign result is unchanged by it either way).
    spans: bool = False
    #: Route every chain through the DAG model as a degenerate
    #: single-path instance (differential identity switch; see
    #: ``StackConfig.via_dag``).
    via_dag: bool = False

    def __post_init__(self) -> None:
        if self.n_frames < self.warmup + self.tail + 8:
            raise ValueError(
                f"n_frames={self.n_frames} too small for "
                f"warmup={self.warmup} + tail={self.tail}"
            )


@dataclass
class ScenarioResult:
    """Everything observed while running one scenario."""

    name: str
    fault_classes: Tuple[str, ...]
    n_frames: int
    soundness: OracleReport
    completeness: OracleReport
    #: Monitor-level detections (MISS/RECOVERED) inside the check window.
    detections: int
    #: Physical fault actions the injectors recorded.
    injections: int
    final_mode: Optional[str]
    mode_transitions: List[Tuple[int, str, str, str]]
    safe_state_entries: int
    watchdog_rearms: int
    epsilon_ns: int
    #: Alert counts by rule from replaying the finished run through the
    #: telemetry service (see :mod:`repro.telemetry`).
    alert_counts: Dict[str, int] = field(default_factory=dict)
    #: Telemetry records the replay applied.
    telemetry_records: int = 0

    @property
    def passed(self) -> bool:
        """Both oracles hold."""
        return self.soundness.passed and self.completeness.passed


@dataclass
class CampaignResult:
    """Aggregate outcome of a campaign."""

    scenarios: List[ScenarioResult]

    @property
    def passed(self) -> bool:
        """True when every scenario passed both oracles."""
        return all(s.passed for s in self.scenarios)

    @property
    def fault_classes_covered(self) -> set:
        """Union of fault classes across all scenarios."""
        return {c for s in self.scenarios for c in s.fault_classes}

    def render_report(self) -> str:
        """Human-readable campaign matrix."""
        lines = [
            f"{'scenario':22s} {'classes':28s} {'sound':>7s} "
            f"{'complete':>9s} {'detect':>6s} {'mode':>9s} {'alerts':>7s}"
        ]
        for s in self.scenarios:
            lines.append(
                f"{s.name:22s} {','.join(s.fault_classes):28s} "
                f"{('PASS' if s.soundness.passed else 'FAIL'):>7s} "
                f"{('PASS' if s.completeness.passed else 'FAIL'):>9s} "
                f"{s.detections:>6d} {(s.final_mode or '-'):>9s} "
                f"{sum(s.alert_counts.values()):>7d}"
            )
        covered = sorted(self.fault_classes_covered)
        lines.append(
            f"{len(self.scenarios)} scenarios, "
            f"{len(covered)} fault classes: {', '.join(covered)}"
        )
        lines.append(f"campaign: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def default_scenarios() -> List[FaultScenario]:
    """The standard campaign matrix (>= 6 distinct fault classes)."""

    def s(name, description, classes, build, watchdog_required=False,
          **overrides):
        return FaultScenario(
            name=name, description=description, fault_classes=classes,
            build=build, config_overrides=overrides,
            watchdog_required=watchdog_required,
        )

    return [
        s("loss_burst",
          "inter-ECU link drops every frame for a quarter of the run",
          ("loss_burst",),
          lambda n: [LossBurst("link_12", n // 4, n // 2)]),
        s("latency_spike",
          "front sensor link gains +15 ms, beyond d_mon(s0)",
          ("latency_spike",),
          lambda n: [LatencySpike("link_front", n // 4, n // 2, msec(15))]),
        s("partition",
          "both sensor links partitioned: total sensor blackout",
          ("partition",),
          lambda n: [LinkPartition(["link_front", "link_rear"],
                                   n // 4, n // 2)]),
        s("clock_drift",
          "ECU1 oscillator ramps at 15000 ppm between PTP syncs",
          ("clock_drift",),
          lambda n: [ClockDrift("ecu1", n // 4, n - 8, 15000.0)]),
        s("clock_step",
          "ECU2 clock steps +20 ms (bad sync pulse)",
          ("clock_step",),
          lambda n: [ClockStep("ecu2", n // 3, msec(20))]),
        s("clock_holdover",
          "PTP holdover loss while ECU1 drifts at 6000 ppm uncorrected",
          ("ptp_holdover", "clock_drift"),
          lambda n: [PtpHoldover(n // 6, n - 8),
                     ClockDrift("ecu1", n // 6 + 2, n - 8, 6000.0)]),
        s("cpu_overload",
          "mid-priority hogs saturate ECU2's cores",
          ("cpu_overload",),
          lambda n: [CpuOverload("ecu2", n // 4, n // 4 + max(6, n // 6))]),
        s("executor_stall",
          "runaway callback blocks the classifier executor for 500 ms",
          ("executor_stall",),
          lambda n: [ExecutorStall("classifier", n // 3, msec(500))]),
        s("silent_sensor",
          "front lidar silent mid-run",
          ("silent_sensor",),
          lambda n: [SilentSensor("front", n // 4, n // 2)]),
        s("silent_sensor_boot",
          "front lidar silent from boot: the monitor never self-arms",
          ("silent_sensor",),
          lambda n: [SilentSensor("front", 0, n // 3)],
          watchdog_required=True),
        s("sensor_stuck",
          "rear lidar frozen on its last sweep (passes liveliness)",
          ("sensor_stuck",),
          lambda n: [StuckSensor("rear", n // 4, n // 2)]),
    ]


class _OkOnlyReporter:
    """Forwards only OK reports -- the oracle-discrimination lesion."""

    def __init__(self, inner):
        self._inner = inner

    def report(self, segment_name, activation, outcome, **kwargs):
        if outcome is Outcome.OK:
            self._inner.report(segment_name, activation, outcome, **kwargs)

    def report_exception(self, exception):
        pass


def _silence_violation_reports(stack) -> None:
    for source in list(stack.local_runtimes.values()) + list(
        stack.remote_monitors.values()
    ):
        source.reporters = [_OkOnlyReporter(r) for r in source.reporters]


class FaultCampaign:
    """Runs a scenario matrix and verifies both oracles per scenario."""

    def __init__(
        self,
        scenarios: Optional[Sequence[FaultScenario]] = None,
        config: Optional[CampaignConfig] = None,
    ):
        self.scenarios = list(scenarios) if scenarios is not None \
            else default_scenarios()
        self.config = config or CampaignConfig()

    def run(self) -> CampaignResult:
        """Execute every scenario (each on a fresh stack)."""
        results = []
        for scenario in self.scenarios:
            if scenario.watchdog_required and not self.config.watchdog:
                continue
            results.append(self.run_scenario(scenario))
        return CampaignResult(scenarios=results)

    def run_scenario(self, scenario: FaultScenario) -> ScenarioResult:
        """Build, fault, run and judge one scenario."""
        cc = self.config
        stack_config = dataclasses.replace(
            StackConfig(seed=cc.seed, spans=cc.spans, via_dag=cc.via_dag),
            **scenario.config_overrides,
        )
        stack = PerceptionStack(stack_config)
        truth = GroundTruthRecorder(stack)
        injectors = scenario.build(cc.n_frames)
        for injector in injectors:
            injector.arm(stack)

        manager = None
        watchdog = None
        if cc.degradation:
            manager = GracefulDegradationManager(
                stack, policy=cc.policy, watchdog=cc.watchdog
            )
            manager.start(cc.n_frames)
            watchdog = manager.watchdog
        elif cc.watchdog:
            watchdog = MonitorWatchdog(stack)
            watchdog.start(max(0, (cc.n_frames - 3) * stack_config.period))
        if cc.disable_violation_reporting:
            _silence_violation_reports(stack)

        stack.run(n_frames=cc.n_frames)
        for runtime in stack.chain_runtimes.values():
            runtime.advance_window(cc.n_frames - 1)

        first = cc.warmup
        last = cc.n_frames - cc.tail
        epsilon = (
            stack.ptp.error_bound()
            + sum(i.clock_error_bound() for i in injectors)
            + cc.epsilon_margin
        )
        soundness = check_soundness(stack, truth, epsilon, first, last)
        completeness = check_completeness(stack, truth, first, last)

        detections = 0
        for source in list(stack.local_runtimes.values()) + list(
            stack.remote_monitors.values()
        ):
            detections += sum(
                1 for n, _lat, outcome in source.latencies
                if outcome in (Outcome.MISS, Outcome.RECOVERED)
                and first <= n < last
            )
        alert_counts, telemetry_records = self._replay_telemetry(
            stack, scenario.name, cc.n_frames, manager
        )
        return ScenarioResult(
            name=scenario.name,
            fault_classes=scenario.fault_classes,
            n_frames=cc.n_frames,
            soundness=soundness,
            completeness=completeness,
            detections=detections,
            injections=sum(len(i.injections) for i in injectors),
            final_mode=manager.mode.value if manager is not None else None,
            mode_transitions=[
                (t, old.value, new.value, reason)
                for t, old, new, reason in (manager.transitions if manager else [])
            ],
            safe_state_entries=manager.safe_state_entries if manager else 0,
            watchdog_rearms=len(watchdog.rearms) if watchdog else 0,
            epsilon_ns=epsilon,
            alert_counts=alert_counts,
            telemetry_records=telemetry_records,
        )

    @staticmethod
    def _replay_telemetry(
        stack, source: str, n_frames: int, manager
    ) -> Tuple[Dict[str, int], int]:
        """Replay the finished run through a fresh telemetry service.

        Only data time flows in (synthesized timestamps, recorded
        latencies), so serial and parallel campaign runs produce
        identical alert counts.
        """
        from repro.telemetry.emitter import (
            replay_stack_records,
            stack_store_config,
        )
        from repro.telemetry.service import ServiceConfig, TelemetryService

        service = TelemetryService(
            ServiceConfig(store=stack_store_config(stack))
        )
        service.ingest_many(
            replay_stack_records(stack, source, n_frames, manager=manager)
        )
        service.drain()
        return service.alert_log.counts_by_rule(), service.applied


def run_default_campaign(
    config: Optional[CampaignConfig] = None,
) -> CampaignResult:
    """Convenience entry point: the standard matrix, default config."""
    return FaultCampaign(config=config).run()
