"""A fork/join perception-fusion pipeline on selectable executor models.

The linear fault campaign runs the paper's two-ECU Autoware stack; this
module is its DAG counterpart, exercising exactly the topology the
linear model cannot express::

    cam --link--> ECU1[fusion join] --link--> ECU2[plan sink]
    lid --link-->                              ECU2[viz  sink]

Monitored segments (a genuine join at ``s_xfer``, fork to two sinks)::

    s_cam, s_lid        remote   sensor publication -> ECU1 receive
    s_fuse_cam/_lid     local    ECU1 receive -> fused publication
    s_xfer              remote   fused publication -> ECU2 receive
    s_plan, s_viz       local    ECU2 receive -> sink receive

Four root->sink paths (cam/lid x plan/viz) with *different* sink
deadlines, each supervised end-to-end by a per-path monitor feeding the
bit-packed (m,k) automata of :class:`~repro.core.dag_runtime.DagChainRuntime`.

Compute stages dispatch through the faithful ROS 2 executor models of
:mod:`repro.ros.executors` -- the executor is a *scenario parameter*, so
the same fault hypothesis runs under single-threaded polling-point,
multi-threaded callback-group, and priority-driven semantics.

Everything is seeded: per-stream ``np.random.Generator`` instances are
derived from ``(seed, stream index)`` so runs are bit-identical across
processes and platforms (the same discipline the main simulator uses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.chain_runtime import Outcome
from repro.core.dag import DagChain
from repro.core.dag_runtime import DagChainRuntime
from repro.core.segments import local_segment, remote_segment
from repro.core.weakly_hard import MKConstraint
from repro.ros.executors import EXECUTOR_MODELS, EventLoop
from repro.sim.kernel import msec, usec

#: The DAG's segment names, registration order.
DAG_SEGMENT_NAMES = (
    "s_cam", "s_lid", "s_fuse_cam", "s_fuse_lid", "s_xfer", "s_plan", "s_viz",
)

#: RNG stream registry: name -> stable sub-seed index.
_RNG_STREAMS = (
    "cam_jitter", "lid_jitter", "link_cam", "link_lid", "link_xfer",
    "store_exec", "fuse_exec", "plan_exec", "viz_exec",
)


def _default_d_mon() -> Dict[str, int]:
    return {
        "s_cam": msec(10),
        "s_lid": msec(10),
        "s_fuse_cam": msec(8),
        "s_fuse_lid": msec(8),
        "s_xfer": msec(10),
        "s_plan": msec(60),
        "s_viz": msec(40),
    }


@dataclass
class DagStackConfig:
    """Everything tunable about the DAG pipeline."""

    seed: int = 1
    period: int = msec(100)
    #: Executor model per compute ECU: a key of
    #: :data:`~repro.ros.executors.EXECUTOR_MODELS`.
    executor_model: str = "single"
    mk: MKConstraint = field(default_factory=lambda: MKConstraint(2, 8))
    #: Monitored deadline per segment; per-path e2e deadlines telescope.
    d_mon: Dict[str, int] = field(default_factory=_default_d_mon)
    #: Slack between a path's monitored deadline and its sink's hard
    #: end-to-end budget (covers clock error + handler time).
    budget_slack: int = msec(20)
    # Platform.
    link_latency: int = usec(500)
    link_jitter: int = usec(150)
    store_exec_ns: int = usec(200)
    fuse_exec_ns: int = msec(4)
    plan_exec_ns: int = msec(8)
    viz_exec_ns: int = msec(3)
    compute_noise: float = 0.2
    # Fault hooks (installed by injectors; frame index is the argument).
    drop_source: List[Callable[[str, int], bool]] = field(default_factory=list)
    link_extra_delay: List[Callable[[str, int], int]] = field(default_factory=list)
    exec_scale: List[Callable[[str, int], float]] = field(default_factory=list)
    stall_exec: List[Callable[[int], Optional[int]]] = field(default_factory=list)
    #: Monitor clock error as a function of global time (ns -> ns).
    clock_error: List[Callable[[int], int]] = field(default_factory=list)


def build_perception_dag(config: DagStackConfig) -> DagChain:
    """The fork/join DAG instance (segments, edges, per-sink budgets)."""
    d = config.d_mon
    segments = [
        remote_segment("s_cam", "cam_points", "cam", "ecu1",
                       src_process="cam_driver", dst_process="fusion",
                       d_mon=d["s_cam"]),
        remote_segment("s_lid", "lid_points", "lid", "ecu1",
                       src_process="lid_driver", dst_process="fusion",
                       d_mon=d["s_lid"]),
        local_segment("s_fuse_cam", "ecu1", "cam_points", "fused",
                      start_process="fusion", end_process="fusion",
                      d_mon=d["s_fuse_cam"]),
        local_segment("s_fuse_lid", "ecu1", "lid_points", "fused",
                      start_process="fusion", end_process="fusion",
                      d_mon=d["s_fuse_lid"]),
        remote_segment("s_xfer", "fused", "ecu1", "ecu2",
                       src_process="fusion", dst_process="plan",
                       d_mon=d["s_xfer"]),
        local_segment("s_plan", "ecu2", "fused", "plan_out",
                      start_process="plan", end_process="plan",
                      d_mon=d["s_plan"]),
        local_segment("s_viz", "ecu2", "fused", "viz_out",
                      start_process="plan", end_process="viz",
                      d_mon=d["s_viz"]),
    ]
    edges = [
        ("s_cam", "s_fuse_cam"),
        ("s_lid", "s_fuse_lid"),
        ("s_fuse_cam", "s_xfer"),
        ("s_fuse_lid", "s_xfer"),
        ("s_xfer", "s_plan"),
        ("s_xfer", "s_viz"),
    ]
    # Per-sink budgets: the worst telescoped d_mon into that sink plus
    # slack, so detection (within the telescoped deadline) always
    # precedes a hard budget violation.
    into_plan = max(d["s_cam"] + d["s_fuse_cam"], d["s_lid"] + d["s_fuse_lid"])
    budgets = {
        "s_plan": into_plan + d["s_xfer"] + d["s_plan"] + config.budget_slack,
        "s_viz": into_plan + d["s_xfer"] + d["s_viz"] + config.budget_slack,
    }
    return DagChain(
        name="perception_fusion",
        segments=segments,
        edges=edges,
        period=config.period,
        budget_e2e=budgets,
        budget_seg=config.period,
        mk=config.mk,
    )


class DagGroundTruth:
    """Omniscient global-time event log of one DAG run.

    Like the linear campaign's recorder, this sees *physical* events in
    global simulation time -- a privilege no in-system monitor has.
    """

    def __init__(self, period: int):
        self.period = period
        #: source branch -> frame -> publication time.
        self.source_pub: Dict[str, Dict[int, int]] = {"cam": {}, "lid": {}}
        #: source branch -> frame -> ECU1 arrival time.
        self.arrival: Dict[str, Dict[int, int]] = {"cam": {}, "lid": {}}
        #: frame -> fused publication time.
        self.fused_pub: Dict[int, int] = {}
        #: frame -> ECU2 arrival time.
        self.xfer_arrival: Dict[int, int] = {}
        #: sink segment -> frame -> completion time.
        self.completion: Dict[str, Dict[int, int]] = {"s_plan": {}, "s_viz": {}}

    def sink_completion(self, sink: str, frame: int) -> Optional[int]:
        """Global completion time of one sink for one activation."""
        return self.completion[sink].get(frame)

    def e2e_latency(self, sink: str, frame: int) -> Optional[int]:
        """Sink completion relative to the nominal activation instant."""
        completed = self.sink_completion(sink, frame)
        if completed is None:
            return None
        return completed - frame * self.period


@dataclass
class PathVerdict:
    """One path monitor's report for one activation."""

    outcome: Outcome
    #: Monitor-measured latency (its own clock); None for timeouts.
    latency: Optional[int]


class PathMonitor:
    """End-to-end monitor of one root->sink path.

    Measures sink completions against the path's telescoped monitored
    deadline using its *local* clock (global time plus the injected
    clock error), and arms a timeout per activation so a frame that
    never completes still produces a detection -- the no-silent-
    violation requirement.
    """

    def __init__(self, stack: "DagStack", path_id: str, sink: str, deadline: int):
        self.stack = stack
        self.path_id = path_id
        self.sink = sink
        self.deadline = deadline
        self.reported: Dict[int, PathVerdict] = {}

    def local_time(self, global_time: int) -> int:
        return global_time + self.stack.monitor_clock_error(global_time)

    def arm(self, frame: int) -> None:
        nominal = frame * self.stack.config.period
        # The timeout fires when the monitor's clock reads the deadline;
        # invert the (piecewise constant per frame) error estimate.
        fire_at = max(
            self.stack.loop.now,
            nominal + self.deadline - self.stack.monitor_clock_error(nominal),
        )
        self.stack.loop.schedule_at(fire_at, lambda: self._timeout(frame))

    def on_completion(self, frame: int, global_time: int) -> None:
        if frame in self.reported:
            return  # timeout already fired for this activation
        measured = self.local_time(global_time) - frame * self.stack.config.period
        outcome = Outcome.OK if measured <= self.deadline else Outcome.MISS
        self.reported[frame] = PathVerdict(outcome=outcome, latency=measured)
        self.stack.runtime.report_path(
            self.path_id, frame, outcome, latency=measured
        )

    def _timeout(self, frame: int) -> None:
        # Monitor-visible state only: completions file their verdict
        # synchronously, so ``frame in self.reported`` fully covers the
        # completed-before-timeout race.  Consulting the ground-truth
        # recorder here would break monitor/oracle independence.
        if frame in self.reported:
            return  # completed (OK or late) before the timeout fired
        self.reported[frame] = PathVerdict(outcome=Outcome.MISS, latency=None)
        self.stack.runtime.report_path(self.path_id, frame, Outcome.MISS)


class DagStack:
    """Builds and runs the fork/join pipeline on one executor model."""

    def __init__(self, config: Optional[DagStackConfig] = None):
        self.config = config or DagStackConfig()
        cfg = self.config
        if cfg.executor_model not in EXECUTOR_MODELS:
            raise ValueError(
                f"unknown executor model {cfg.executor_model!r} "
                f"(have {sorted(EXECUTOR_MODELS)})"
            )
        self.dag = build_perception_dag(cfg)
        self.loop = EventLoop()
        self.truth = DagGroundTruth(cfg.period)
        self.runtime = DagChainRuntime(self.dag)
        self._rng: Dict[str, np.random.Generator] = {
            name: np.random.default_rng(
                np.random.SeedSequence([cfg.seed, index])
            )
            for index, name in enumerate(_RNG_STREAMS)
        }
        factory = EXECUTOR_MODELS[cfg.executor_model]
        self.exec_ecu1 = factory(self.loop, "ecu1")
        self.exec_ecu2 = factory(self.loop, "ecu2")
        self._register_callbacks()
        #: frame -> set of branches whose input reached fusion.
        self._join_state: Dict[int, set] = {}
        self._fused_submitted: set = set()
        self.monitors: List[PathMonitor] = []
        for path in self.dag.paths():
            deadline = sum(
                cfg.d_mon[s] for s in path.segment_names
            )
            self.monitors.append(
                PathMonitor(self, path.path_id, path.sink, deadline)
            )
        self.n_frames = 0

    # ------------------------------------------------------------------
    def _register_callbacks(self) -> None:
        from repro.ros.executors import CallbackGroup, CallbackSpec

        # Fusion callbacks share a mutually exclusive group (they mutate
        # the join buffer); the fuse work itself is in the same group.
        self.exec_ecu1.add_group(CallbackGroup("fusion_group"))
        self.exec_ecu1.add_callback(
            CallbackSpec("on_cam", group="fusion_group", priority=5),
            self._on_sensor_input,
        )
        self.exec_ecu1.add_callback(
            CallbackSpec("on_lid", group="fusion_group", priority=5),
            self._on_sensor_input,
        )
        self.exec_ecu1.add_callback(
            CallbackSpec("fuse", group="fusion_group", priority=3),
            self._on_fused,
        )
        # Plan is the urgent consumer, viz the lazy one; the background
        # hog models a runaway diagnostic callback (stall fault).
        self.exec_ecu2.add_group(CallbackGroup("consumers", reentrant=True))
        self.exec_ecu2.add_callback(
            CallbackSpec("plan", group="consumers", priority=10),
            lambda frame: self._on_sink("s_plan", frame),
        )
        self.exec_ecu2.add_callback(
            CallbackSpec("viz", group="consumers", priority=4),
            lambda frame: self._on_sink("s_viz", frame),
        )
        self.exec_ecu2.add_callback(
            CallbackSpec("hog", group="consumers", priority=0),
            lambda _payload: None,
        )

    # ------------------------------------------------------------------
    # Fault hook evaluation
    # ------------------------------------------------------------------
    def _dropped(self, source: str, frame: int) -> bool:
        return any(hook(source, frame) for hook in self.config.drop_source)

    def _extra_delay(self, link: str, frame: int) -> int:
        return sum(hook(link, frame) for hook in self.config.link_extra_delay)

    def _scale(self, node: str, frame: int) -> float:
        scale = 1.0
        for hook in self.config.exec_scale:
            scale *= hook(node, frame)
        return scale

    def monitor_clock_error(self, global_time: int) -> int:
        """Total injected clock error of the monitor at *global_time*."""
        return sum(hook(global_time) for hook in self.config.clock_error)

    def clock_error_bound(self) -> int:
        """Worst-case |clock error| over the run (oracle epsilon)."""
        horizon = max(1, self.n_frames) * self.config.period * 2
        bound = 0
        for t in range(0, horizon + 1, self.config.period // 4):
            bound = max(bound, abs(self.monitor_clock_error(t)))
        return bound

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def _noisy(self, stream: str, base_ns: int) -> int:
        noise = self._rng[stream].normal(0.0, self.config.compute_noise)
        return max(1, int(base_ns * (1.0 + abs(noise))))

    def _link_delay(self, stream: str, frame: int, link: str) -> int:
        cfg = self.config
        jitter = abs(self._rng[stream].normal(0.0, 1.0)) * cfg.link_jitter
        return cfg.link_latency + int(jitter) + self._extra_delay(link, frame)

    def _emit_frame(self, frame: int) -> None:
        for branch, jitter_stream, link_stream in (
            ("cam", "cam_jitter", "link_cam"),
            ("lid", "lid_jitter", "link_lid"),
        ):
            if self._dropped(branch, frame):
                continue
            publish_at = self.loop.now + int(
                abs(self._rng[jitter_stream].normal(0.0, 1.0)) * usec(50)
            )
            self.loop.schedule_at(
                publish_at,
                lambda b=branch, f=frame, s=link_stream: self._publish(b, f, s),
            )

    def _publish(self, branch: str, frame: int, link_stream: str) -> None:
        self.truth.source_pub[branch][frame] = self.loop.now
        delay = self._link_delay(link_stream, frame, f"link_{branch}")
        self.loop.schedule(
            delay, lambda: self._arrive(branch, frame)
        )

    def _arrive(self, branch: str, frame: int) -> None:
        self.truth.arrival[branch][frame] = self.loop.now
        callback = "on_cam" if branch == "cam" else "on_lid"
        exec_ns = int(
            self._noisy("store_exec", self.config.store_exec_ns)
            * self._scale("fusion", frame)
        )
        self.exec_ecu1.submit(callback, exec_ns, payload=(branch, frame))

    def _on_sensor_input(self, payload: Tuple[str, int]) -> None:
        branch, frame = payload
        present = self._join_state.setdefault(frame, set())
        present.add(branch)
        if present == {"cam", "lid"} and frame not in self._fused_submitted:
            self._fused_submitted.add(frame)
            exec_ns = int(
                self._noisy("fuse_exec", self.config.fuse_exec_ns)
                * self._scale("fusion", frame)
            )
            self.exec_ecu1.submit("fuse", exec_ns, payload=frame)

    def _on_fused(self, frame: int) -> None:
        self.truth.fused_pub[frame] = self.loop.now
        delay = self._link_delay("link_xfer", frame, "link_xfer")
        self.loop.schedule(delay, lambda: self._xfer_arrive(frame))

    def _xfer_arrive(self, frame: int) -> None:
        self.truth.xfer_arrival[frame] = self.loop.now
        plan_ns = int(
            self._noisy("plan_exec", self.config.plan_exec_ns)
            * self._scale("plan", frame)
        )
        viz_ns = int(
            self._noisy("viz_exec", self.config.viz_exec_ns)
            * self._scale("viz", frame)
        )
        self.exec_ecu2.submit("plan", plan_ns, payload=frame)
        self.exec_ecu2.submit("viz", viz_ns, payload=frame)

    def _on_sink(self, sink: str, frame: int) -> None:
        self.truth.completion[sink].setdefault(frame, self.loop.now)
        for monitor in self.monitors:
            if monitor.sink == sink:
                monitor.on_completion(frame, self.loop.now)

    def _frame_start(self, frame: int) -> None:
        for hook in self.config.stall_exec:
            stall_ns = hook(frame)
            if stall_ns:
                self.exec_ecu2.submit("hog", stall_ns, payload=frame)
        for monitor in self.monitors:
            monitor.arm(frame)
        self._emit_frame(frame)

    # ------------------------------------------------------------------
    def run(self, n_frames: int) -> None:
        """Drive the pipeline for *n_frames* periods and settle."""
        self.n_frames = n_frames
        cfg = self.config
        for frame in range(n_frames):
            self.loop.schedule_at(
                frame * cfg.period, lambda f=frame: self._frame_start(f)
            )
        # Settle long enough for the last frame's timeout monitors.
        horizon = (n_frames + 3) * cfg.period + max(
            m.deadline for m in self.monitors
        )
        self.loop.run(until=horizon)
        self.runtime.advance_window(n_frames - 1)

    # ------------------------------------------------------------------
    # Results access
    # ------------------------------------------------------------------
    def monitor_by_path(self, path_id: str) -> PathMonitor:
        """Look up the monitor supervising one path."""
        for monitor in self.monitors:
            if monitor.path_id == path_id:
                return monitor
        raise KeyError(f"no monitor for path {path_id}")

    def detections(self, first: int, last: int) -> int:
        """Reported MISS verdicts across paths in ``[first, last)``."""
        return sum(
            1
            for monitor in self.monitors
            for frame, verdict in monitor.reported.items()
            if first <= frame < last and verdict.outcome is Outcome.MISS
        )

    def executor_dispatches(self) -> Dict[str, int]:
        """Callbacks executed per ECU executor (diagnostics)."""
        return {
            "ecu1": self.exec_ecu1.callbacks_executed,
            "ecu2": self.exec_ecu2.callbacks_executed,
        }
