"""Graceful degradation: escalation policies and the monitor watchdog.

The paper leaves the *reaction* to temporal exceptions open ("handled by
the application itself or by a system-level entity").  This module is
that entity, closing the loop between detection and response:

- a :class:`GracefulDegradationManager` wires the
  :class:`~repro.core.diagnostics.HealthSupervisor` and every
  :class:`~repro.core.chain_runtime.ChainRuntime` into an escalation
  ladder -- NORMAL -> DEGRADED (remote handlers swapped to retry with
  last-good data, restamped to the missed activation) -> SAFE (handlers
  restored so nothing is masked, and a safe-state callback fires once);
  a sustained clean streak de-escalates DEGRADED back to NORMAL;
- a :class:`MonitorWatchdog` guards the remote monitors themselves: the
  synchronization-based monitor only arms its timeout after the *first*
  sample arrives, so a sensor silent from boot is never detected.  The
  watchdog periodically re-arms any unarmed monitor (cold-start or after
  an external stop), turning that blind spot into periodic timeouts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.chain_runtime import Outcome
from repro.core.diagnostics import Health, HealthPolicy, HealthSupervisor
from repro.core.exceptions import ExceptionContext, RecoverAlways
from repro.perception.pointcloud import PointCloud
from repro.sim.kernel import msec


class DegradationMode(enum.Enum):
    """System-level operating mode."""

    NORMAL = "normal"
    DEGRADED = "degraded"
    SAFE = "safe"


@dataclass
class EscalationPolicy:
    """Thresholds of the escalation ladder.

    Counts are cumulative chain-level (m,k) violations across all
    chains since the last return to NORMAL; ``recover_after_clean`` is
    the number of consecutive clean chain activations (summed over
    chains) required to de-escalate.
    """

    degrade_after_violations: int = 1
    safe_after_violations: int = 12
    #: Consecutive chain activations served from stale last-good data
    #: while DEGRADED before escalating anyway: recovery masks misses,
    #: and data *this* stale is no longer safe to act on.
    safe_after_consecutive_recoveries: int = 20
    recover_after_clean: int = 40
    #: Frames to lag behind real time when feeding the sliding windows
    #: (later segments may still report for recent activations).
    advance_lag_frames: int = 3
    health: HealthPolicy = field(default_factory=HealthPolicy)

    def __post_init__(self) -> None:
        if self.degrade_after_violations < 1:
            raise ValueError("degrade_after_violations must be >= 1")
        if self.safe_after_violations < self.degrade_after_violations:
            raise ValueError(
                "safe_after_violations must be >= degrade_after_violations"
            )
        if self.safe_after_consecutive_recoveries < 1:
            raise ValueError(
                "safe_after_consecutive_recoveries must be >= 1"
            )
        if self.recover_after_clean < 1:
            raise ValueError("recover_after_clean must be >= 1")


def _stale_retry_handler() -> RecoverAlways:
    """Degraded-mode remote handler: re-issue last-good data.

    The substitute is restamped to the *missed* activation so downstream
    joins (fusion pairs by frame index) treat it as the current frame --
    stale content, live chain.  Non-cloud payloads propagate.
    """

    def factory(context: ExceptionContext):
        data = context.last_good_data
        if not isinstance(data, PointCloud):
            return None
        return PointCloud(
            points=data.points,
            frame_index=context.exception.activation,
            stamp=data.stamp,
            frame_id="stale_retry",
        )

    return RecoverAlways(factory)


class MonitorWatchdog:
    """Re-arms remote monitors whose timeout timer is not pending.

    Runs a periodic check on the simulation clock.  An unarmed monitor
    that has never seen a sample (``awaiting is None``) gets a cold-start
    deadline ``grace_ns`` from now for the current frame; one that was
    stopped mid-stream is re-armed one period past its last deadline.
    Checks stop at ``until_ns`` so the end-of-run disarm is respected.
    """

    def __init__(self, stack, grace_ns: Optional[int] = None):
        self.stack = stack
        self.sim = stack.sim
        self.period = stack.config.period
        self.grace_ns = grace_ns if grace_ns is not None else msec(2)
        #: (sim_time, segment, activation) for every re-arm performed.
        self.rearms: List[Tuple[int, str, int]] = []
        self._until = 0

    def start(self, until_ns: int) -> None:
        """Begin periodic checks (every period, phase period/2)."""
        self._until = until_ns
        first = self.period // 2
        if first < until_ns:
            self.sim.schedule_at(first, self._tick, label="watchdog:tick")

    def _tick(self) -> None:
        self.kick()
        nxt = self.sim.now + self.period
        if nxt < self._until:
            self.sim.schedule_at(nxt, self._tick, label="watchdog:tick")

    def kick(self) -> None:
        """Check every remote monitor now; re-arm any unarmed one."""
        if self._until and self.sim.now >= self._until:
            return
        for name, monitor in self.stack.remote_monitors.items():
            if monitor.armed:
                continue
            ecu_now = monitor.ecu.now()
            if monitor.awaiting is None:
                activation = self.sim.now // self.period
                deadline = ecu_now + self.grace_ns
            else:
                activation = monitor.awaiting
                base = (monitor.deadline_local
                        if monitor.deadline_local is not None else ecu_now)
                deadline = max(base + self.period, ecu_now + self.grace_ns)
            monitor.arm(activation, deadline)
            self.rearms.append((self.sim.now, name, activation))


class GracefulDegradationManager:
    """Escalation ladder over chain violations and segment health."""

    def __init__(
        self,
        stack,
        policy: Optional[EscalationPolicy] = None,
        on_safe_state: Optional[Callable[[int, str], None]] = None,
        watchdog: bool = True,
    ):
        self.stack = stack
        self.policy = policy or EscalationPolicy()
        self.on_safe_state = on_safe_state
        self.mode = DegradationMode.NORMAL
        #: (sim_time, old_mode, new_mode, reason) for every transition.
        self.transitions: List[Tuple[int, DegradationMode, DegradationMode, str]] = []
        #: Telemetry emission hooks (duck-typed; see
        #: :class:`repro.telemetry.emitter.MonitorTelemetrySink`).
        self.telemetry_sinks: List = []
        self.violation_count = 0
        self.clean_streak = 0
        self.safe_state_entries = 0
        self._recovered_ns: set = set()
        self.supervisor = HealthSupervisor(
            self.policy.health, on_state_change=self._on_health_change
        )
        for source in list(stack.local_runtimes.values()) + list(
            stack.remote_monitors.values()
        ):
            self.supervisor.attach(source)
        for name, runtime in stack.chain_runtimes.items():
            runtime.on_violation = self._make_on_violation(name)
            runtime.on_activation = self._make_on_activation(name)
        self._original_handlers: Dict[str, object] = {}
        self.watchdog = MonitorWatchdog(stack) if watchdog else None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, n_frames: int) -> None:
        """Schedule the periodic supervision tick (call before run)."""
        sim = self.stack.sim
        period = self.stack.config.period
        until = max(0, (n_frames - 3) * period)
        if self.watchdog is not None:
            self.watchdog.start(until)

        def tick():
            frame = sim.now // period - self.policy.advance_lag_frames
            if frame >= 0:
                for runtime in self.stack.chain_runtimes.values():
                    runtime.advance_window(frame)
            nxt = sim.now + period
            if nxt < until:
                sim.schedule_at(nxt, tick, label="degradation:tick")

        if period < until:
            sim.schedule_at(period, tick, label="degradation:tick")

    def reset(self) -> None:
        """Manual return to NORMAL (e.g. after servicing a SAFE stop)."""
        self._restore_handlers()
        self._enter(DegradationMode.NORMAL, "manual reset")
        self.violation_count = 0
        self.clean_streak = 0

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _make_on_violation(self, chain_name: str):
        def on_violation(n: int, misses_in_window: int) -> None:
            self.violation_count += 1
            self.clean_streak = 0
            if (self.mode is DegradationMode.NORMAL
                    and self.violation_count
                    >= self.policy.degrade_after_violations):
                self._enter_degraded(
                    f"{chain_name} violated (m,k) at n={n} "
                    f"({misses_in_window} misses in window)"
                )
            elif (self.mode is DegradationMode.DEGRADED
                    and self.violation_count
                    >= self.policy.safe_after_violations):
                self._enter_safe(
                    f"{self.violation_count} cumulative violations "
                    f"(last: {chain_name} n={n})"
                )

        return on_violation

    def _make_on_activation(self, chain_name: str):
        def on_activation(n: int, violated: bool) -> None:
            if violated:
                self.clean_streak = 0
                return
            records = self.stack.chain_runtimes[chain_name].records.get(n, {})
            if any(r.outcome is Outcome.RECOVERED for r in records.values()):
                # Served, but from stale substitutes: neither clean nor
                # violated.  Too many of these in a row is its own
                # escalation trigger -- the masked data is aging.
                self._recovered_ns.add(n)
                if self.mode is DegradationMode.DEGRADED:
                    streak = 0
                    i = n
                    while i in self._recovered_ns:
                        streak += 1
                        i -= 1
                    if streak >= self.policy.safe_after_consecutive_recoveries:
                        self._enter_safe(
                            f"{streak} consecutive activations served "
                            f"from stale data (last: {chain_name} n={n})"
                        )
                return
            self.clean_streak += 1
            if (self.mode is DegradationMode.DEGRADED
                    and self.clean_streak >= self.policy.recover_after_clean):
                self._restore_handlers()
                self._enter(
                    DegradationMode.NORMAL,
                    f"{self.clean_streak} consecutive clean activations",
                )
                self.violation_count = 0

        return on_activation

    def _on_health_change(self, segment: str, old: Health, new: Health) -> None:
        if old is Health.FAILED and new is not Health.FAILED:
            # The segment came back: make sure its monitor is armed again.
            if self.watchdog is not None:
                self.watchdog.kick()
        if new is Health.FAILED and self.mode is DegradationMode.NORMAL:
            self._enter_degraded(f"segment {segment} FAILED")

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def _enter(self, mode: DegradationMode, reason: str) -> None:
        if mode is self.mode:
            return
        self.transitions.append((self.stack.sim.now, self.mode, mode, reason))
        if self.telemetry_sinks:
            for sink in self.telemetry_sinks:
                sink.mode_event(
                    self.mode.value, mode.value, reason, self.stack.sim.now
                )
        self.stack.sim.emit_trace(
            "degradation.transition",
            old=self.mode.value, new=mode.value, reason=reason,
        )
        spans = self.stack.sim.spans
        if spans is not None:
            spans.instant(
                "degradation.transition",
                "mode",
                old=self.mode.value, new=mode.value, reason=reason,
            )
        self.mode = mode

    def _enter_degraded(self, reason: str) -> None:
        # Retry with last-good data: remote segments get a recovery
        # handler so single misses stop propagating down the chain.
        for name, monitor in self.stack.remote_monitors.items():
            if name not in self._original_handlers:
                self._original_handlers[name] = monitor.handler
            monitor.handler = _stale_retry_handler()
        self.clean_streak = 0
        self._enter(DegradationMode.DEGRADED, reason)

    def _enter_safe(self, reason: str) -> None:
        # Stop masking: restore the application's own handlers and tell
        # the vehicle to reach a safe state.  SAFE is terminal until an
        # explicit reset.
        if self.mode is DegradationMode.SAFE:
            return
        self._restore_handlers()
        self._enter(DegradationMode.SAFE, reason)
        self.safe_state_entries += 1
        if self.on_safe_state is not None:
            self.on_safe_state(self.stack.sim.now, reason)

    def _restore_handlers(self) -> None:
        for name, handler in self._original_handlers.items():
            self.stack.remote_monitors[name].handler = handler
        self._original_handlers.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<GracefulDegradationManager mode={self.mode.value} "
            f"violations={self.violation_count}>"
        )
