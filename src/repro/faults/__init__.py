"""Deterministic fault injection, verification oracles and degradation.

Layers:

- :mod:`repro.faults.base` -- injector protocol and bookkeeping;
- :mod:`repro.faults.injectors` -- network, clock, compute and sensor
  fault injectors;
- :mod:`repro.faults.ground_truth` -- omniscient global-time recorder;
- :mod:`repro.faults.oracles` -- soundness and no-silent-violation;
- :mod:`repro.faults.degradation` -- escalation ladder and watchdog;
- :mod:`repro.faults.campaign` -- the scenario matrix and runner;
- :mod:`repro.faults.dag_stack` / :mod:`repro.faults.dag_scenarios` --
  the fork/join DAG pipeline on selectable ROS 2 executor models, with
  per-path oracles and its own scenario matrix.
"""

from repro.faults.base import FaultInjector, Injection, frame_window_ns
from repro.faults.campaign import (
    CampaignConfig,
    CampaignResult,
    FaultCampaign,
    FaultScenario,
    ScenarioResult,
    campaign_frames,
    default_scenarios,
    run_default_campaign,
)
from repro.faults.degradation import (
    DegradationMode,
    EscalationPolicy,
    GracefulDegradationManager,
    MonitorWatchdog,
)
from repro.faults.ground_truth import GroundTruthRecorder
from repro.faults.injectors import (
    ClockDrift,
    ClockStep,
    CpuOverload,
    ExecutorStall,
    LatencySpike,
    LinkPartition,
    LossBurst,
    PtpHoldover,
    SilentSensor,
    StuckSensor,
)
from repro.faults.oracles import (
    OracleFailure,
    OracleReport,
    check_completeness,
    check_soundness,
)
from repro.faults.dag_stack import DagGroundTruth, DagStack, DagStackConfig
from repro.faults.dag_scenarios import (
    DagCampaign,
    DagCampaignConfig,
    DagCampaignResult,
    DagFaultScenario,
    DagScenarioResult,
    check_dag_completeness,
    check_dag_soundness,
    default_dag_scenarios,
    run_dag_campaign,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "ClockDrift",
    "ClockStep",
    "CpuOverload",
    "DegradationMode",
    "EscalationPolicy",
    "ExecutorStall",
    "FaultCampaign",
    "FaultInjector",
    "FaultScenario",
    "GracefulDegradationManager",
    "GroundTruthRecorder",
    "Injection",
    "LatencySpike",
    "LinkPartition",
    "LossBurst",
    "MonitorWatchdog",
    "OracleFailure",
    "OracleReport",
    "PtpHoldover",
    "ScenarioResult",
    "SilentSensor",
    "StuckSensor",
    "campaign_frames",
    "check_completeness",
    "check_soundness",
    "default_scenarios",
    "frame_window_ns",
    "run_default_campaign",
    "DagCampaign",
    "DagCampaignConfig",
    "DagCampaignResult",
    "DagFaultScenario",
    "DagGroundTruth",
    "DagScenarioResult",
    "DagStack",
    "DagStackConfig",
    "check_dag_completeness",
    "check_dag_soundness",
    "default_dag_scenarios",
    "run_dag_campaign",
]
