"""The injector catalogue: network, clock, compute and sensor faults.

Fault windows are specified in *chain activations* (frame indices) and
converted to simulation time with the stack's period, so a scenario
reads like its ground truth: "the inter-ECU link is dead for frames
12..22".

Targets are named by their attribute on the stack:

- links: ``"link_front"``, ``"link_rear"``, ``"link_12"``
- ECUs: ``"ecu1"``, ``"ecu2"``, ``"lidar_front"``, ``"lidar_rear"``
- nodes: ``"fusion"``, ``"classifier"``, ``"object_detection"``, ``"rviz"``
- lidar mounts: ``"front"``, ``"rear"``
"""

from __future__ import annotations

from typing import List, Optional

from repro.faults.base import FaultInjector, Injection, frame_window_ns
from repro.sim.threads import Compute

#: Node name -> stack attribute.
_NODE_ATTRS = {
    "fusion": "node_fusion",
    "classifier": "node_classifier",
    "object_detection": "node_detector",
    "rviz": "node_rviz",
}


def _resolve_link(stack, link_attr: str):
    link = getattr(stack, link_attr, None)
    if link is None:
        raise ValueError(f"stack has no link {link_attr!r}")
    return link


def _resolve_ecu(stack, ecu_name: str):
    for ecu in stack.ecus:
        if ecu.name == ecu_name:
            return ecu
    raise ValueError(f"stack has no ECU named {ecu_name!r}")


def _resolve_node(stack, node_name: str):
    attr = _NODE_ATTRS.get(node_name)
    if attr is None:
        raise ValueError(f"unknown node {node_name!r}")
    return getattr(stack, attr)


def _resolve_lidar(stack, mount: str):
    if mount == "front":
        return stack.lidar_front
    if mount == "rear":
        return stack.lidar_rear
    raise ValueError(f"unknown lidar mount {mount!r}")


# ----------------------------------------------------------------------
# Network faults
# ----------------------------------------------------------------------
class LossBurst(FaultInjector):
    """Drop every frame on one link during an activation window.

    Installed as a ``loss_filter`` (chaining any existing one), so the
    link's loss counters and ``on_loss`` hook still fire -- the physical
    drop is observable to ground truth but not to the receiver.
    """

    kind = "loss_burst"

    def __init__(self, link_attr: str, first_frame: int, last_frame: int):
        super().__init__(name=f"loss_burst:{link_attr}")
        self.link_attr = link_attr
        self.first_frame = first_frame
        self.last_frame = last_frame
        self.dropped = 0

    def _arm(self, stack) -> None:
        link = _resolve_link(stack, self.link_attr)
        sim = stack.sim
        start, end = frame_window_ns(stack, self.first_frame, self.last_frame)
        inner = link.loss_filter

        def burst_filter(frame) -> bool:
            if start <= sim.now < end:
                self.dropped += 1
                return True
            return inner(frame) if inner is not None else False

        link.loss_filter = burst_filter
        self.record(Injection(
            kind=self.kind, target=self.link_attr, start_ns=start, end_ns=end,
            frames=range(self.first_frame, self.last_frame + 1),
        ))


class LatencySpike(FaultInjector):
    """Add a fixed extra latency to one link during a window.

    Mutates ``base_latency`` on the simulation clock (plain point-to-
    point links only; switched links derive latency from queueing).
    """

    kind = "latency_spike"

    def __init__(self, link_attr: str, first_frame: int, last_frame: int,
                 extra_ns: int):
        super().__init__(name=f"latency_spike:{link_attr}")
        if extra_ns <= 0:
            raise ValueError("extra_ns must be positive")
        self.link_attr = link_attr
        self.first_frame = first_frame
        self.last_frame = last_frame
        self.extra_ns = int(extra_ns)

    def _arm(self, stack) -> None:
        link = _resolve_link(stack, self.link_attr)
        if not hasattr(link, "base_latency"):
            raise ValueError(
                f"{self.link_attr} has no base_latency (switched link?); "
                "latency spikes need a point-to-point Link"
            )
        start, end = frame_window_ns(stack, self.first_frame, self.last_frame)

        def spike_on():
            link.base_latency += self.extra_ns

        def spike_off():
            link.base_latency -= self.extra_ns

        stack.sim.schedule_at(start, spike_on, label=f"{self.name}:on")
        stack.sim.schedule_at(end, spike_off, label=f"{self.name}:off")
        self.record(Injection(
            kind=self.kind, target=self.link_attr, start_ns=start, end_ns=end,
            frames=range(self.first_frame, self.last_frame + 1),
            detail={"extra_ns": self.extra_ns},
        ))


class LinkPartition(FaultInjector):
    """Total blackout of several links at once (a partitioned segment)."""

    kind = "partition"

    def __init__(self, link_attrs: List[str], first_frame: int, last_frame: int):
        super().__init__(name=f"partition:{'+'.join(link_attrs)}")
        self.bursts = [
            LossBurst(attr, first_frame, last_frame) for attr in link_attrs
        ]

    def _arm(self, stack) -> None:
        for burst in self.bursts:
            burst.kind = self.kind
            burst.arm(stack)
            self.injections.extend(burst.injections)

    @property
    def dropped(self) -> int:
        """Total frames dropped across the partitioned links."""
        return sum(burst.dropped for burst in self.bursts)


# ----------------------------------------------------------------------
# Clock faults
# ----------------------------------------------------------------------
def _rebase(clock) -> None:
    # Snap offset0 to the instantaneous offset before changing the drift
    # rate, so the change never retroactively steps the clock reading.
    clock.correct(clock.offset)


class ClockDrift(FaultInjector):
    """Ramp one ECU's clock at an abnormal drift rate for a window."""

    kind = "clock_drift"

    def __init__(self, ecu_name: str, first_frame: int, last_frame: int,
                 drift_ppm: float):
        super().__init__(name=f"clock_drift:{ecu_name}")
        self.ecu_name = ecu_name
        self.first_frame = first_frame
        self.last_frame = last_frame
        self.drift_ppm = float(drift_ppm)
        self._bound = 0

    def _arm(self, stack) -> None:
        clock = _resolve_ecu(stack, self.ecu_name).clock
        start, end = frame_window_ns(stack, self.first_frame, self.last_frame)
        original = clock.drift_ppm

        def drift_on():
            _rebase(clock)
            clock.drift_ppm = self.drift_ppm

        def drift_off():
            _rebase(clock)
            clock.drift_ppm = original

        stack.sim.schedule_at(start, drift_on, label=f"{self.name}:on")
        stack.sim.schedule_at(end, drift_off, label=f"{self.name}:off")
        # Worst desync: the abnormal rate runs uncorrected for the whole
        # window (PTP may be in holdover concurrently, so do not assume
        # the sync period caps the accumulation).
        self._bound = stack.ptp.residual_error + int(
            abs(self.drift_ppm - original) * 1e-6 * (end - start)
        )
        self.record(Injection(
            kind=self.kind, target=self.ecu_name, start_ns=start, end_ns=end,
            frames=range(self.first_frame, self.last_frame + 1),
            detail={"drift_ppm": self.drift_ppm},
        ))

    def clock_error_bound(self) -> int:
        return self._bound


class ClockStep(FaultInjector):
    """Step one ECU's clock by a fixed amount at one instant."""

    kind = "clock_step"

    def __init__(self, ecu_name: str, at_frame: int, step_ns: int):
        super().__init__(name=f"clock_step:{ecu_name}")
        self.ecu_name = ecu_name
        self.at_frame = at_frame
        self.step_ns = int(step_ns)

    def _arm(self, stack) -> None:
        clock = _resolve_ecu(stack, self.ecu_name).clock
        at = self.at_frame * stack.config.period

        def step():
            clock.correct(clock.offset + self.step_ns)

        stack.sim.schedule_at(at, step, label=f"{self.name}")
        self.record(Injection(
            kind=self.kind, target=self.ecu_name, start_ns=at, end_ns=at,
            frames=range(self.at_frame, self.at_frame + 1),
            detail={"step_ns": self.step_ns},
        ))

    def clock_error_bound(self) -> int:
        return abs(self.step_ns)


class PtpHoldover(FaultInjector):
    """Stop PTP sync rounds for a window (free-running clocks)."""

    kind = "ptp_holdover"

    def __init__(self, first_frame: int, last_frame: int):
        super().__init__(name="ptp_holdover")
        self.first_frame = first_frame
        self.last_frame = last_frame
        self._bound = 0

    def _arm(self, stack) -> None:
        start, end = frame_window_ns(stack, self.first_frame, self.last_frame)
        stack.sim.schedule_at(start, stack.ptp.stop, label=f"{self.name}:stop")
        stack.sim.schedule_at(end, stack.ptp.start, label=f"{self.name}:start")
        max_drift = max(
            (abs(c.drift_ppm) for c in stack.ptp.slaves), default=0.0
        )
        self._bound = stack.ptp.residual_error + int(
            max_drift * 1e-6 * (end - start)
        )
        self.record(Injection(
            kind=self.kind, target="ptp", start_ns=start, end_ns=end,
            frames=range(self.first_frame, self.last_frame + 1),
        ))

    def clock_error_bound(self) -> int:
        return self._bound


# ----------------------------------------------------------------------
# Compute faults
# ----------------------------------------------------------------------
class CpuOverload(FaultInjector):
    """Saturate an ECU's cores with mid-priority hog threads.

    The hogs run above the application processes but below ksoftirq and
    the monitor thread, matching an interference task gone rogue: chain
    callbacks stall while arrivals and timeouts keep being serviced.
    """

    kind = "cpu_overload"

    def __init__(self, ecu_name: str, first_frame: int, last_frame: int,
                 priority: int = 70, slice_ns: int = 1_000_000,
                 n_threads: Optional[int] = None):
        super().__init__(name=f"cpu_overload:{ecu_name}")
        self.ecu_name = ecu_name
        self.first_frame = first_frame
        self.last_frame = last_frame
        self.priority = priority
        self.slice_ns = slice_ns
        self.n_threads = n_threads

    def _arm(self, stack) -> None:
        ecu = _resolve_ecu(stack, self.ecu_name)
        sim = stack.sim
        start, end = frame_window_ns(stack, self.first_frame, self.last_frame)
        n_threads = self.n_threads or len(ecu.scheduler.cores)

        def hog_body(_thread):
            while sim.now < end:
                yield Compute(min(self.slice_ns, end - sim.now))

        def spawn_hogs():
            for i in range(n_threads):
                ecu.spawn(
                    f"{self.name}:hog{i}", hog_body, priority=self.priority
                )

        sim.schedule_at(start, spawn_hogs, label=f"{self.name}:spawn")
        self.record(Injection(
            kind=self.kind, target=self.ecu_name, start_ns=start, end_ns=end,
            frames=range(self.first_frame, self.last_frame + 1),
            detail={"priority": self.priority, "n_threads": n_threads},
        ))


class ExecutorStall(FaultInjector):
    """Block one node's single-threaded executor with a long callback.

    Models a runaway application callback: everything queued behind it
    -- subscription deliveries, timers -- waits the full stall.
    """

    kind = "executor_stall"

    def __init__(self, node_name: str, at_frame: int, stall_ns: int):
        super().__init__(name=f"executor_stall:{node_name}")
        self.node_name = node_name
        self.at_frame = at_frame
        self.stall_ns = int(stall_ns)

    def _arm(self, stack) -> None:
        node = _resolve_node(stack, self.node_name)
        at = self.at_frame * stack.config.period

        def stalled_callback():
            yield Compute(self.stall_ns)

        stack.sim.schedule_at(
            at,
            lambda: node.executor.enqueue(stalled_callback),
            label=f"{self.name}",
        )
        self.record(Injection(
            kind=self.kind, target=self.node_name, start_ns=at,
            end_ns=at + self.stall_ns,
            frames=range(self.at_frame, self.at_frame + 1),
            detail={"stall_ns": self.stall_ns},
        ))


# ----------------------------------------------------------------------
# Sensor / application faults
# ----------------------------------------------------------------------
class SilentSensor(FaultInjector):
    """A lidar that publishes nothing for a window of frames.

    ``first_frame = 0`` models the paper-motivating cold-start gap: a
    sensor dead from boot never produces the first sample that would arm
    the remote monitor's timeout, so detection needs the watchdog.
    """

    kind = "silent_sensor"

    def __init__(self, mount: str, first_frame: int, last_frame: int):
        super().__init__(name=f"silent_sensor:{mount}")
        self.mount = mount
        self.first_frame = first_frame
        self.last_frame = last_frame
        self.suppressed: List[int] = []

    def _arm(self, stack) -> None:
        lidar = _resolve_lidar(stack, self.mount)
        inner = lidar.fault_fn

        def silent_fault(frame: int) -> Optional[int]:
            if self.first_frame <= frame <= self.last_frame:
                self.suppressed.append(frame)
                return None
            return inner(frame) if inner is not None else 0

        lidar.fault_fn = silent_fault
        start, end = frame_window_ns(stack, self.first_frame, self.last_frame)
        self.record(Injection(
            kind=self.kind, target=self.mount, start_ns=start, end_ns=end,
            frames=range(self.first_frame, self.last_frame + 1),
        ))


class StuckSensor(FaultInjector):
    """A lidar frozen on its last sweep: publishes on time, stale data.

    The republished cloud keeps its *old* frame index, so downstream
    monitors see no fresh activation -- the same observable signature as
    silence at the activation level, while bytes keep flowing (the
    classic "stuck sensor passes liveliness checks" failure).
    """

    kind = "sensor_stuck"

    def __init__(self, mount: str, first_frame: int, last_frame: int):
        super().__init__(name=f"sensor_stuck:{mount}")
        self.mount = mount
        self.first_frame = first_frame
        self.last_frame = last_frame
        self.held_frames: List[int] = []

    def _arm(self, stack) -> None:
        lidar = _resolve_lidar(stack, self.mount)
        inner = lidar.transform_fn
        state = {"held": None}

        def stuck_transform(frame: int, cloud):
            if inner is not None:
                cloud = inner(frame, cloud)
            if self.first_frame <= frame <= self.last_frame:
                if state["held"] is not None:
                    self.held_frames.append(frame)
                    return state["held"]
                return cloud  # stuck from frame 0: nothing held yet
            state["held"] = cloud
            return cloud

        lidar.transform_fn = stuck_transform
        start, end = frame_window_ns(stack, self.first_frame, self.last_frame)
        self.record(Injection(
            kind=self.kind, target=self.mount, start_ns=start, end_ns=end,
            frames=range(self.first_frame, self.last_frame + 1),
        ))
