"""ASCII execution timelines from scheduler observations.

A :class:`TimelineRecorder` attaches to a scheduler's observer hook and
records dispatch/preempt/exit transitions; :func:`render_timeline`
draws a Gantt-like per-thread lane chart -- the quickest way to see
*why* a segment ran late (who held the cores, when the monitor thread
got in).

::

    ecu2.classifier.executor |   ######==####          |
    ecu2.monitor             |         #               |
    ecu2.ksoftirq            | #    #      #           |

``#`` marks running time, ``=`` marks time between a preemption and the
next dispatch while the thread stayed runnable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import format_duration
from repro.sim.scheduler import MulticoreScheduler
from repro.sim.threads import SimThread


@dataclass
class _Span:
    start: int
    end: Optional[int]
    kind: str  # "run" or "ready"


class TimelineRecorder:
    """Records per-thread run/ready spans from scheduler events."""

    def __init__(self, scheduler: MulticoreScheduler):
        self.scheduler = scheduler
        self.sim = scheduler.sim
        self.spans: Dict[str, List[_Span]] = {}
        self._open: Dict[str, _Span] = {}
        scheduler.observers.append(self._on_event)

    def _on_event(self, kind: str, thread: SimThread) -> None:
        name = thread.name
        now = self.sim.now
        open_span = self._open.get(name)
        if kind == "dispatch":
            if open_span is not None:
                open_span.end = now
            span = _Span(start=now, end=None, kind="run")
            self.spans.setdefault(name, []).append(span)
            self._open[name] = span
        elif kind == "preempt":
            if open_span is not None:
                open_span.end = now
            span = _Span(start=now, end=None, kind="ready")
            self.spans.setdefault(name, []).append(span)
            self._open[name] = span
        elif kind in ("exit", "block", "yield"):
            if open_span is not None:
                open_span.end = now
                del self._open[name]

    def close(self) -> None:
        """Close any still-open spans at the current instant."""
        for span in self._open.values():
            if span.end is None:
                span.end = self.sim.now
        self._open.clear()

    def busy_time(self, thread_name: str) -> int:
        """Total recorded running time of one thread."""
        total = 0
        for span in self.spans.get(thread_name, []):
            if span.kind == "run" and span.end is not None:
                total += span.end - span.start
        return total


def render_timeline(
    recorder: TimelineRecorder,
    t0: int,
    t1: int,
    width: int = 72,
    threads: Optional[List[str]] = None,
) -> str:
    """Draw the window [t0, t1) as per-thread lanes."""
    if t1 <= t0:
        raise ValueError("need t1 > t0")
    recorder.close()
    if threads is None:
        threads = sorted(recorder.spans)
    label_width = max((len(name) for name in threads), default=8)

    def col(t: int) -> int:
        frac = (t - t0) / (t1 - t0)
        return int(max(0.0, min(1.0, frac)) * (width - 1))

    lines = []
    for name in threads:
        cells = [" "] * width
        for span in recorder.spans.get(name, []):
            end = span.end if span.end is not None else t1
            if end <= t0 or span.start >= t1:
                continue
            mark = "#" if span.kind == "run" else "="
            for i in range(col(max(span.start, t0)), col(min(end, t1)) + 1):
                if mark == "#" or cells[i] == " ":
                    cells[i] = mark
        lines.append(f"{name.ljust(label_width)} |{''.join(cells)}|")
    lines.append(
        f"{' ' * label_width}  {format_duration(t0)} .. {format_duration(t1)}"
        f"  (#=running, ==preempted/ready)"
    )
    return "\n".join(lines)
