"""Statistics and reporting for experiment results.

The paper reports its evaluation as Tukey boxplots (Figs. 9-12).
:mod:`repro.analysis.stats` computes the identical statistics (median,
quartiles, 1.5 IQR whiskers, outliers); :mod:`repro.analysis.report`
renders them as text tables and ASCII boxplots so every benchmark can
print the figure it reproduces.
"""

from repro.analysis.stats import TukeyStats, summarize
from repro.analysis.report import (
    ascii_boxplot,
    format_duration,
    render_table,
    series_csv,
    stats_csv,
    stats_table,
)
from repro.analysis.timeline import TimelineRecorder, render_timeline

__all__ = [
    "TukeyStats",
    "summarize",
    "ascii_boxplot",
    "format_duration",
    "render_table",
    "series_csv",
    "stats_csv",
    "stats_table",
    "TimelineRecorder",
    "render_timeline",
]
