"""Tukey boxplot statistics (the paper's reporting format)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class TukeyStats:
    """The five-number summary plus whiskers and outliers.

    Whiskers extend to the most extreme data point within 1.5 IQR of
    the quartiles (classic Tukey convention, as in the paper's plots).
    """

    n: int
    minimum: float
    whisker_lo: float
    q1: float
    median: float
    q3: float
    whisker_hi: float
    maximum: float
    mean: float
    outliers_lo: int
    outliers_hi: int

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1

    @property
    def outliers(self) -> int:
        """Total points outside the whiskers."""
        return self.outliers_lo + self.outliers_hi


def summarize(samples: Sequence[float]) -> TukeyStats:
    """Compute Tukey boxplot statistics over *samples*."""
    if len(samples) == 0:
        raise ValueError("cannot summarize an empty sample set")
    arr = np.asarray(samples, dtype=np.float64)
    q1, median, q3 = np.percentile(arr, [25, 50, 75])
    iqr = q3 - q1
    lo_fence = q1 - 1.5 * iqr
    hi_fence = q3 + 1.5 * iqr
    inside = arr[(arr >= lo_fence) & (arr <= hi_fence)]
    # Whiskers clamp to the quartiles when no data lies between the
    # quartile and its fence (matplotlib's convention).
    whisker_lo = min(float(inside.min()), float(q1)) if inside.size else float(q1)
    whisker_hi = max(float(inside.max()), float(q3)) if inside.size else float(q3)
    return TukeyStats(
        n=int(arr.size),
        minimum=float(arr.min()),
        whisker_lo=whisker_lo,
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        whisker_hi=whisker_hi,
        maximum=float(arr.max()),
        mean=float(arr.mean()),
        outliers_lo=int((arr < lo_fence).sum()),
        outliers_hi=int((arr > hi_fence).sum()),
    )
