"""Text rendering of experiment results: tables, ASCII boxplots, CSV."""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import TukeyStats
from repro.sim.kernel import NS_PER_MS, NS_PER_US


def format_duration(value_ns: float) -> str:
    """Human-friendly rendering of a nanosecond quantity."""
    if abs(value_ns) >= NS_PER_MS:
        return f"{value_ns / NS_PER_MS:.2f}ms"
    if abs(value_ns) >= NS_PER_US:
        return f"{value_ns / NS_PER_US:.1f}us"
    return f"{value_ns:.0f}ns"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def stats_table(named_stats: Dict[str, TukeyStats]) -> str:
    """One row of Tukey statistics per named series (durations in ns)."""
    headers = ["series", "n", "min", "q1", "median", "q3", "whisk_hi", "max", "outliers"]
    rows = []
    for name, stats in named_stats.items():
        rows.append([
            name,
            str(stats.n),
            format_duration(stats.minimum),
            format_duration(stats.q1),
            format_duration(stats.median),
            format_duration(stats.q3),
            format_duration(stats.whisker_hi),
            format_duration(stats.maximum),
            str(stats.outliers),
        ])
    return render_table(headers, rows)


def stats_csv(named_stats: Dict[str, TukeyStats]) -> str:
    """Machine-readable CSV of Tukey statistics (values in ns)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow([
        "series", "n", "min", "whisker_lo", "q1", "median", "q3",
        "whisker_hi", "max", "mean", "outliers_lo", "outliers_hi",
    ])
    for name, stats in named_stats.items():
        writer.writerow([
            name, stats.n, stats.minimum, stats.whisker_lo, stats.q1,
            stats.median, stats.q3, stats.whisker_hi, stats.maximum,
            stats.mean, stats.outliers_lo, stats.outliers_hi,
        ])
    return out.getvalue()


def series_csv(named_series: Dict[str, Sequence[float]]) -> str:
    """CSV with one column per named sample series (ragged: blank pads)."""
    out = io.StringIO()
    writer = csv.writer(out)
    names = list(named_series)
    writer.writerow(names)
    longest = max((len(v) for v in named_series.values()), default=0)
    for i in range(longest):
        writer.writerow([
            named_series[name][i] if i < len(named_series[name]) else ""
            for name in names
        ])
    return out.getvalue()


def ascii_boxplot(
    named_stats: Dict[str, TukeyStats],
    width: int = 60,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Render horizontal Tukey boxplots over a shared axis.

    ``|---[ = M = ]---|`` with ``M`` the median marker; axis labelled
    with the min/max of the plotted range.
    """
    if not named_stats:
        return "(no data)"
    if lo is None:
        lo = min(s.whisker_lo for s in named_stats.values())
    if hi is None:
        hi = max(s.whisker_hi for s in named_stats.values())
    if hi <= lo:
        hi = lo + 1

    def col(value: float) -> int:
        frac = (value - lo) / (hi - lo)
        return int(round(max(0.0, min(1.0, frac)) * (width - 1)))

    label_width = max(len(name) for name in named_stats)
    lines = []
    for name, stats in named_stats.items():
        cells = [" "] * width
        for i in range(col(stats.whisker_lo), col(stats.whisker_hi) + 1):
            cells[i] = "-"
        for i in range(col(stats.q1), col(stats.q3) + 1):
            cells[i] = "="
        cells[col(stats.whisker_lo)] = "|"
        cells[col(stats.whisker_hi)] = "|"
        cells[col(stats.q1)] = "["
        cells[col(stats.q3)] = "]"
        cells[col(stats.median)] = "M"
        lines.append(f"{name.ljust(label_width)} {''.join(cells)}")
    axis = (
        f"{' ' * label_width} {format_duration(lo)}"
        f"{' ' * max(1, width - len(format_duration(lo)) - len(format_duration(hi)))}"
        f"{format_duration(hi)}"
    )
    lines.append(axis)
    return "\n".join(lines)
