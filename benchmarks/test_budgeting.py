"""Regenerates the Sec. III-C budgeting study (Eqs. 2-7 end to end).

Shape targets:

- the p = 0 problem decomposes and solves exactly; its minimal sum
  lower-bounds the propagated (p = 1) solutions;
- greedy and branch-and-bound both return feasible p = 1 assignments,
  with the exact solver's objective <= greedy's;
- deploying the synthesized deadlines (plus distributed slack) on a
  fresh run satisfies the chain's (m,k) constraint.
"""

from conftest import save_figure

from repro.analysis import format_duration, render_table
from repro.experiments.budgeting_study import run_budgeting_study


def test_budgeting_study(benchmark, results_dir):
    result = benchmark.pedantic(run_budgeting_study, rounds=1, iterations=1)

    rows = []
    for label, solver in (
        ("independent (p=0, exact)", result.independent),
        ("greedy (p=1)", result.greedy),
        ("branch-and-bound (p=1, exact)", result.exact),
    ):
        rows.append([
            label,
            str(solver.schedulable),
            format_duration(solver.total) if solver.schedulable else "-",
            str(solver.nodes_explored),
        ])
    text = (
        "Budgeting study (Sec. III-C)\n\n"
        + render_table(["solver", "schedulable", "sum(d)", "nodes"], rows)
        + "\n\ndeployed d_mon: "
        + ", ".join(
            f"{k}={format_duration(v)}" for k, v in result.deployed_d_mon.items()
        )
        + f"\nverification: mk_satisfied={result.verification_mk_satisfied} "
        + f"worst_window={result.verification_max_window_misses} "
        + f"misses={result.verification_miss_count}"
    )
    save_figure(results_dir, "budgeting_study", text)

    assert result.independent.schedulable
    assert result.greedy.schedulable
    assert result.exact.schedulable
    # Independent minima ignore propagation coupling -> lower bound.
    assert result.independent.total <= result.exact.total
    # Exact never loses to the heuristic.
    assert result.exact.total <= result.greedy.total
    # Deploy-and-verify: the weakly-hard constraint holds on a fresh run.
    assert result.verification_mk_satisfied
