"""Microbenchmarks of the simulation substrate itself.

Not a paper figure -- these guard the performance of the machinery all
experiments stand on: kernel event throughput, scheduler context
switches, full DDS pub/sub round trips.  Regressions here multiply into
every experiment's wall time.
"""

from repro.dds import DdsDomain, Topic
from repro.ros import Node
from repro.sim import (
    Compute,
    Ecu,
    MulticoreScheduler,
    Semaphore,
    Simulator,
    Sleep,
    WaitSem,
    msec,
    usec,
)


def test_kernel_event_throughput(benchmark):
    """Schedule-and-fire cost of one kernel event."""

    def run_batch():
        sim = Simulator()
        for i in range(1000):
            sim.schedule_at(i, lambda: None)
        sim.run()

    benchmark(run_batch)


def test_scheduler_context_switch_cost(benchmark):
    """Two threads ping-ponging via semaphores: 2000 switches."""

    def run_pingpong():
        sim = Simulator()
        sched = MulticoreScheduler(sim, n_cores=1)
        a_sem = Semaphore(sim, initial=1)
        b_sem = Semaphore(sim)

        def ping(_):
            for _i in range(500):
                yield WaitSem(a_sem)
                b_sem.post()

        def pong(_):
            for _i in range(500):
                yield WaitSem(b_sem)
                a_sem.post()

        sched.spawn("ping", ping, priority=2)
        sched.spawn("pong", pong, priority=1)
        sim.run()

    benchmark(run_pingpong)


def test_preemption_heavy_workload(benchmark):
    """A low-priority hog preempted by a periodic high-priority task."""

    def run_preempt():
        sim = Simulator()
        sched = MulticoreScheduler(sim, n_cores=1)

        def hog(_):
            for _i in range(20):
                yield Compute(msec(5))

        def periodic(_):
            for _i in range(100):
                yield Sleep(msec(1))
                yield Compute(usec(100))

        sched.spawn("hog", hog, priority=1)
        sched.spawn("periodic", periodic, priority=10)
        sim.run()

    benchmark(run_preempt)


def test_dds_pubsub_roundtrip(benchmark):
    """100 local publish->deliver->executor->callback round trips."""

    def run_roundtrip():
        sim = Simulator()
        ecu = Ecu(sim, "e", n_cores=2)
        domain = DdsDomain(sim, local_latency=usec(10))
        talker = Node(domain, ecu, "talker", priority=10)
        listener = Node(domain, ecu, "listener", priority=9)
        topic = Topic("t")
        count = []
        listener.create_subscription(topic, lambda s: count.append(1))
        pub = talker.create_publisher(topic)
        for i in range(100):
            sim.schedule_at(i * usec(50), pub.publish, i)
        sim.run()
        assert len(count) == 100

    benchmark(run_roundtrip)
