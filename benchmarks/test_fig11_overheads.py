"""Regenerates paper Fig. 11: measured local-monitoring overheads.

Measures the **real** shared-memory/semaphore monitor of
:mod:`repro.ipc` with host clocks -- the same methodology as the paper
(which reported tens of microseconds on average, < 100 us worst case on
its i5 testbed; a Python implementation is slower in absolute terms but
must show the same ordering: posting costs far below monitor latency,
all far below any millisecond-scale segment deadline).

Also exercises pytest-benchmark properly on the two hot instrumentation
paths (start-event post, end-event post).
"""

import numpy as np
from conftest import save_csv, save_figure

from repro.analysis import stats_table
from repro.experiments.fig11_overheads import run_fig11
from repro.ipc import IpcMonitor, IpcSegment, SpscRingBuffer


def test_fig11_overheads(benchmark, results_dir):
    result = benchmark.pedantic(run_fig11, rounds=1, iterations=1)

    text = (
        f"Fig. 11 -- local monitoring overheads "
        f"(real host measurement, {result.n_events} events)\n\n"
        + stats_table(result.stats)
    )
    save_figure(results_dir, "fig11_overheads", text)
    save_csv(results_dir, "fig11_overheads", result.stats)

    # Posting overheads are far below a 100 ms segment deadline.
    assert np.median(result.start_overheads) < 1_000_000  # < 1 ms
    assert np.median(result.end_overheads) < 1_000_000
    # End-event posting is cheaper than start-event posting (no
    # semaphore notification -- the context-switch saving the paper
    # describes).
    assert np.median(result.end_overheads) <= np.median(result.start_overheads)
    # The monitor processed events and its latency dominates posting.
    assert result.monitor_latencies
    assert np.median(result.monitor_latencies) > np.median(result.start_overheads)


def _segment(capacity=8192, deadline_ns=100_000_000):
    start = SpscRingBuffer(
        bytearray(SpscRingBuffer.required_size(capacity)), capacity, initialize=True
    )
    end = SpscRingBuffer(
        bytearray(SpscRingBuffer.required_size(capacity)), capacity, initialize=True
    )
    return IpcSegment("bench", deadline_ns, start, end)


def test_fig11_start_event_post_micro(benchmark):
    """Microbenchmark: the paper's 'start-event overhead' path."""
    segment = _segment()
    monitor = IpcMonitor([segment])
    monitor.start()
    counter = iter(range(100_000_000))

    def post():
        segment.post_start(next(counter), monitor.semaphore)

    try:
        benchmark(post)
    finally:
        monitor.stop()


def test_fig11_end_event_post_micro(benchmark):
    """Microbenchmark: the paper's 'end-event overhead' path."""
    segment = _segment(capacity=1 << 16)
    counter = iter(range(100_000_000))
    drained = [0]

    def post():
        segment.post_end(next(counter))
        # Keep the buffer from filling up without timing the drain.
        if next(counter) % 1000 == 0:
            segment.end_buffer.drain()

    benchmark(post)
