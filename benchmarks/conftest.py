"""Shared benchmark helpers: result persistence under results/."""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benchmarks archive their regenerated figures."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_figure(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered figure and echo it to stdout."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===")
    print(text)


def save_csv(results_dir: Path, name: str, named_stats) -> None:
    """Persist Tukey statistics as machine-readable CSV."""
    from repro.analysis import stats_csv

    (results_dir / f"{name}.csv").write_text(stats_csv(named_stats))
