"""Regenerates paper Fig. 2: communication events and per-segment latencies.

Shape targets:

- every chain segment produces a latency series (no unmonitored gaps);
- the per-segment latencies along a chain sum *exactly* to the
  end-to-end latency measured independently at the sink -- the gap-free
  composition property the paper's segmentation is designed for.
"""

from conftest import save_figure

from repro.analysis import stats_table
from repro.experiments.fig02_event_sequence import run_fig02
from repro.perception.stack import SEGMENT_NAMES


def test_fig02_event_sequence(benchmark, results_dir):
    result = benchmark.pedantic(run_fig02, rounds=1, iterations=1)

    text = (
        f"Fig. 2 -- per-segment latency decomposition "
        f"({result.n_frames} activations)\n\n"
        + stats_table(result.segment_stats)
    )
    save_figure(results_dir, "fig02_event_sequence", text)

    for name in SEGMENT_NAMES:
        assert name in result.segment_stats, f"no latencies for {name}"
        assert result.segment_stats[name].n >= result.n_frames - 2

    # Gap-free composition: segment latencies sum to the end-to-end
    # latency (both measured on the global trace clock -> exact).
    assert len(result.e2e_front_objects) >= result.n_frames - 2
    for e2e, composed in zip(
        result.e2e_front_objects, result.composed_front_objects
    ):
        assert e2e == composed
