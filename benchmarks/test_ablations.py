"""Ablation benches for the design choices DESIGN.md calls out.

1. Monitor-thread priority: the paper runs the monitor at the highest
   priority and ksoftirq just below; demoting the monitor below the
   application threads inflates the exception-detection overshoot.
2. Propagation factors in budgeting: propagated misses couple the
   per-segment constraints, so the minimal deadline sum grows
   monotonically as more segments propagate.
3. One monitor thread per ECU (paper) vs per segment: the fixed
   buffer-processing order causes the Fig. 10 ground-after-objects skew;
   dedicated threads remove it.
"""

import numpy as np
from conftest import save_figure

from repro.analysis import format_duration, render_table, summarize
from repro.budgeting import BudgetingProblem, solve_branch_and_bound
from repro.budgeting.traces import ChainTrace, SegmentTrace
from repro.experiments.common import interference_governor
from repro.perception import PerceptionStack, StackConfig
from repro.sim import msec, usec

N_FRAMES = 120


def _overshoots(monitor_priority: int, per_segment: bool = False, seed: int = 13,
                ecu2_cores: int = 4):
    stack = PerceptionStack(StackConfig(
        seed=seed,
        monitor_priority=monitor_priority,
        monitor_thread_per_segment=per_segment,
        ecu2_cores=ecu2_cores,
        ecu2_governor=interference_governor(),
    ))
    stack.run(n_frames=N_FRAMES, settle=msec(1500))
    out = {}
    for name in ("s3_objects", "s3_ground"):
        out[name] = [
            e.detection_latency for e in stack.exception_records(name)
        ]
    return out


def test_ablation_monitor_priority(benchmark, results_dir):
    """Exception-detection overshoot vs monitor-thread priority."""

    def run():
        # Two cores on ECU2 so a demoted monitor actually contends with
        # the classifier/detector/rviz executors for a CPU.
        return {
            "highest (99, paper)": _overshoots(99, ecu2_cores=2),
            "below services (40)": _overshoots(40, ecu2_cores=2),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    medians = {}
    for label, per_segment in results.items():
        overshoots = [o for series in per_segment.values() for o in series]
        assert overshoots, f"no exceptions at {label}"
        stats = summarize(overshoots)
        medians[label] = stats.median
        rows.append([
            label,
            str(stats.n),
            format_duration(stats.median),
            format_duration(stats.maximum),
        ])
    text = "Ablation: monitor-thread priority vs detection overshoot\n\n" + render_table(
        ["monitor priority", "exceptions", "median overshoot", "max overshoot"], rows
    )
    save_figure(results_dir, "ablation_monitor_priority", text)
    # Demoting the monitor below the application threads makes detection
    # contend with the (slow) services: overshoot grows by orders of
    # magnitude.
    assert medians["below services (40)"] > 5 * medians["highest (99, paper)"]
    assert medians["highest (99, paper)"] < usec(500)


def test_ablation_propagation_factors(benchmark, results_dir):
    """Minimal deadline sum grows as more segments propagate misses.

    Uses a hand-built trace where the four segments' outliers land on
    *different* activations, so propagation coupling actually binds.
    """
    from repro.core import EventChain, MKConstraint
    from repro.core.segments import local_segment, remote_segment

    def make_chain(n_segments, budget_e2e, budget_seg, m, k):
        segments = []
        for i in range(n_segments):
            if i % 2 == 0:
                seg = remote_segment(f"s{i}", f"t{i}", "ecuA", "ecuB")
            else:
                seg = local_segment(f"s{i}", "ecuB", f"t{i-1}", f"t{i}")
            segments.append(seg)
        for earlier, later in zip(segments, segments[1:]):
            later.start = earlier.end
        return EventChain(
            name="ablation", segments=segments, period=1000,
            budget_e2e=budget_e2e, budget_seg=budget_seg,
            mk=MKConstraint(m, k),
        )

    rng = np.random.default_rng(4)
    n = 60
    base = [2, 3, 4, 50]
    lats = []
    for i, b in enumerate(base):
        series = rng.integers(b, b + 3, size=n)
        for j in range(i * 2, n, 8):
            series[j] = b * 10
        lats.append([int(v) for v in series])

    chain = make_chain(4, budget_e2e=4000, budget_seg=1000, m=1, k=6)
    trace = ChainTrace("ablation")
    for seg, series in zip(chain.segments, lats):
        trace.add(SegmentTrace(seg.name, series))

    def solve_all():
        sums = {}
        for n_propagating in range(5):
            propagation = [1] * n_propagating + [0] * (4 - n_propagating)
            problem = BudgetingProblem(chain, trace, propagation=propagation)
            result = solve_branch_and_bound(problem)
            assert result.schedulable
            sums[n_propagating] = result.total
        return sums

    sums = benchmark.pedantic(solve_all, rounds=1, iterations=1)
    rows = [[str(k), str(v)] for k, v in sums.items()]
    text = "Ablation: propagation factors vs minimal deadline sum\n\n" + render_table(
        ["# propagating segments", "min sum(d)"], rows
    )
    save_figure(results_dir, "ablation_propagation", text)
    values = [sums[k] for k in sorted(sums)]
    # Monotone non-decreasing in the number of propagating segments.
    assert all(a <= b for a, b in zip(values, values[1:]))
    # And the coupling actually binds somewhere.
    assert values[-1] > values[0]


def test_ablation_monitor_thread_sharing(benchmark, results_dir):
    """Fixed-order skew (Fig. 10) disappears with per-segment threads."""

    def run():
        return {
            "shared thread (paper)": _overshoots(99, per_segment=False),
            "per-segment threads": _overshoots(99, per_segment=True),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    gaps = {}
    for label, per_segment in results.items():
        objects = per_segment["s3_objects"]
        ground = per_segment["s3_ground"]
        if not ground:
            continue
        gap = float(np.median(ground)) - float(np.median(objects))
        gaps[label] = gap
        rows.append([
            label,
            format_duration(float(np.median(objects))),
            format_duration(float(np.median(ground))),
            format_duration(gap),
        ])
    text = (
        "Ablation: shared vs per-segment monitor threads "
        "(median exception overshoot)\n\n"
        + render_table(
            ["configuration", "objects", "ground", "ground - objects"], rows
        )
    )
    save_figure(results_dir, "ablation_thread_sharing", text)
    assert "shared thread (paper)" in gaps
    # Shared thread: ground waits for objects' handling -> positive gap.
    assert gaps["shared thread (paper)"] > 0
    if "per-segment threads" in gaps:
        # Dedicated threads: the gap (mostly) disappears.
        assert gaps["per-segment threads"] < gaps["shared thread (paper)"]
