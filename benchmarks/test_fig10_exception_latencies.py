"""Regenerates paper Fig. 10: latencies of the temporal-exception cases.

Shape targets:

- every exception-case latency lies within [d_mon, d_mon + ~1 ms]: the
  paper reads "detection and triggering of temporal exceptions can take
  up to a few hundred microseconds in the worst case";
- the ground-points segment's overshoot sits above the objects
  segment's, because one monitor thread processes the buffers in fixed
  order (objects first).
"""

import numpy as np
from conftest import save_csv, save_figure

from repro.analysis import stats_table
from repro.experiments.fig10_exception_latencies import run_fig10
from repro.sim import msec, usec


def test_fig10_exception_latencies(benchmark, results_dir):
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)

    counts = {
        name: len(latencies)
        for name, latencies in result.exception_latencies.items()
    }
    text = (
        f"Fig. 10 -- exception-case latencies "
        f"({result.n_frames} activations, deadline "
        f"{result.deadline // 1_000_000} ms)\n\n"
        + stats_table(result.stats)
        + f"\n\nexception case counts: {counts}"
        + "\n(paper: 934 objects / 1699 ground-points cases at 4700 frames)"
    )
    save_figure(results_dir, "fig10_exception_latencies", text)
    save_csv(results_dir, "fig10_exception_latencies", result.stats)

    assert counts["s3_objects"] > 0, "no exception cases recorded"
    for name, latencies in result.exception_latencies.items():
        for latency in latencies:
            assert result.deadline <= latency <= result.deadline + msec(1), name
    for name, overshoots in result.overshoots.items():
        assert all(0 <= o <= msec(1) for o in overshoots), name

    # Fixed-order skew: on activations where BOTH segments except, the
    # ground handler runs strictly after the objects handler.
    if result.overshoots["s3_ground"]:
        objects_median = np.median(result.overshoots["s3_objects"])
        ground_median = np.median(result.overshoots["s3_ground"])
        assert ground_median > objects_median
