"""Regenerates paper Fig. 3: a chain execution in an error case.

The exact scripted sequence of the paper's walkthrough must emerge from
the injected faults:

1. s0 (front lidar remote segment) finishes within its budget;
2. s1 (fusion local segment) exceeds its deadline -- rear lidar late --
   and the handler RECOVERS by publishing the front-only cloud;
3. s2 (fused-cloud remote segment) also fails (transmission lost) and
   PROPAGATES;
4. s3 goes directly into error handling (SKIPPED bookkeeping) instead of
   waiting out its own deadline.
"""

from conftest import save_figure

from repro.analysis import format_duration
from repro.core import Outcome
from repro.experiments.fig03_error_case import run_fig03


def test_fig03_error_case(benchmark, results_dir):
    result = benchmark.pedantic(run_fig03, rounds=1, iterations=1)

    lines = [f"Fig. 3 -- error-case walkthrough (fault frame {result.fault_frame})", ""]
    lines.append("faulty activation:")
    for name in ("s0_front", "s1_front", "s2", "s3_objects"):
        record = result.faulty[name]
        latency = format_duration(record.latency) if record.latency else "-"
        lines.append(f"  {name:12s} {record.outcome.value:10s} latency={latency}")
    lines.append("clean activation:")
    for name in ("s0_front", "s1_front", "s2", "s3_objects"):
        record = result.clean[name]
        lines.append(f"  {name:12s} {record.outcome.value}")
    save_figure(results_dir, "fig03_error_case", "\n".join(lines))

    faulty = result.faulty
    # 1. first remote segment finishes in budget.
    assert faulty["s0_front"].outcome is Outcome.OK
    # 2. fusion segment exceeds d_mon but recovers (front-only cloud).
    assert faulty["s1_front"].outcome is Outcome.RECOVERED
    # 3. the following remote segment fails and propagates (miss).
    assert faulty["s2"].outcome is Outcome.MISS
    # 4. s3 is informed via the error propagation event immediately.
    assert faulty["s3_objects"].outcome is Outcome.SKIPPED
    assert result.s3_informed_immediately
    # Contrast: the clean activation is OK everywhere.
    for name, record in result.clean.items():
        assert record.outcome is Outcome.OK, name
