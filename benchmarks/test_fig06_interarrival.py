"""Regenerates paper Fig. 6: inter-arrival monitoring vs the
synchronization-based approach.

Shape targets (the paper's Sec. IV-B1 argument, quantified):

- accumulating lateness: inter-arrival detects (almost) nothing while
  absolute latency grows unboundedly; sync-based detects everything;
- consecutive misses: inter-arrival sees only the first miss of a burst
  (timer armed on arrivals only -> unsuitable for m > 0); sync-based
  detects each miss;
- benign jitter: inter-arrival false-positives with any setting tight
  enough to be useful; sync-based raises none.
"""

from conftest import save_figure

from repro.analysis import render_table
from repro.experiments.fig06_interarrival import run_fig06


def test_fig06_interarrival_vs_sync(benchmark, results_dir):
    result = benchmark.pedantic(run_fig06, rounds=1, iterations=1)

    rows = []
    for scenario, monitors in result.scores.items():
        for label, score in monitors.items():
            rows.append([
                scenario,
                label,
                str(score.true_violations),
                str(score.true_positives),
                str(score.false_positives),
                str(score.missed),
                f"{score.detection_rate:.2f}",
            ])
    text = "Fig. 6 -- inter-arrival vs synchronization-based monitoring\n\n" + render_table(
        ["scenario", "monitor", "violations", "TP", "FP", "missed", "rate"],
        rows,
    )
    save_figure(results_dir, "fig06_interarrival", text)

    scores = result.scores
    acc = scores["accumulating lateness"]
    # Inter-arrival is blind to accumulating lateness...
    assert acc["inter-arrival"].detection_rate < 0.1
    # ...which sync-based fully detects.
    assert acc["sync-based"].detection_rate > 0.95

    burst = scores["consecutive misses"]
    # Inter-arrival collapses each burst to (at most) its first miss.
    assert burst["inter-arrival"].detection_rate < 0.5
    assert burst["sync-based"].detection_rate > 0.95

    jitter = scores["benign jitter"]
    # The tightest useful t_max_ia false-positives on benign jitter.
    assert jitter["inter-arrival"].false_positives > 0
    assert jitter["sync-based"].false_positives == 0
