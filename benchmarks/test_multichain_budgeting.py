"""Joint budgeting across chains sharing segments (extension bench).

The use case's front_objects and front_ground chains share s0_front,
s1_front and s2 (paper Fig. 2).  Independent per-chain budgeting can
assign the shared segments different deadlines; the deployment needs
one.  This bench runs the measurement pass once, solves each chain
separately, reconciles the solutions (per-segment maximum, re-verified)
and cross-checks against the exact joint solver -- asserting the final
assignment satisfies *both* chains' Eqs. (3)-(5).
"""

from conftest import save_figure

from repro.analysis import format_duration, render_table
from repro.budgeting import (
    BudgetingProblem,
    reconcile_independent,
    solve_independent,
    solve_joint,
)
from repro.experiments.common import interference_governor
from repro.perception import PerceptionStack, StackConfig
from repro.sim import msec
from repro.tracing.analysis import chain_trace_from_tracer

N_FRAMES = 250


def run_multichain():
    measure = PerceptionStack(StackConfig(
        seed=41,
        monitoring=False,
        ecu2_governor=interference_governor(
            slow_min=0.45, slow_max=0.7, mean_interval_ms=600, mean_dwell_ms=30
        ),
    ))
    measure.run(n_frames=N_FRAMES, settle=msec(1500))
    problems = []
    for chain_name in ("front_objects", "front_ground"):
        chain = measure.chains[chain_name]
        trace = chain_trace_from_tracer(measure.tracer, chain, d_ex=msec(1))
        problems.append(BudgetingProblem(chain, trace, propagation=[0] * 4))
    solutions = [solve_independent(p) for p in problems]
    merged = reconcile_independent(problems, solutions)
    joint = solve_joint(problems)
    return problems, solutions, merged, joint


def test_multichain_budgeting(benchmark, results_dir):
    problems, solutions, merged, joint = benchmark.pedantic(
        run_multichain, rounds=1, iterations=1
    )

    rows = []
    for problem, solution in zip(problems, solutions):
        for name, deadline in zip(problem.order, solution.deadlines):
            rows.append([problem.chain.name, name, format_duration(deadline)])
    text = (
        "Multi-chain budgeting (front_objects + front_ground, shared "
        "s0_front/s1_front/s2)\n\n"
        + render_table(["chain", "segment", "independent d"], rows)
        + "\n\nreconciled: "
        + (
            ", ".join(
                f"{k}={format_duration(v)}" for k, v in sorted(merged.deadlines.items())
            )
            if merged.schedulable
            else f"CONFLICT -> joint solver: {joint.schedulable}"
        )
        + f"\njoint solver total: "
        + (format_duration(joint.total) if joint.schedulable else "unschedulable")
    )
    save_figure(results_dir, "multichain_budgeting", text)

    assert all(s.schedulable for s in solutions)
    assert joint.schedulable
    # The winning assignment satisfies both chains.
    final = merged.deadlines if merged.schedulable else joint.deadlines
    for problem in problems:
        assignment = [final[name] for name in problem.order]
        assert problem.check(assignment).feasible
    # Shared segments have exactly one deadline.
    shared = {"s0_front", "s1_front", "s2"}
    assert shared <= set(final)
    # Joint never exceeds the reconciled total (when both succeed).
    if merged.schedulable:
        assert joint.total <= merged.total
