"""Ablation: required remote deadline vs. network load.

The paper's remote deadline formula ``d_mon = BCRT + J_R + J_a + eps``
absorbs the network response-time jitter J_R.  With the
store-and-forward switch, J_R is *emergent* from queueing behind cross
traffic -- so the synthesized d_mon must grow with port utilization.
This quantifies how much end-to-end budget the network's load level
consumes, a deployment-time design input the paper leaves implicit.
"""

from conftest import save_figure

from repro.analysis import format_duration, render_table
from repro.network import BackgroundTraffic, EthernetSwitch, Frame
from repro.sim import Simulator, msec, usec

N_FRAMES = 300
PERIOD = msec(10)
FRAME_BYTES = 5000  # a modest point-cloud fragment
EPS = usec(12)      # PTP error bound assumed constant


def measure_required_dmon(utilization: float, seed: int = 5):
    sim = Simulator(seed=seed)
    switch = EthernetSwitch(sim, port_rate_bps=100e6, propagation_delay=usec(5))
    switch.attach("ecu2")
    if utilization > 0:
        bg = BackgroundTraffic(switch, "ecu2", utilization=utilization)
        bg.start()
    responses = []
    for i in range(N_FRAMES):
        send_at = msec(1) + i * PERIOD
        frame = Frame(payload=None, size_bytes=FRAME_BYTES, src="ecu1", dst="ecu2")
        sim.schedule_at(
            send_at,
            lambda f=frame, t0=send_at: switch.forward(
                f, lambda _f, t0=t0: responses.append(sim.now - t0)
            ),
        )
    sim.run(until=msec(1) + N_FRAMES * PERIOD + msec(5))
    if utilization > 0:
        bg.stop()
    bcrt = min(responses)
    j_r = max(responses) - bcrt
    return bcrt, j_r, bcrt + j_r + EPS, len(responses)


def test_ablation_network_load(benchmark, results_dir):
    utilizations = [0.0, 0.3, 0.6, 0.85]

    def run():
        return {u: measure_required_dmon(u) for u in utilizations}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for u, (bcrt, j_r, d_mon, n) in results.items():
        rows.append([
            f"{u:.0%}",
            str(n),
            format_duration(bcrt),
            format_duration(j_r),
            format_duration(d_mon),
        ])
    text = (
        "Ablation: network load vs required remote deadline "
        "(d_mon = BCRT + J_R + J_a + eps; J_a = 0 here)\n\n"
        + render_table(
            ["port load", "samples", "BCRT", "J_R (emergent)", "required d_mon"],
            rows,
        )
    )
    save_figure(results_dir, "ablation_network_load", text)

    # Every frame delivered (no drops at these loads).
    assert all(n == N_FRAMES for _b, _j, _d, n in results.values())
    # BCRT is load-independent (it is the uncontended path).
    bcrts = [bcrt for bcrt, _j, _d, _n in results.values()]
    assert max(bcrts) - min(bcrts) <= usec(1)
    # Required d_mon grows monotonically with load and is dominated by
    # emergent queueing jitter at high utilization.
    d_mons = [results[u][2] for u in utilizations]
    assert all(a <= b for a, b in zip(d_mons, d_mons[1:]))
    assert d_mons[-1] > 2 * d_mons[0]
