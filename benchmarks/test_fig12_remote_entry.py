"""Regenerates paper Fig. 12: exception-entry latency of remote monitoring.

Shape targets:

- timeout routines executed in the middleware event thread show entry
  latencies from ~microseconds up to the millisecond range under load
  (the paper: 100 us to ~2 ms at LOW load, expected to worsen) -- so
  "monitoring entirely within the middleware is not sufficient for
  achieving short and bounded reaction times";
- forwarding to the high-priority monitor thread (Sec. V-B) keeps entry
  latencies small and bounded, comparable to local monitoring.
"""

import numpy as np
from conftest import save_csv, save_figure

from repro.analysis import stats_table
from repro.experiments.fig12_remote_entry import run_fig12
from repro.sim import msec, usec


def test_fig12_remote_entry(benchmark, results_dir):
    result = benchmark.pedantic(run_fig12, rounds=1, iterations=1)

    text = (
        "Fig. 12 -- remote-monitoring exception entry latency\n"
        f"timeout samples: {result.n_timeouts}\n\n"
        + stats_table(result.stats)
    )
    save_figure(results_dir, "fig12_remote_entry", text)
    save_csv(results_dir, "fig12_remote_entry", result.stats)

    middleware = np.array(result.entry_latencies["middleware (paper Fig. 12)"])
    monitor = np.array(result.entry_latencies["monitor thread (Sec. V-B)"])
    assert middleware.size >= 30
    assert monitor.size >= 30
    # Middleware context reaches the millisecond range under load.
    assert middleware.max() > msec(1)
    # The monitor-thread path stays bounded far below it.
    assert monitor.max() < usec(200)
    assert monitor.max() < middleware.max() / 5
