"""Regenerates paper Fig. 9: segment latencies with/without monitoring.

Shape targets (the substrate is a simulator, so absolute numbers are
not comparable, but who-wins and by-what-factor must hold):

- unmonitored latencies show a heavy tail far beyond the 100 ms deadline
  (the paper saw up to ~600 ms);
- monitored latencies never exceed the deadline by more than the
  (sub-millisecond) exception-handling overshoot, guaranteeing a
  reaction within ~100 ms of the segment's start event.
"""

from conftest import save_csv, save_figure

from repro.analysis import ascii_boxplot, stats_table
from repro.experiments.fig09_segment_latencies import run_fig09
from repro.sim import msec


def test_fig09_segment_latencies(benchmark, results_dir):
    result = benchmark.pedantic(run_fig09, rounds=1, iterations=1)

    text = (
        f"Fig. 9 -- segment latencies on ECU2 "
        f"({result.n_frames} activations, deadline "
        f"{result.deadline // 1_000_000} ms)\n\n"
        + stats_table(result.stats)
        + "\n\n"
        + ascii_boxplot(result.stats, width=64)
        + f"\n\nexception counts: {result.exception_counts}"
    )
    save_figure(results_dir, "fig09_segment_latencies", text)
    save_csv(results_dir, "fig09_segment_latencies", result.stats)

    deadline = result.deadline
    overshoot_cap = msec(1)
    for name in ("s3_objects", "s3_ground"):
        unmonitored = result.unmonitored[name]
        monitored = result.monitored[name]
        assert len(unmonitored) >= result.n_frames - 2
        assert len(monitored) >= result.n_frames - 2
        # The unmonitored tail blows through the deadline...
        assert max(unmonitored) > deadline * 1.3, name
        # ...while monitoring caps every reaction at d_mon + overshoot.
        assert max(monitored) <= deadline + overshoot_cap, name
    # Monitoring had something to do: exceptions actually occurred.
    assert sum(result.exception_counts.values()) > 0
    # The monitored median must not exceed the unmonitored one (the
    # monitor only truncates the distribution, never inflates it).
    for name in ("s3_objects", "s3_ground"):
        med_mon = sorted(result.monitored[name])[len(result.monitored[name]) // 2]
        med_unm = sorted(result.unmonitored[name])[len(result.unmonitored[name]) // 2]
        assert med_mon <= med_unm + msec(2), name
