#!/usr/bin/env python3
"""The paper's Autoware.Auto use case, monitored end to end.

Deploys the dual-lidar perception stack of the paper's Fig. 1 on two
simulated ECUs (fusion on ECU1; classifier, object detection and an
rviz-like sink on ECU2), with all seven segments monitored and the four
event chains supervised against a weakly-hard (3,10) constraint.

Midway through, the paper's Fig. 3 error scenario is injected: the rear
lidar stalls for one frame (the fusion monitor recovers with a
front-only cloud) and the fused cloud of another frame is lost on the
inter-ECU link (the remote monitor propagates; the final segments react
immediately instead of waiting out their own deadlines).

Run:  python examples/perception_pipeline.py
"""

import numpy as np

from repro.analysis import ascii_boxplot, stats_table, summarize
from repro.perception import PerceptionStack, StackConfig
from repro.perception.stack import SEGMENT_NAMES
from repro.sim import BurstyGovernor, msec

REAR_STALL_FRAME = 30
LOST_FUSED_FRAME = 45
N_FRAMES = 80


def main() -> None:
    stack = PerceptionStack(StackConfig(
        seed=7,
        # Mild platform interference (frequency excursions on ECU2).
        ecu2_governor=lambda: BurstyGovernor(
            nominal=1.0, slow_min=0.3, slow_max=0.6,
            mean_interval=msec(500), mean_dwell=msec(40),
        ),
        # Fig. 3 part 1: the rear lidar stalls for one frame.
        fault_rear=lambda f: msec(70) if f == REAR_STALL_FRAME else 0,
    ))
    # Fig. 3 part 2: one fused cloud is lost on the ECU1 -> ECU2 link.
    stack.link_12.loss_filter = lambda frame: (
        getattr(frame.payload.data, "frame_index", -1) == LOST_FUSED_FRAME
    )

    print(f"running {N_FRAMES} frames of the perception stack ...")
    stack.run(n_frames=N_FRAMES)

    print("\nper-segment monitored latencies:")
    stats = {
        name: summarize(stack.monitored_latencies(name))
        for name in SEGMENT_NAMES
        if stack.monitored_latencies(name)
    }
    print(stats_table(stats))
    print()
    print(ascii_boxplot(
        {k: v for k, v in stats.items() if k.startswith("s3")}, width=60
    ))

    print("\nchain verdicts:")
    for name, runtime in stack.chain_runtimes.items():
        report = runtime.finalize(through_activation=N_FRAMES - 1)
        print(f"  {name:14s} ok={report.ok_count:3d} recovered="
              f"{report.recovered_count} miss={report.miss_count} "
              f"skipped={report.skipped_count} "
              f"{stack.config.mk} satisfied: {report.mk_satisfied}")

    print(f"\ninjected fault at frame {REAR_STALL_FRAME} (rear lidar +70ms):")
    report = stack.chain_runtimes["front_objects"].finalize(
        through_activation=N_FRAMES - 1
    )
    for seg, record in report.activations[REAR_STALL_FRAME].segments.items():
        print(f"  {seg:12s} -> {record.outcome.value}")
    print(f"injected fault at frame {LOST_FUSED_FRAME} (fused cloud lost):")
    for seg, record in report.activations[LOST_FUSED_FRAME].segments.items():
        print(f"  {seg:12s} -> {record.outcome.value}")

    sink_objects = stack.sink.frames_seen("objects")
    print(f"\nsink received {len(sink_objects)}/{N_FRAMES} object frames; "
          f"missing: {sorted(set(range(N_FRAMES)) - set(sink_objects))}")


if __name__ == "__main__":
    main()
