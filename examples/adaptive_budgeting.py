#!/usr/bin/env python3
"""Closed-loop adaptive budgeting walkthrough: drift, shadow, rollback.

Four stages, all through the public `repro.adaptive` API
(DESIGN.md §11):

1. **Re-derive** -- turn a fleet observation window back into the
   paper's budgeting CSP (Eqs. 2-7) and mint a feasible epoch whose
   slack headroom follows the critical-path attribution.
2. **Shadow rejection** -- replay the window under an over-tight
   candidate and watch the validator refuse it for an (m,k)
   regression; the ledger then refuses to publish it, crash or no
   crash.
3. **Canary rollback** -- stage an accepted epoch on a one-vehicle
   canary cohort, regress it during probation, and watch the plane
   publish last-good budgets under a fresh id (content digest equal).
4. **Exactly-once apply** -- deliver an epoch to a DEGRADED vehicle
   (ack `deferred`), crash it, recover, return to NORMAL, and show the
   epoch applied exactly once.

Run:  python examples/adaptive_budgeting.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro.adaptive import (  # noqa: E402
    BudgetControlPlane,
    BudgetEpoch,
    BudgetResolver,
    ControlPlaneConfig,
    ControlPlaneState,
    EpochLedgerError,
    ShadowValidator,
    VehicleEpochAgent,
)
from repro.adaptive.chaos import fleet_chain  # noqa: E402
from repro.faults.degradation import DegradationMode  # noqa: E402
from repro.telemetry.records import segment_record  # noqa: E402
from repro.telemetry.uplink.transport import (  # noqa: E402
    EPOCH_ACK_SCHEMA,
    decode_envelope,
    encode_epoch_frame,
)

_MS = 1_000_000
VEHICLES = ["veh00", "veh01", "veh02"]


def fmt(budgets):
    return ", ".join(
        f"{seg}={ns / _MS:.2f}ms" for seg, ns in sorted(budgets.items())
    )


def make_window(chain, medians, activations=24):
    """A steady per-vehicle stream of SEGMENT records."""
    records = []
    seq = 0
    for vehicle in VEHICLES:
        for activation in range(activations):
            for segment, latency in medians.items():
                records.append(segment_record(
                    vehicle, chain.name, segment, activation, latency,
                    "ok", (activation + 1) * chain.period, seq,
                ))
                seq += 1
    return records


def main() -> None:
    chain = fleet_chain()
    factory = {seg.name: int(seg.d_mon) for seg in chain.segments}
    window = make_window(
        chain, {"seg0": 4 * _MS, "seg1": 6 * _MS, "seg2": 8 * _MS}
    )

    # ------------------------------------------------------------------
    # 1. Re-derive d_mon from the window (Eqs. 2-7 + slack headroom).
    # ------------------------------------------------------------------
    resolver = BudgetResolver({chain.name: chain})
    outcome = resolver.resolve(
        window, attribution={"seg0": 0.2, "seg1": 0.3, "seg2": 0.5}
    )
    assert outcome.ok
    derived = outcome.epoch(epoch_id=1, parent_id=0)
    budgets = derived.budgets[chain.name]
    total = sum(budgets.values())
    print("--- 1. re-derive ---")
    print(f"factory: {fmt(factory)}")
    print(f"derived: {fmt(budgets)}")
    print(f"telescoped sum {total / _MS:.2f}ms <= "
          f"B_e2e {chain.budget_e2e / _MS:.0f}ms")
    assert total <= chain.budget_e2e
    assert all(b <= chain.budget_seg for b in budgets.values())

    # ------------------------------------------------------------------
    # 2. Shadow validation rejects an over-tight candidate, and the
    #    ledger makes publishing it impossible anyway.
    # ------------------------------------------------------------------
    shadow = ShadowValidator({chain.name: chain})
    baseline = BudgetEpoch(epoch_id=0, budgets={chain.name: factory})
    too_tight = BudgetEpoch(epoch_id=2, budgets={
        chain.name: {**factory, "seg0": 1 * _MS},
    })
    verdict = shadow.validate(window, too_tight, baseline)
    print("\n--- 2. shadow rejection ---")
    print(f"accepted={verdict.accepted}")
    for reason in verdict.reasons:
        print(f"  reason: {reason}")
    assert not verdict.accepted
    assert verdict.candidate_violations > verdict.baseline_violations

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)

        sent = []

        def send(payload, vehicle, now):
            doc = decode_envelope(payload)
            sent.append((vehicle, doc["epoch"]["epoch_id"]))
            # Obedient fleet: every frame is acked applied immediately.
            plane.on_ack({
                "schema": EPOCH_ACK_SCHEMA, "vehicle": vehicle,
                "epoch_id": doc["epoch"]["epoch_id"],
                "status": "applied",
            }, now)

        plane = BudgetControlPlane(
            {chain.name: chain}, VEHICLES, root / "plane", send,
            config=ControlPlaneConfig(
                rederive_every=0, canary_count=1, probation_steps=4,
            ),
        )
        violations = {vehicle: 0 for vehicle in VEHICLES}
        now = 0
        while plane.state is not ControlPlaneState.IDLE:
            plane.tick(now, lambda: dict(violations))
            now += 1
        plane.observe_many(window)

        rejected = too_tight
        plane.ledger.record_epoch(rejected)
        plane.ledger.record_rejected(rejected.epoch_id, verdict.reasons[0])
        try:
            plane.distributor.publish(rejected, VEHICLES, "fleet")
            raise AssertionError("published a rejected epoch")
        except EpochLedgerError as error:
            print(f"ledger refused the publish: {error}")

        # --------------------------------------------------------------
        # 3. Canary rollback: the accepted epoch regresses during
        #    probation; last-good comes back under a fresh id.
        # --------------------------------------------------------------
        staged = plane.consider(now)
        assert staged is not None, "candidate should enter canary"
        plane.tick(now, lambda: dict(violations)); now += 1
        plane.tick(now, lambda: dict(violations)); now += 1
        violations[plane.canary_cohort[0]] += 3  # the canary regresses
        while plane.state is not ControlPlaneState.IDLE:
            plane.tick(now, lambda: dict(violations))
            now += 1
        failed_id, rollback_id = plane.ledger.rollbacks[-1]
        rollback = plane.ledger.epochs[rollback_id]
        print("\n--- 3. canary rollback ---")
        print(f"epoch {staged.epoch_id} staged on "
              f"{plane.canary_cohort} -> regressed -> "
              f"rollback epoch {rollback_id}")
        assert failed_id == staged.epoch_id
        assert rollback.digest() == baseline.digest()
        print(f"rollback digest == factory digest "
              f"({rollback.digest()[:12]}...)")
        # No control-cohort vehicle ever saw the failed epoch.
        assert all(
            vehicle in plane.canary_cohort
            for vehicle, eid in sent if eid == staged.epoch_id
        )
        plane.close()

        # --------------------------------------------------------------
        # 4. Deferred, crashed, recovered, applied exactly once.
        # --------------------------------------------------------------
        installs = []
        agent = VehicleEpochAgent(
            "veh00", root / "veh00", install=installs.append
        )
        agent.set_mode(DegradationMode.DEGRADED)
        ack = agent.handle_frame(
            encode_epoch_frame("veh00", derived.to_json())
        )
        status = decode_envelope(ack)["status"]
        print("\n--- 4. exactly-once apply through a crash ---")
        print(f"DEGRADED vehicle acked: {status}")
        assert status == "deferred" and installs == []
        agent.kill()  # crash while the epoch is parked
        agent, report = VehicleEpochAgent.recover(
            "veh00", root / "veh00", install=installs.append
        )
        print(f"recovered: pending_apply={report.pending_apply}")
        ack = agent.set_mode(DegradationMode.NORMAL)
        assert decode_envelope(ack)["status"] == "applied"
        assert [e.epoch_id for e in installs] == [derived.epoch_id]
        assert agent.ledger_json()["balanced"]
        print(f"back to NORMAL: epoch {derived.epoch_id} applied "
              f"exactly once (installs={len(installs)}, ledger balanced)")
        agent.close()


if __name__ == "__main__":
    main()
