#!/usr/bin/env python3
"""Quickstart: monitor a two-segment event chain end to end.

Builds the smallest meaningful deployment -- a periodic producer on one
ECU, a processing service on another, connected over a lossy network --
and attaches the paper's two monitoring mechanisms:

* a synchronization-based remote monitor for the network segment,
* a local monitor (high-priority monitor thread + ring buffers) for the
  processing segment,

then injects a slowdown and watches temporal exceptions fire, recover
and propagate while the weakly-hard (2,10) constraint is supervised.

Run:  python examples/quickstart.py
"""

from dataclasses import dataclass

from repro.core import (
    ChainRuntime,
    EventChain,
    MKConstraint,
    MonitorThread,
    LocalSegmentRuntime,
    Outcome,
    RecoverAlways,
    SyncRemoteMonitor,
    TimeoutContext,
)
from repro.core.segments import local_segment, remote_segment
from repro.dds import DdsDomain, Topic
from repro.network import Link, NetworkStack
from repro.ros import Node
from repro.sim import Compute, Ecu, Simulator, msec, usec


@dataclass
class Frame:
    """Message carrying the chain activation index."""

    frame_index: int


def activation_of(sample):
    return getattr(sample.data, "frame_index", None)


def main() -> None:
    sim = Simulator(seed=1)

    # --- platform: two ECUs and a link ---------------------------------
    sensor_ecu = Ecu(sim, "sensor", n_cores=1)
    compute_ecu = Ecu(sim, "compute", n_cores=2)
    domain = DdsDomain(sim, local_latency=usec(20))
    domain.register_stack(compute_ecu, NetworkStack(compute_ecu))
    domain.add_link(sensor_ecu, compute_ecu,
                    Link(sim, "net", base_latency=usec(300), loss_prob=0.05))

    # --- application ----------------------------------------------------
    sensor = Node(domain, sensor_ecu, "sensor", priority=50)
    worker = Node(domain, compute_ecu, "worker", priority=40)
    raw = Topic("raw", size_fn=lambda f: 2048)
    processed = Topic("processed", size_fn=lambda f: 256)
    pub_raw = sensor.create_publisher(raw)
    pub_out = worker.create_publisher(processed)

    def process(sample):
        # Frames 20-24 hit a slow path (e.g. a complex scene).
        slow = 20 <= sample.data.frame_index < 25
        yield Compute(msec(40) if slow else msec(8))
        pub_out.publish(Frame(sample.data.frame_index))

    sub_raw = worker.create_subscription(raw, process)

    period = msec(50)
    timer = sensor.create_timer(period, lambda i: pub_raw.publish(Frame(i)))

    # --- chain model ------------------------------------------------------
    seg_net = remote_segment("seg_net", "raw", "sensor", "compute",
                             d_mon=msec(5))
    seg_proc = local_segment("seg_proc", "compute", "raw", "processed",
                             d_mon=msec(20))
    chain = EventChain(
        name="demo",
        segments=[seg_net, seg_proc],
        period=period,
        budget_e2e=msec(30),
        mk=MKConstraint(2, 10),
    )
    runtime = ChainRuntime(
        chain,
        on_violation=lambda n, misses: print(
            f"  !! (2,10) VIOLATED at activation {n} ({misses} misses in window)"
        ),
    )

    # --- monitors ---------------------------------------------------------
    monitor_thread = MonitorThread(compute_ecu, priority=99)
    local_runtime = LocalSegmentRuntime(
        seg_proc,
        handler=RecoverAlways(lambda ctx: Frame(ctx.exception.activation)),
        mk=chain.mk,
        activation_fn=activation_of,
    )
    monitor_thread.add_segment(local_runtime)
    local_runtime.attach_start(sub_raw.reader)
    local_runtime.attach_end_writer(pub_out.writer)
    local_runtime.reporters.append(runtime)

    remote_monitor = SyncRemoteMonitor(
        seg_net, sub_raw.reader, period=period,
        mk=chain.mk, context=TimeoutContext.MONITOR_THREAD,
        monitor_thread=monitor_thread, next_local=local_runtime,
        activation_fn=activation_of,
    )
    remote_monitor.reporters.append(runtime)

    # --- run --------------------------------------------------------------
    n_frames = 40
    timer.start()
    sim.run(until=(n_frames - 1) * period + msec(30))
    timer.stop()
    remote_monitor.stop()

    report = runtime.finalize(through_activation=n_frames - 2)
    print(f"chain {report.chain_name}: {report.total} activations")
    print(f"  ok={report.ok_count} recovered={report.recovered_count} "
          f"miss={report.miss_count} skipped={report.skipped_count}")
    print(f"  (2,10) satisfied: {report.mk_satisfied} "
          f"(worst window: {report.max_window_misses} misses)")
    print("per-activation outcomes of the processing segment:")
    line = "".join(
        {"ok": ".", "recovered": "R", "miss": "X", "skipped": "_"}[o.value]
        for o in runtime.segment_outcomes("seg_proc")
    )
    print(f"  {line}")
    print("legend: .=ok R=recovered X=miss _=skipped "
          "(frames 20-24 were slowed to 40ms against a 20ms deadline)")


if __name__ == "__main__":
    main()
