#!/usr/bin/env python3
"""Fleet gateway walkthrough: 50 vehicles overload the gate, recover.

One episode through the public `repro.telemetry.gateway` API
(DESIGN.md §14), in four acts:

1. **Overload** -- 50 vehicles stream windowed-ARQ frames into a
   gateway whose drain budget is deliberately starved, so the backlog
   climbs and the overload ladder walks NORMAL -> DEGRADED -> SAFE.
2. **Shed by class, never silently** -- in DEGRADED the gateway sheds
   dashboard traffic, in SAFE telemetry too; alert-bearing records
   always pass.  Every shed seq is settled in dedup, announced in an
   ack, and counted by class.
3. **Ledger law** -- the omniscient driver balances the four disjoint
   buckets per vehicle: ``offered == acked + spooled + evicted + shed``.
4. **Recover** -- once the backlog drains, calm steps de-escalate the
   ladder one rung per dwell back to NORMAL, and the operator status
   dashboard shows the whole story.

Run:  python examples/fleet_gateway.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro.telemetry.gateway import (  # noqa: E402
    CLASS_ALERT,
    GatewayChaosScenario,
    GatewayMode,
    OverloadPolicy,
    render_status,
    status_report,
)
from repro.telemetry.uplink.chaos import ChaosConfig  # noqa: E402

VEHICLES = 50

SCENARIO = GatewayChaosScenario(
    name="example_overload",
    description="50-vehicle drain-starved episode: escalate, shed by "
                "class, recover",
    drain_per_step=160,         # below the ~400 records/step offered
    recv_window=256,
    overload=OverloadPolicy(
        degraded_above=600, safe_above=1600, recover_below=64, dwell=4,
    ),
    faulty_every=2,             # mix in misses -> alert-class records
    check_digest=False,         # shedding makes the store a strict subset
    expect_shed=True,
)

CONFIG = ChaosConfig(
    vehicles=VEHICLES, frames=10, seed=2025, protocol="windowed",
)


def main() -> None:
    print(f"== act 1: {VEHICLES} vehicles vs a drain-starved gateway ==")
    with tempfile.TemporaryDirectory(prefix="fleet-gateway-") as tmp:
        driver = SCENARIO.make_driver(CONFIG, Path(tmp))
        result = driver.run()
        gateway = driver.gateway

        print(result.render())
        assert result.ok, [c for c in result.checks if not c["ok"]]
        print(f"episode PASS (converged at step {result.converged_at})")

        print()
        print("== act 2: the ladder's logged transitions ==")
        for step, src, dst, backlog in gateway.ladder.transitions:
            print(f"  step {step:>4}: {src:>8} -> {dst:<8} "
                  f"(backlog {backlog})")

        shed_by_class = result.protocol["shed_by_class"]
        shed_total = sum(shed_by_class.values())
        print(f"shed {shed_total} records by class: {shed_by_class}")
        print(f"alerts shed: {shed_by_class.get(CLASS_ALERT, 0)} (never)")
        assert shed_by_class.get(CLASS_ALERT, 0) == 0
        assert shed_total > 0, "the episode was supposed to overload"

        print()
        print("== act 3: ledger law, per vehicle ==")
        balanced = sum(
            1 for entry in result.ledger.values() if entry["balanced"]
        )
        sample = result.ledger[sorted(result.ledger)[0]]
        print(f"  offered == acked + spooled + evicted + shed "
              f"(e.g. {sample})")
        print(f"ledger balanced for all {balanced} vehicles")
        assert balanced == VEHICLES

        print()
        print("== act 4: calm steps walk the ladder back to NORMAL ==")
        seen = len(gateway.ladder.transitions)
        now = (result.converged_at or 0) + 1
        while gateway.ladder.mode is not GatewayMode.NORMAL:
            gateway.step(now)
            now += 1
        gateway.poll_outbox()  # drain any final window-update acks
        for step, src, dst, backlog in gateway.ladder.transitions[seen:]:
            print(f"  step {step:>4}: {src:>8} -> {dst:<8} "
                  f"(backlog {backlog})")
        print(f"ladder returned to NORMAL at step {now - 1}")

        report = status_report(driver.ingestor.service, gateway=gateway)
        dashboard = render_status(report)
        # 50 vehicle tiles is a lot of terminal; show the headline and
        # the gateway line, then the first few tiles.
        lines = dashboard.splitlines()
        print()
        print("\n".join(lines[:8]))
        print(f"  ... ({VEHICLES} vehicle tiles total)")
    print()
    print("fleet gateway walkthrough complete")


if __name__ == "__main__":
    main()
