#!/usr/bin/env python3
"""Fault-injection campaign: break the stack, verify nothing is silent.

Runs a subset of the default scenario matrix against the dual-lidar
perception stack and checks the two verification oracles on each one:

* **soundness** -- every monitor-reported miss corresponds to a real
  overrun in ground-truth (global simulation) time, modulo the clock
  error the fault itself injected;
* **no-silent-violation** -- every ground-truth end-to-end budget
  overrun (and every activation served without real sensor data) left a
  MISS/SKIPPED/RECOVERED record somewhere.

Also demonstrates the graceful-degradation ladder reacting to a custom
scenario, and the oracle-discrimination lesion: silencing the monitors'
violation reports makes the completeness oracle fail, proving it
actually discriminates.

Run:  python examples/fault_campaign.py
"""

from repro.faults import (
    CampaignConfig,
    FaultCampaign,
    FaultScenario,
    LossBurst,
    SilentSensor,
    default_scenarios,
)
from repro.sim import msec

N_FRAMES = 40


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A slice of the default matrix, full verification.
    # ------------------------------------------------------------------
    wanted = {"loss_burst", "clock_step", "silent_sensor_boot"}
    scenarios = [s for s in default_scenarios() if s.name in wanted]
    campaign = FaultCampaign(scenarios, CampaignConfig(n_frames=N_FRAMES))
    result = campaign.run()
    print(result.render_report())
    print()

    # ------------------------------------------------------------------
    # 2. A custom scenario with the degradation ladder visible.
    # ------------------------------------------------------------------
    custom = FaultScenario(
        name="double_trouble",
        description="front link burst while the rear lidar goes silent",
        fault_classes=("loss_burst", "silent_sensor"),
        build=lambda n: [
            LossBurst("link_front", n // 4, n // 2),
            SilentSensor("rear", n // 3, n // 2),
        ],
    )
    res = FaultCampaign([custom], CampaignConfig(n_frames=N_FRAMES)).run()
    scenario = res.scenarios[0]
    print(f"custom scenario: sound={scenario.soundness.passed} "
          f"complete={scenario.completeness.passed} "
          f"detections={scenario.detections}")
    for t, old, new, reason in scenario.mode_transitions:
        print(f"  {t / msec(1):8.1f} ms  {old:>8s} -> {new:<8s} {reason}")
    print()

    # ------------------------------------------------------------------
    # 3. The lesion: silence non-OK reports, watch completeness fail.
    # ------------------------------------------------------------------
    lesioned = FaultCampaign(
        [s for s in default_scenarios() if s.name == "loss_burst"],
        CampaignConfig(n_frames=N_FRAMES, degradation=False, watchdog=False,
                       disable_violation_reporting=True),
    ).run().scenarios[0]
    print(f"lesioned monitors: completeness passed = "
          f"{lesioned.completeness.passed} "
          f"({len(lesioned.completeness.failures)} silent violations caught "
          f"by the oracle)")
    assert not lesioned.completeness.passed


if __name__ == "__main__":
    main()
