#!/usr/bin/env python3
"""Fleet trace warehouse walkthrough: cross-run regression mining.

`examples/trace_attribution.py` explains one run's latency; this
walkthrough makes runs *comparable*.  Four stages, all through the
public `repro.warehouse` API:

1. **Export** -- run the two-ECU perception stack twice (a benign
   "base" commit and a lossy-uplink "head" commit) and write each as a
   run bundle: `manifest.json` (run key + full chain metadata) next to
   the versioned `spans.jsonl` export.
2. **Ingest** -- feed both bundles to the append-only sqlite
   warehouse.  Ingestion replays the per-run critical-path analysis on
   the imported spans and persists DDSketch snapshots per (run, chain,
   edge category, segment), so later queries never re-scan raw spans.
   Re-ingesting the same bundle is a digest-checked no-op.
3. **Query** -- cohort percentiles from *sketch merges*: p50/p95/p99
   per edge category plus per-segment d_mon budget burn (the paper's
   Eqs. 3-7 monitoring deadlines).
4. **Diff** -- the cross-commit attribution diff: which edge category
   regressed, and how the budget-burn headroom shifted.  The JSON
   document is byte-stable, which is what lets CI diff it as an
   artifact (`python -m repro bench --compare --warehouse ...`).

Run:  python examples/trace_warehouse.py
"""

import tempfile
from pathlib import Path

from repro.perception.stack import PerceptionStack, StackConfig
from repro.warehouse import (
    RunKey,
    RunManifest,
    RunSelector,
    SpanWarehouse,
    attribution_diff,
    dump_diff,
    load_run_bundle,
    regressed_categories,
    render_cohort,
    render_diff,
    aggregate,
    write_run_bundle,
)

FRAMES = 8

RUNS = (
    ("base", "cA", "benign", StackConfig(seed=1, spans=True)),
    ("head", "cB", "lossy_link",
     StackConfig(seed=7, link_loss=0.08, spans=True)),
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="trace_warehouse_"))

    # ------------------------------------------------------------------
    # 1. Export: one run bundle per (commit, scenario).
    # ------------------------------------------------------------------
    for run_id, commit, scenario, config in RUNS:
        stack = PerceptionStack(config)
        stack.run(n_frames=FRAMES)
        bundle, count = write_run_bundle(
            stack.spans, stack.chains, FRAMES, workdir / run_id,
            RunKey(run_id=run_id, commit=commit, suite="example",
                   scenario=scenario, vehicle="veh0"),
        )
        print(f"--- exported {run_id} ({scenario}): {count} spans "
              f"-> {bundle.name}/ ---")

    # ------------------------------------------------------------------
    # 2. Ingest both bundles; prove idempotency and order-independence.
    # ------------------------------------------------------------------
    db = workdir / "warehouse.db"
    with SpanWarehouse(db) as store:
        for run_id, *_ in RUNS:
            manifest, spans = load_run_bundle(workdir / run_id)
            result = store.ingest_run(manifest, spans)
            print(f"ingested {result.run_id}: {result.n_spans} spans, "
                  f"{result.n_instances} chain instances")
        digest = store.digest()
        again = store.ingest_run(*load_run_bundle(workdir / "base"))
        assert again.skipped, "re-ingest must be a no-op"
        assert store.digest() == digest
        print("re-ingest skipped; warehouse digest unchanged "
              f"({digest[:16]})")

        # Reverse ingest order into a scratch store: same digest.
        with SpanWarehouse(":memory:") as scratch:
            for run_id, *_ in reversed(RUNS):
                scratch.ingest_run(*load_run_bundle(workdir / run_id))
            assert scratch.digest() == digest
        print("reverse-order ingest produces the identical digest")

        # --------------------------------------------------------------
        # 3. Query: cohort percentiles from persisted sketch merges.
        # --------------------------------------------------------------
        print()
        print(render_cohort(aggregate(store, RunSelector())))

        # --------------------------------------------------------------
        # 4. Diff: what regressed between commit cA and commit cB?
        # --------------------------------------------------------------
        diff = attribution_diff(
            store, RunSelector(commit="cA"), RunSelector(commit="cB")
        )
        print()
        print(render_diff(diff))
        suspects = regressed_categories(diff, threshold=0.30)
        print()
        if suspects:
            chain, category, ratio = suspects[0]
            print(f"prime suspect: {category} edges on {chain} "
                  f"({ratio:.2f}x at p95)")
        first = dump_diff(diff, workdir / "diff.json").read_bytes()
        second = dump_diff(diff, workdir / "diff2.json").read_bytes()
        assert first == second
        print(f"diff document is byte-stable ({len(first)} bytes)")


if __name__ == "__main__":
    main()
