#!/usr/bin/env python3
"""Causal span tracing walkthrough: where does the latency budget go?

The monitors (DESIGN.md §4-ish, Algorithms 1-2) tell you *that* a chain
met or missed its budget; the span tracer tells you *why*.  Four
stages, all through the public `repro.tracing` API:

1. **Record** -- run the two-ECU perception stack with `spans=True` and
   check the recorded forest is well-formed (every span closed, parents
   resolve, one root per trace).
2. **Decompose** -- pull the critical path of one chain instance and
   show its edge decomposition: compute / network / queue / publish
   edges that sum *exactly* (integer nanoseconds, no residual) to the
   end-to-end latency.
3. **Attribute** -- aggregate all instances of every chain into
   per-category latency shares and per-segment budget burn against the
   paper's monitoring deadlines (d_mon) and the 250 ms e2e budget.
4. **Export** -- write a Chrome `about:tracing` / Perfetto file and a
   lossless JSONL span dump.

Run:  python examples/trace_attribution.py
"""

import json
import tempfile
from pathlib import Path

from repro.perception.stack import PerceptionStack, StackConfig
from repro.tracing import (
    CriticalPathAnalyzer,
    attribute_chain,
    render_attribution,
    validate_spans,
    write_chrome_trace,
    write_jsonl,
)

FRAMES = 10


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Record: same stack, same seed, same results -- tracing is
    #    observationally invisible (the differential tests prove it);
    #    it only *adds* a causal record on the side.
    # ------------------------------------------------------------------
    stack = PerceptionStack(StackConfig(seed=1, spans=True))
    stack.run(n_frames=FRAMES)
    problems = validate_spans(stack.spans)
    assert not problems, problems
    print(f"--- recorded {len(stack.spans)} well-formed spans "
          f"over {FRAMES} frames ---")

    # ------------------------------------------------------------------
    # 2. Decompose one chain instance edge by edge.
    # ------------------------------------------------------------------
    analyzer = CriticalPathAnalyzer(stack.spans)
    chain = stack.chains["front_objects"]
    path = analyzer.instance_path(chain, frame=3)
    assert path is not None
    print()
    print(f"critical path of chain front_objects, frame 3 "
          f"(e2e {path.e2e_ns / 1e6:.3f}ms):")
    for edge in path.edges:
        print(f"  {edge.category:>8s}  {edge.duration / 1e6:>8.3f}ms  {edge.name}")
    residual = path.e2e_ns - sum(e.duration for e in path.edges)
    print(f"edges sum exactly to the end-to-end latency "
          f"(residual = {residual}ns)")
    assert residual == 0

    # ------------------------------------------------------------------
    # 3. Aggregate attribution per chain: category shares + budget burn.
    # ------------------------------------------------------------------
    print()
    for name, chain in sorted(stack.chains.items()):
        attribution = attribute_chain(analyzer, chain, range(FRAMES))
        print(render_attribution(attribution))
        print()

    # ------------------------------------------------------------------
    # 4. Export: Chrome trace (load in about:tracing / Perfetto) and a
    #    lossless JSONL dump the analyzer can re-import.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        chrome = Path(tmp) / "trace.json"
        jsonl = Path(tmp) / "spans.jsonl"
        n_events = write_chrome_trace(stack.spans, str(chrome))
        n_lines = write_jsonl(stack.spans, str(jsonl))
        assert json.loads(chrome.read_text())["traceEvents"]
        print(f"exported {n_events} chrome trace events and "
              f"{n_lines} jsonl spans")
    print()
    print("same exports via the CLI:  python -m repro trace "
          "--chrome trace.json --jsonl spans.jsonl")


if __name__ == "__main__":
    main()
