#!/usr/bin/env python3
"""Fan the fault campaign and figure experiments out over worker processes.

Every campaign scenario (and every figure experiment) builds its own
simulator with deterministically seeded RNG streams, so the shards are
independent: running them in parallel and merging in input order yields
results byte-identical to a serial run.  This example demonstrates both
sharding axes and proves the equivalence on the spot.

The same fan-out is available from the CLI::

    python -m repro all -j 4

Run:  python examples/parallel_campaign.py
"""

import time

from repro.experiments.parallel import (
    run_campaign_parallel,
    run_experiments_parallel,
)
from repro.faults import CampaignConfig, FaultCampaign

N_FRAMES = 24
JOBS = 4


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The 11-scenario fault campaign, one worker task per scenario.
    config = CampaignConfig(n_frames=N_FRAMES)
    print(f"fault campaign across {JOBS} processes ({N_FRAMES} frames) ...")
    t0 = time.perf_counter()
    parallel = run_campaign_parallel(config=config, jobs=JOBS)
    t_parallel = time.perf_counter() - t0
    print(parallel.render_report())
    print(f"parallel wall time: {t_parallel:.1f}s")

    # ------------------------------------------------------------------
    # 2. Prove the merge is deterministic: serial run, same config.
    print("\nre-running serially to check equivalence ...")
    t0 = time.perf_counter()
    serial = FaultCampaign(config=config).run()
    t_serial = time.perf_counter() - t0
    identical = serial.render_report() == parallel.render_report() and all(
        a == b for a, b in zip(serial.scenarios, parallel.scenarios)
    )
    print(f"serial wall time:   {t_serial:.1f}s "
          f"(speedup {t_serial / max(t_parallel, 1e-9):.1f}x)")
    print(f"parallel == serial: {identical}")
    if not identical:
        raise SystemExit("parallel and serial campaign results diverge!")

    # ------------------------------------------------------------------
    # 3. Figure experiments shard the same way (one task per figure).
    names = ["fig02", "budgeting"]
    print(f"\nfigure experiments {names} across {JOBS} processes ...")
    for name, output in run_experiments_parallel(names, jobs=JOBS):
        print(f"==> {name}")
        print(output)


if __name__ == "__main__":
    main()
