#!/usr/bin/env python3
"""Inter-arrival vs synchronization-based remote monitoring (Fig. 6).

Drives both monitors with identical arrival schedules across the three
regimes the paper discusses -- accumulating lateness, consecutive
misses, benign jitter -- and scores them against ground truth, then
shows the Fig. 12 effect: the same synchronization-based monitor's
exception-entry latency in the middleware context vs forwarded to the
high-priority monitor thread.

Run:  python examples/remote_monitoring_comparison.py
"""

from repro.analysis import format_duration, render_table, stats_table
from repro.experiments.fig06_interarrival import run_fig06
from repro.experiments.fig12_remote_entry import run_fig12


def main() -> None:
    print("scoring monitors over three arrival regimes (Fig. 6) ...\n")
    fig6 = run_fig06(n_frames=150)
    rows = []
    for scenario, monitors in fig6.scores.items():
        for label, score in monitors.items():
            rows.append([
                scenario, label,
                str(score.true_violations),
                str(score.true_positives),
                str(score.false_positives),
                str(score.missed),
                f"{score.detection_rate:.2f}",
            ])
    print(render_table(
        ["scenario", "monitor", "violations", "TP", "FP", "missed", "rate"],
        rows,
    ))
    print(
        "\nreading: inter-arrival monitoring is blind to accumulating\n"
        "lateness and to all-but-the-first of consecutive misses, and\n"
        "false-positives on benign jitter -- 'more suitable for liveliness\n"
        "rather than latency' (paper Sec. IV-B1)."
    )

    print("\nexception-entry latency by timeout context (Fig. 12) ...\n")
    fig12 = run_fig12(n_periods=300, load=0.5)
    print(stats_table(fig12.stats))
    print(
        "\nreading: timeout routines inside the middleware are exposed to\n"
        "scheduling interference; forwarding to the high-priority monitor\n"
        "thread (paper Sec. V-B) keeps the reaction time bounded."
    )


if __name__ == "__main__":
    main()
