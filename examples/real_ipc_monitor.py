#!/usr/bin/env python3
"""The real shared-memory monitor, fed by separate producer processes.

Reproduces the paper's Sec. IV-A deployment for real on this machine:
producer *processes* (standing in for instrumented ROS services) post
start/end events into wait-free ring buffers in POSIX shared memory; a
monitor thread in the supervising process blocks on a semaphore with a
timeout and raises temporal exceptions when end events do not arrive in
time.  Prints the Fig. 11 overhead statistics measured live.

Run:  python examples/real_ipc_monitor.py
"""

import multiprocessing
import time

from repro.analysis import format_duration, stats_table, summarize
from repro.ipc import (
    IpcMonitor,
    IpcSegment,
    SharedMemoryRegion,
    SpscRingBuffer,
    TimedSemaphore,
)
from repro.ipc.ring_buffer import KIND_END, KIND_START

CAPACITY = 1024
N_EVENTS = 200
DEADLINE_MS = 20
#: Activations whose end event the producer deliberately withholds.
SKIPPED = {50, 51, 120}


def producer(start_name: str, end_name: str, semaphore: TimedSemaphore) -> None:
    """A separate process emulating an instrumented service."""
    start_region = SharedMemoryRegion(start_name, create=False)
    end_region = SharedMemoryRegion(end_name, create=False)
    start_buf = SpscRingBuffer(start_region.buf, CAPACITY)
    end_buf = SpscRingBuffer(end_region.buf, CAPACITY)
    for i in range(N_EVENTS):
        start_buf.push(KIND_START, i, time.monotonic_ns())
        semaphore.post()
        time.sleep(0.002)  # the service "computes"
        if i not in SKIPPED:
            end_buf.push(KIND_END, i, time.monotonic_ns())
        time.sleep(0.001)
    del start_buf, end_buf
    start_region.close()
    end_region.close()


def main() -> None:
    size = SpscRingBuffer.required_size(CAPACITY)
    with SharedMemoryRegion(None, size=size, create=True) as start_region, \
         SharedMemoryRegion(None, size=size, create=True) as end_region:
        start_buf = SpscRingBuffer(start_region.buf, CAPACITY, initialize=True)
        end_buf = SpscRingBuffer(end_region.buf, CAPACITY, initialize=True)
        segment = IpcSegment(
            "service", int(DEADLINE_MS * 1e6), start_buf, end_buf
        )
        exceptions = []

        def on_exception(name, activation, late_ns):
            exceptions.append(activation)
            print(f"  temporal exception: segment={name} activation={activation} "
                  f"(raised {format_duration(late_ns)} past the deadline)")

        monitor = IpcMonitor([segment], on_exception=on_exception)

        print(f"monitoring {N_EVENTS} activations with a {DEADLINE_MS} ms "
              f"deadline; the producer process withholds end events for "
              f"{sorted(SKIPPED)} ...")
        with monitor:
            proc = multiprocessing.Process(
                target=producer,
                args=(start_region.name, end_region.name, monitor.semaphore),
            )
            proc.start()
            proc.join()
            time.sleep(0.1)  # let the monitor drain the tail

        print(f"\ncompletions: {monitor.stats.completions}, "
              f"exceptions: {sorted(exceptions)}")
        assert sorted(exceptions) == sorted(SKIPPED), "detection mismatch!"

        print("\nFig. 11-style overheads measured on this run:")
        print(stats_table({
            "monitor latency": summarize(monitor.stats.monitor_latencies),
            "monitor execution time": summarize(monitor.stats.execution_times),
        }))
        # Release shared-memory views before the regions close (mmap
        # refuses to unmap while exported memoryviews exist).
        monitor.segments.clear()
        start_buf.release()
        end_buf.release()


if __name__ == "__main__":
    main()
