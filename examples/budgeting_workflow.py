#!/usr/bin/env python3
"""The paper's Sec. III-C budgeting workflow, end to end.

1.  Record an *unmonitored* trace of the perception stack (the paper
    uses LTTng; we use the built-in tracer).
2.  Extend latencies by the exception-handling WCRT (``l' = l + d_ex``)
    and solve the CSP of Eqs. (2)-(7) for minimal segment deadlines:
    exactly for p = 0 (perfect recovery), and with both the greedy
    heuristic and exact branch-and-bound for p = 1 (propagation).
3.  Distribute the leftover end-to-end budget back to the segments.
4.  Deploy the synthesized deadlines and verify the weakly-hard (m,k)
    constraint holds on a fresh monitored run.

Run:  python examples/budgeting_workflow.py
"""

from repro.analysis import format_duration
from repro.budgeting import (
    BudgetingProblem,
    distribute_slack,
    solve_branch_and_bound,
    solve_greedy_propagated,
    solve_independent,
)
from repro.experiments.common import interference_governor
from repro.perception import PerceptionStack, StackConfig
from repro.sim import msec
from repro.tracing.analysis import chain_trace_from_tracer

N_FRAMES = 250
D_EX = msec(1)


def main() -> None:
    governor = interference_governor(
        slow_min=0.45, slow_max=0.7, mean_interval_ms=600, mean_dwell_ms=30
    )

    print(f"1. recording an unmonitored trace ({N_FRAMES} frames) ...")
    measure = PerceptionStack(StackConfig(
        seed=33, monitoring=False, ecu2_governor=governor,
    ))
    measure.run(n_frames=N_FRAMES, settle=msec(1500))
    chain = measure.chains["front_objects"]
    trace = chain_trace_from_tracer(measure.tracer, chain, d_ex=D_EX)
    for segment in chain.segments:
        seg_trace = trace[segment.name]
        print(f"   {segment.name:12s} n={len(seg_trace):4d} "
              f"p50={format_duration(seg_trace.percentile(50)):>9s} "
              f"max={format_duration(seg_trace.maximum):>9s}")

    print(f"\n2. solving Eqs. (2)-(7) "
          f"(B_e2e={format_duration(chain.budget_e2e)}, "
          f"B_seg={format_duration(chain.budget_seg)}, {chain.mk}):")
    problem_p0 = BudgetingProblem(chain, trace, propagation=[0] * 4)
    problem_p1 = BudgetingProblem(chain, trace, propagation=[1] * 4)
    for label, result in (
        ("p=0 exact (independent)", solve_independent(problem_p0)),
        ("p=1 greedy", solve_greedy_propagated(problem_p1)),
        ("p=1 branch-and-bound", solve_branch_and_bound(problem_p1)),
    ):
        if result.schedulable:
            ds = ", ".join(format_duration(d) for d in result.deadlines)
            print(f"   {label:26s} sum={format_duration(result.total):>9s}  d=[{ds}]")
        else:
            print(f"   {label:26s} UNSCHEDULABLE: {result.reason}")
        final = result

    print("\n3. distributing leftover budget proportionally:")
    deployed = distribute_slack(
        final.deadlines, chain.budget_e2e, chain.budget_seg,
        strategy="proportional",
    )
    d_mon = problem_p1.monitored_deadlines(deployed)
    for name, value in d_mon.items():
        print(f"   d_mon[{name}] = {format_duration(value)}")

    print(f"\n4. deploying and verifying on a fresh run ({N_FRAMES} frames) ...")
    verify = PerceptionStack(StackConfig(
        seed=34,
        monitoring=True,
        d_mon={
            "s0_front": d_mon["s0_front"], "s0_rear": d_mon["s0_front"],
            "s1_front": d_mon["s1_front"], "s1_rear": d_mon["s1_front"],
            "s2": d_mon["s2"],
            "s3_objects": d_mon["s3_objects"], "s3_ground": d_mon["s3_objects"],
        },
        d_ex=D_EX,
        ecu2_governor=governor,
    ))
    verify.run(n_frames=N_FRAMES, settle=msec(1500))
    report = verify.chain_runtimes["front_objects"].finalize(
        through_activation=N_FRAMES - 1
    )
    print(f"   chain misses: {report.miss_count}/{report.total} "
          f"(worst window: {report.max_window_misses} of k={chain.mk.k})")
    print(f"   {chain.mk} constraint satisfied: {report.mk_satisfied}")


if __name__ == "__main__":
    main()
