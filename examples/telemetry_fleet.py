#!/usr/bin/env python3
"""Fleet telemetry walkthrough: ingest at scale, alert on (m,k) trouble.

Three stages, all through the public `repro.telemetry` API:

1. **Synthetic fleet load** -- drive the service with the deterministic
   multi-vehicle load generator, check the no-silent-drop accounting
   law (offered == applied + dropped + pending), and show which alert
   rules fired.
2. **Snapshot / restore** -- persist the sharded chain-state store as
   pure JSON and prove the restored store re-snapshots byte-identical.
3. **Live attach** -- hook a `TelemetryEmitter` into a running
   `PerceptionStack` via the monitors' `telemetry_sinks` lists, so the
   paper's in-vehicle verdicts stream straight into the fleet store.

Run:  python examples/telemetry_fleet.py
"""

import json

from repro.perception.stack import PerceptionStack, StackConfig
from repro.telemetry import (
    FleetConfig,
    FleetLoadGenerator,
    ServiceConfig,
    TelemetryEmitter,
    TelemetryService,
    attach_stack,
    run_load,
    stack_store_config,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Synthetic fleet: 6 vehicles, 200 frames, one scripted faulty
    #    vehicle so the alert rules have traffic.
    # ------------------------------------------------------------------
    fleet = FleetConfig(vehicles=6, frames=200)
    generator = FleetLoadGenerator(fleet)
    service = TelemetryService(ServiceConfig(store=fleet.store_config()))
    report = run_load(service, generator)
    print("--- fleet load ---")
    print(report.render())
    assert report.accounting_ok and report.dropped == 0

    print()
    print("worst chains by (m,k) violations:")
    rows = sorted(service.store.chain_summary(),
                  key=lambda r: -r["violations"])[:3]
    for row in rows:
        print(f"  {row['source']:14s} {row['chain']:16s} "
              f"viol={row['violations']:<4d} margin={row['margin']}")

    # ------------------------------------------------------------------
    # 2. Snapshot the store through JSON and restore it elsewhere.
    # ------------------------------------------------------------------
    snapshot = service.snapshot()
    twin = TelemetryService()
    twin.restore(json.loads(json.dumps(snapshot)))
    assert twin.snapshot() == snapshot
    print(f"\nsnapshot round-trip OK "
          f"({len(json.dumps(snapshot)) // 1024} KiB of JSON)")

    # ------------------------------------------------------------------
    # 3. Attach to a live perception stack: every monitor verdict is
    #    published through the telemetry_sinks hooks as it happens.
    # ------------------------------------------------------------------
    stack = PerceptionStack(StackConfig(seed=7))
    live = TelemetryService(ServiceConfig(store=stack_store_config(stack)))
    emitter = TelemetryEmitter("vehicle-under-test", live.ingest)
    attach_stack(stack, emitter)
    stack.run(n_frames=15)
    live.drain()
    assert live.applied == emitter.emitted and live.accounting_ok()
    print(f"\n--- live attach ---\n"
          f"{emitter.emitted} records from 15 frames, all applied")
    for name, p in live.store.segment_percentiles().items():
        print(f"  {name:24s} p95={(p['p95'] or 0) / 1e6:7.3f} ms "
              f"({p['count']} samples)")


if __name__ == "__main__":
    main()
