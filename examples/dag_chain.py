#!/usr/bin/env python3
"""Fork/join DAG chains: per-path budgets, (m,k) verdicts, executors.

Walks the DAG generalization end to end:

1. build the 7-segment perception DAG (camera + lidar forking into a
   fused transfer that fans out to planner and visualization sinks) and
   enumerate its four root->sink paths;
2. synthesize per-segment monitoring deadlines with the DAG CSP solver
   (Eqs. 3'-5': the telescoped sum along *every* path must fit that
   path's own sink budget) and verify the telescoping by brute force;
3. run two fault scenarios from the campaign matrix -- the same CPU
   overload under the single-threaded polling-point executor and the
   multi-threaded callback-group executor -- and show the verdict
   difference: head-of-line blocking starves the viz path on one, the
   reentrant group isolates it on the other.  Both runs must pass the
   soundness and no-silent-violation oracles.

Run:  python examples/dag_chain.py
"""

from repro.budgeting import ChainTrace, SegmentTrace
from repro.budgeting.dag import solve_dag_budgets
from repro.faults.dag_scenarios import (
    DagCampaign,
    DagCampaignConfig,
    default_dag_scenarios,
)
from repro.faults.dag_stack import DagStackConfig, build_perception_dag
from repro.sim import msec

N_FRAMES = 16


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Topology: forks, joins, and the four monitored paths.
    # ------------------------------------------------------------------
    config = DagStackConfig()
    dag = build_perception_dag(config)
    print(f"DAG '{dag.name}': {len(dag)} segments, "
          f"roots={dag.roots()}, sinks={dag.sinks()}")
    for path in dag.paths():
        budget = dag.budget_e2e[path.sink]
        print(f"  {path.path_id:<40s} B_e2e={budget / msec(1):6.1f} ms")
    assert len(dag.paths()) == 4

    # ------------------------------------------------------------------
    # 2. Per-path budget synthesis (DAG CSP, Eqs. 3'-5').
    # ------------------------------------------------------------------
    # A synthetic latency trace: each segment observed at 60/70/80 % of
    # its nominal monitoring budget across 10 activations.
    trace = ChainTrace(dag.name)
    for name in dag.segments:
        nominal = config.d_mon[name]
        trace.add(SegmentTrace(name, [
            int(nominal * f) for f in (0.6, 0.7, 0.8, 0.6, 0.7,
                                       0.8, 0.6, 0.7, 0.8, 0.6)
        ]))
    result = solve_dag_budgets(dag, trace)
    assert result.schedulable, result.reason
    print("\nsynthesized monitoring deadlines "
          f"({result.nodes_explored} CSP nodes):")
    for name, deadline in sorted(result.deadlines.items()):
        print(f"  d({name:<10s}) = {deadline / msec(1):6.2f} ms")
    # Brute-force telescoping check, independent of the solver.
    for path in dag.paths():
        total = sum(result.deadlines[n] for n in path.segment_names)
        assert total <= dag.budget_e2e[path.sink], path.path_id
        print(f"  path {path.path_id:<40s} "
              f"sum={total / msec(1):6.1f} ms  "
              f"<= {dag.budget_e2e[path.sink] / msec(1):6.1f} ms")

    # ------------------------------------------------------------------
    # 3. One fault, two executor models, two different verdicts.
    # ------------------------------------------------------------------
    wanted = {"dag_cpu_overload_single", "dag_cpu_overload_multi"}
    scenarios = [s for s in default_dag_scenarios() if s.name in wanted]
    campaign = DagCampaign(scenarios, DagCampaignConfig(n_frames=N_FRAMES))
    outcome = campaign.run()
    print()
    for scenario in outcome.scenarios:
        assert scenario.soundness.passed, scenario.name
        assert scenario.completeness.passed, scenario.name
        print(f"{scenario.name} [{scenario.executor_model}]: "
              f"detections={scenario.detections}")
        for path_id, report in sorted(scenario.path_reports.items()):
            print(f"  {path_id:<40s} misses={report['misses']:2d} "
                  f"(m,k) ok={bool(report['mk_satisfied'])}")
    by_name = {s.name: s for s in outcome.scenarios}
    viz = "s_cam>s_fuse_cam>s_xfer>s_viz"
    single = by_name["dag_cpu_overload_single"].path_reports[viz]["misses"]
    multi = by_name["dag_cpu_overload_multi"].path_reports[viz]["misses"]
    assert single > 0, "polling point should starve the viz path"
    assert multi == 0, "reentrant group should isolate the viz path"
    print("\nexecutor discrimination: viz-path misses "
          f"single={single}, multi={multi} -- same fault, different "
          "verdict, which is why the executor model is a parameter.")


if __name__ == "__main__":
    main()
