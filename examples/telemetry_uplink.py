#!/usr/bin/env python3
"""Durable uplink walkthrough: spool, crash, recover, deliver, verify.

Four stages, all through the public `repro.telemetry.uplink` API
(DESIGN.md §9):

1. **Append-before-emit** -- spool a vehicle's telemetry into a
   CRC-framed write-ahead log; nothing is eligible to send before it
   is durable.
2. **Torn-tail crash** -- damage the last WAL line mid-write (the only
   line a crash can tear), recover, and show the repair is *counted*,
   never silent.
3. **Lossy delivery** -- drive two vehicles through a dropping,
   duplicating channel with the retrying client into the idempotent
   fleet ingestor, then check the ledger law by hand:
   ``offered == acked + spooled + evicted``.
4. **Server crash** -- kill the ingestor, recover from checkpoint +
   log replay, and prove the store digest is unchanged.

Run:  python examples/telemetry_uplink.py
"""

import tempfile
from pathlib import Path

from repro.telemetry import (
    FleetConfig,
    FleetLoadGenerator,
    ServiceConfig,
    TelemetryService,
)
from repro.telemetry.uplink import (
    AdversarialChannel,
    ChannelFaultPlan,
    RetryingUplinkClient,
    UplinkClientConfig,
    UplinkIngestor,
    WalConfig,
    WalSpooler,
    decode_envelope,
    store_digest,
)

FLEET = FleetConfig(vehicles=2, frames=30, faulty_every=0)


def tear_tail(directory: Path) -> None:
    """Chop the newest WAL line in half, as a mid-write crash would."""
    path = sorted(directory.glob("wal-*.log"))[-1]
    lines = path.read_text(encoding="utf-8").splitlines()
    lines[-1] = lines[-1][: len(lines[-1]) // 2]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def main() -> None:
    records = FleetLoadGenerator(FLEET).materialize()
    streams = {}
    for record in records:
        streams.setdefault(record.source, []).append(record)

    # Fault-free reference: what the fleet store must converge to.
    reference = TelemetryService(ServiceConfig(store=FLEET.store_config()))
    reference.ingest_many(records)
    reference.pump()
    want_digest = store_digest(reference)

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)

        # --------------------------------------------------------------
        # 1. Append-before-emit: every record is durable in the WAL
        #    before the client may send it.
        # --------------------------------------------------------------
        source, stream = sorted(streams.items())[0]
        config = WalConfig(root / source, fsync="never",
                           segment_max_records=64)
        spooler = WalSpooler.open_fresh(config, source)
        for record in stream:
            spooler.append(record)
        stats = spooler.stats()
        print("--- 1. spool ---")
        print(f"{stats['pending']} records pending in "
              f"{stats['segments']} segments "
              f"({stats['bytes'] // 1024} KiB)")
        assert stats["pending"] == len(stream)

        # --------------------------------------------------------------
        # 2. Torn-tail crash: the half-written line is truncated away
        #    and *counted*; every intact record survives.
        # --------------------------------------------------------------
        spooler.close()
        tear_tail(config.directory)
        spooler, report = WalSpooler.recover(config, source)
        print("\n--- 2. torn-tail recovery ---")
        print(f"truncated_lines={report.truncated_lines} "
              f"pending={report.pending} (of {len(stream)} appended)")
        assert report.truncated_lines == 1
        assert report.pending == len(stream) - 1
        spooler.append(stream[-1])  # the vehicle re-emits the torn record

        # --------------------------------------------------------------
        # 3. Lossy delivery: retrying clients vs a dropping,
        #    duplicating channel; the ingestor applies exactly once.
        # --------------------------------------------------------------
        ingestor = UplinkIngestor(
            TelemetryService(ServiceConfig(store=FLEET.store_config())),
            root / "fleet", fsync="never", checkpoint_every=4,
        )
        ledger = {src: {"offered": set(), "acked": set()}
                  for src in streams}
        clients = {}

        def deliver_ack(frame, now):
            doc = decode_envelope(frame.payload)
            if doc is not None:
                clients[frame.dst].on_ack(doc, now)

        def deliver_batch(frame, now):
            ack = ingestor.handle_payload(frame.payload, now)
            if ack is not None:
                down.send(ack, "fleet", frame.src, now)

        plan = ChannelFaultPlan(drop_prob=0.15, dup_prob=0.15)
        up = AdversarialChannel("up", deliver_batch, plan, seed=11)
        down = AdversarialChannel("down", deliver_ack, plan, seed=12)

        spoolers = {source: spooler}
        for src, st in sorted(streams.items())[1:]:
            spoolers[src] = WalSpooler.open_fresh(
                WalConfig(root / src, fsync="never",
                          segment_max_records=64), src)
            for record in st:
                spoolers[src].append(record)
        for src, sp in spoolers.items():
            ledger[src]["offered"] = set(sp.pending_seqs())
            clients[src] = RetryingUplinkClient(
                sp,
                lambda payload, now, s=src: up.send(payload, s, "fleet", now),
                UplinkClientConfig(batch_records=32, ack_timeout=6, seed=3),
            )
            clients[src].on_acked = (
                lambda released, s=src: ledger[s]["acked"].update(
                    r.seq for r in released))

        now = 0
        while any(not c.idle() for c in clients.values()) and now < 10_000:
            for client in clients.values():
                client.tick(now)
            up.step(now)
            down.step(now)
            now += 1

        print("\n--- 3. lossy delivery ---")
        print(f"converged after {now} steps; channel up: "
              f"dropped={up.stats.dropped} duplicated={up.stats.duplicated}")
        print(f"ingestor: fresh={ingestor.records_fresh} "
              f"duplicates={ingestor.records_duplicate}")
        for src, entry in sorted(ledger.items()):
            spooled = spoolers[src].pending
            ok = entry["offered"] == entry["acked"] and spooled == 0
            print(f"  {src}: offered={len(entry['offered'])} "
                  f"acked={len(entry['acked'])} spooled={spooled} "
                  f"evicted=0 {'OK' if ok else 'VIOLATED'}")
            assert ok, "ledger law violated"
        assert store_digest(ingestor.service) == want_digest
        print("store digest matches the fault-free reference")

        # --------------------------------------------------------------
        # 4. Server crash: checkpoint + append-before-ack log replay
        #    rebuild the exact same store.
        # --------------------------------------------------------------
        ingestor.close()
        recovered, rec_report = UplinkIngestor.recover(
            root / "fleet",
            service_config=ServiceConfig(store=FLEET.store_config()),
            fsync="never",
        )
        print("\n--- 4. server recovery ---")
        print(f"checkpoint_loaded={rec_report.checkpoint_loaded} "
              f"replayed_records={rec_report.replayed_records} "
              f"(fresh={rec_report.replayed_fresh})")
        assert store_digest(recovered.service) == want_digest
        print("recovered store digest matches -- no record lost, "
              "none double-counted")


if __name__ == "__main__":
    main()
