"""Integration tests for the DDS publish/subscribe paths."""

import pytest

from repro.dds import (
    DdsDomain,
    QosProfile,
    ReaderListener,
    ReliabilityKind,
    Topic,
)
from repro.network import JitterModel, Link, NetworkStack
from repro.sim import Ecu, Simulator, msec, usec


class Collector(ReaderListener):
    def __init__(self, sim):
        self.sim = sim
        self.samples = []
        self.deadline_misses = []
        self.expired = []

    def on_data_available(self, reader, sample):
        self.samples.append((sample.data, self.sim.now))

    def on_requested_deadline_missed(self, reader, key, total_count):
        self.deadline_misses.append((key, total_count, self.sim.now))

    def on_sample_lifespan_expired(self, reader, sample):
        self.expired.append(sample.data)


def two_ecu_domain(seed=1, loss=0.0, base_latency=usec(200)):
    sim = Simulator(seed=seed)
    ecu1 = Ecu(sim, "ecu1", n_cores=2)
    ecu2 = Ecu(sim, "ecu2", n_cores=2)
    domain = DdsDomain(sim, local_latency=usec(20))
    stack1 = NetworkStack(ecu1, per_frame_cost=usec(10), per_byte_cost=0)
    stack2 = NetworkStack(ecu2, per_frame_cost=usec(10), per_byte_cost=0)
    domain.register_stack(ecu1, stack1)
    domain.register_stack(ecu2, stack2)
    link12 = Link(sim, "e1->e2", base_latency=base_latency, loss_prob=loss, bandwidth_bps=1e12)
    link21 = Link(sim, "e2->e1", base_latency=base_latency, loss_prob=loss, bandwidth_bps=1e12)
    domain.add_link(ecu1, ecu2, link12)
    domain.add_link(ecu2, ecu1, link21)
    return sim, ecu1, ecu2, domain


class TestLocalDelivery:
    def test_same_ecu_delivery_uses_loopback_latency(self):
        sim = Simulator()
        ecu = Ecu(sim, "ecu1")
        domain = DdsDomain(sim, local_latency=usec(30))
        pub_part = domain.create_participant(ecu, "pub")
        sub_part = domain.create_participant(ecu, "sub")
        topic = Topic("chatter")
        collector = Collector(sim)
        sub_part.create_reader(topic, listener=collector)
        writer = pub_part.create_writer(topic)
        sim.schedule_at(msec(1), writer.write, "hello")
        sim.run(until=msec(2))
        assert collector.samples == [("hello", msec(1) + usec(30))]

    def test_multiple_readers_all_receive(self):
        sim = Simulator()
        ecu = Ecu(sim, "ecu1")
        domain = DdsDomain(sim)
        part = domain.create_participant(ecu, "p")
        topic = Topic("t")
        collectors = [Collector(sim) for _ in range(3)]
        for collector in collectors:
            part.create_reader(topic, listener=collector)
        writer = part.create_writer(topic)
        sim.schedule_at(msec(1), writer.write, 42)
        sim.run(until=msec(2))
        assert all(c.samples and c.samples[0][0] == 42 for c in collectors)

    def test_source_timestamp_defaults_to_local_clock(self):
        sim = Simulator()
        ecu = Ecu(sim, "ecu1")
        domain = DdsDomain(sim)
        part = domain.create_participant(ecu, "p")
        topic = Topic("t")
        received = []

        class L(ReaderListener):
            def on_data_available(self, reader, sample):
                received.append(sample.source_timestamp)

        part.create_reader(topic, listener=L())
        writer = part.create_writer(topic)
        sim.schedule_at(msec(5), writer.write, "x")
        sim.run(until=msec(6))
        assert received == [msec(5)]


class TestRemoteDelivery:
    def test_cross_ecu_delivery_goes_through_link_and_ksoftirq(self):
        sim, ecu1, ecu2, domain = two_ecu_domain()
        part1 = domain.create_participant(ecu1, "pub")
        part2 = domain.create_participant(ecu2, "sub")
        topic = Topic("points", size_fn=lambda d: 0)
        collector = Collector(sim)
        part2.create_reader(topic, listener=collector)
        writer = part1.create_writer(topic)
        sim.schedule_at(msec(1), writer.write, "cloud")
        sim.run(until=msec(2))
        assert len(collector.samples) == 1
        data, arrival = collector.samples[0]
        assert data == "cloud"
        # link 200us + ksoftirq 10us (framing bytes excluded by size_fn=0
        # except RTPS overhead -> serialization at 1e12 bps is negligible).
        assert arrival >= msec(1) + usec(210)
        assert arrival <= msec(1) + usec(230)

    def test_missing_link_raises(self):
        sim = Simulator()
        ecu1 = Ecu(sim, "ecu1")
        ecu2 = Ecu(sim, "ecu2")
        domain = DdsDomain(sim)
        NetworkStack(ecu2)
        domain.register_stack(ecu2, NetworkStack(ecu2))
        part1 = domain.create_participant(ecu1, "pub")
        part2 = domain.create_participant(ecu2, "sub")
        topic = Topic("t")
        part2.create_reader(topic)
        writer = part1.create_writer(topic)
        with pytest.raises(RuntimeError):
            writer.write("x")

    def test_best_effort_loses_samples_on_lossy_link(self):
        sim, ecu1, ecu2, domain = two_ecu_domain(seed=3, loss=0.4)
        part1 = domain.create_participant(ecu1, "pub")
        part2 = domain.create_participant(ecu2, "sub")
        topic = Topic("t", size_fn=lambda d: 100)
        collector = Collector(sim)
        part2.create_reader(topic, listener=collector)
        writer = part1.create_writer(topic)
        for i in range(100):
            sim.schedule_at(msec(1 + i), writer.write, i)
        sim.run(until=msec(200))
        assert 30 < len(collector.samples) < 90
        assert domain.frames_dropped > 0

    def test_reliable_retransmits_through_loss(self):
        sim, ecu1, ecu2, domain = two_ecu_domain(seed=3, loss=0.4)
        part1 = domain.create_participant(ecu1, "pub")
        part2 = domain.create_participant(ecu2, "sub")
        topic = Topic("t", size_fn=lambda d: 100)
        qos = QosProfile(reliability=ReliabilityKind.RELIABLE, max_retransmits=10)
        collector = Collector(sim)
        part2.create_reader(topic, qos=qos, listener=collector)
        writer = part1.create_writer(topic, qos=qos)
        for i in range(100):
            sim.schedule_at(msec(1 + i), writer.write, i)
        sim.run(until=msec(300))
        assert len(collector.samples) == 100

    def test_incompatible_qos_not_matched(self):
        sim, ecu1, ecu2, domain = two_ecu_domain()
        part1 = domain.create_participant(ecu1, "pub")
        part2 = domain.create_participant(ecu2, "sub")
        topic = Topic("t")
        collector = Collector(sim)
        part2.create_reader(
            topic,
            qos=QosProfile(reliability=ReliabilityKind.RELIABLE),
            listener=collector,
        )
        writer = part1.create_writer(
            topic, qos=QosProfile(reliability=ReliabilityKind.BEST_EFFORT)
        )
        sim.schedule_at(msec(1), writer.write, "x")
        sim.run(until=msec(5))
        assert collector.samples == []
        assert domain.incompatible_matches == 1


class TestLifespan:
    def test_stale_sample_dropped(self):
        sim, ecu1, ecu2, domain = two_ecu_domain(base_latency=msec(5))
        part1 = domain.create_participant(ecu1, "pub")
        part2 = domain.create_participant(ecu2, "sub")
        topic = Topic("t", size_fn=lambda d: 0)
        collector = Collector(sim)
        part2.create_reader(
            topic, qos=QosProfile(lifespan=msec(2)), listener=collector
        )
        writer = part1.create_writer(topic)
        sim.schedule_at(msec(1), writer.write, "stale")
        sim.run(until=msec(20))
        assert collector.samples == []
        assert collector.expired == ["stale"]


class TestDeadlineQos:
    def test_deadline_missed_fires_on_silence(self):
        sim = Simulator()
        ecu = Ecu(sim, "ecu1", n_cores=2)
        domain = DdsDomain(sim, local_latency=usec(10))
        part = domain.create_participant(ecu, "sub", middleware_priority=30)
        pub_part = domain.create_participant(ecu, "pub")
        topic = Topic("t")
        collector = Collector(sim)
        part.create_reader(
            topic, qos=QosProfile(deadline=msec(10)), listener=collector
        )
        writer = pub_part.create_writer(topic)
        # Publish at 1ms and 5ms, then go silent.
        sim.schedule_at(msec(1), writer.write, 1)
        sim.schedule_at(msec(5), writer.write, 2)
        sim.run(until=msec(40))
        assert len(collector.samples) == 2
        # Deadline armed on arrival ~5ms; first miss ~15ms, repeating.
        assert len(collector.deadline_misses) >= 2
        first_miss_time = collector.deadline_misses[0][2]
        assert msec(15) <= first_miss_time <= msec(16)

    def test_no_deadline_miss_while_publishing_regularly(self):
        sim = Simulator()
        ecu = Ecu(sim, "ecu1", n_cores=2)
        domain = DdsDomain(sim, local_latency=usec(10))
        sub_part = domain.create_participant(ecu, "sub")
        pub_part = domain.create_participant(ecu, "pub")
        topic = Topic("t")
        collector = Collector(sim)
        sub_part.create_reader(
            topic, qos=QosProfile(deadline=msec(15)), listener=collector
        )
        writer = pub_part.create_writer(topic)
        for i in range(20):
            sim.schedule_at(msec(1 + 10 * i), writer.write, i)
        sim.run(until=msec(195))
        assert collector.deadline_misses == []


class TestWriterInstrumentation:
    def test_publish_filter_suppresses(self):
        sim = Simulator()
        ecu = Ecu(sim, "ecu1")
        domain = DdsDomain(sim)
        part = domain.create_participant(ecu, "p")
        topic = Topic("t")
        collector = Collector(sim)
        part.create_reader(topic, listener=collector)
        writer = part.create_writer(topic)
        skip_next = [True]

        def skip_filter(sample):
            if skip_next[0]:
                skip_next[0] = False
                return False
            return True

        writer.publish_filters.append(skip_filter)
        sim.schedule_at(msec(1), writer.write, "skipped")
        sim.schedule_at(msec(2), writer.write, "delivered")
        sim.run(until=msec(3))
        assert [d for d, _ in collector.samples] == ["delivered"]
        assert writer.suppressed == 1
        assert writer.published == 1

    def test_publish_hook_sees_actual_publications_only(self):
        sim = Simulator()
        ecu = Ecu(sim, "ecu1")
        domain = DdsDomain(sim)
        part = domain.create_participant(ecu, "p")
        writer = part.create_writer(Topic("t"))
        seen = []
        writer.publish_filters.append(lambda s: s.data != "blocked")
        writer.on_publish_hooks.append(lambda s: seen.append(s.data))
        writer.write("blocked")
        writer.write("ok")
        assert seen == ["ok"]

    def test_sequence_numbers_monotonic(self):
        sim = Simulator()
        ecu = Ecu(sim, "ecu1")
        domain = DdsDomain(sim)
        part = domain.create_participant(ecu, "p")
        writer = part.create_writer(Topic("t"))
        samples = [writer.write(i) for i in range(5)]
        assert [s.sequence_number for s in samples] == [0, 1, 2, 3, 4]


class TestReaderInstrumentation:
    def test_receive_filter_discards(self):
        sim = Simulator()
        ecu = Ecu(sim, "ecu1")
        domain = DdsDomain(sim, local_latency=usec(1))
        part = domain.create_participant(ecu, "p")
        topic = Topic("t")
        collector = Collector(sim)
        reader = part.create_reader(topic, listener=collector)
        reader.receive_filters.append(lambda s: s.data % 2 == 0)
        writer = part.create_writer(topic)
        for i in range(6):
            sim.schedule_at(msec(1 + i), writer.write, i)
        sim.run(until=msec(10))
        assert [d for d, _ in collector.samples] == [0, 2, 4]
        assert reader.filtered == 3

    def test_issue_receive_injects_recovered_sample(self):
        sim = Simulator()
        ecu = Ecu(sim, "ecu1")
        domain = DdsDomain(sim)
        part = domain.create_participant(ecu, "p")
        topic = Topic("t")
        collector = Collector(sim)
        reader = part.create_reader(topic, listener=collector)
        from repro.dds import Sample

        sample = Sample(
            topic=topic,
            data="substitute",
            source_timestamp=0,
            sequence_number=0,
            recovered=True,
        )
        reader.issue_receive(sample)
        assert collector.samples == [("substitute", 0)]

    def test_keep_last_history_bounded(self):
        sim = Simulator()
        ecu = Ecu(sim, "ecu1")
        domain = DdsDomain(sim, local_latency=usec(1))
        part = domain.create_participant(ecu, "p")
        topic = Topic("t")
        reader = part.create_reader(topic, qos=QosProfile(history_depth=3))
        writer = part.create_writer(topic)
        for i in range(10):
            sim.schedule_at(msec(1 + i), writer.write, i)
        sim.run(until=msec(20))
        assert [s.data for s in reader.history] == [7, 8, 9]

    def test_take_pops_fifo(self):
        sim = Simulator()
        ecu = Ecu(sim, "ecu1")
        domain = DdsDomain(sim, local_latency=usec(1))
        part = domain.create_participant(ecu, "p")
        topic = Topic("t")
        reader = part.create_reader(topic, qos=QosProfile(history_depth=10))
        writer = part.create_writer(topic)
        for i in range(3):
            sim.schedule_at(msec(1 + i), writer.write, i)
        sim.run(until=msec(10))
        assert reader.take().data == 0
        assert reader.take().data == 1
        assert reader.take().data == 2
        assert reader.take() is None
