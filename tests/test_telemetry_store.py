"""Sharded chain-state store: placement, facts, snapshot identity."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.records import (
    RecordKind,
    TelemetryRecord,
    WIRE_SCHEMA,
    decode_stream,
    encode_stream,
)
from repro.telemetry.store import ChainStateStore, StoreConfig


def _segment(source, seq, activation, latency, verdict="ok",
             chain="c", segment="c/s0"):
    return TelemetryRecord(
        kind=RecordKind.SEGMENT, source=source, chain=chain, segment=segment,
        activation=activation, latency_ns=latency, verdict=verdict,
        timestamp_ns=activation * 100 + latency, seq=seq,
    )


def _chain(source, seq, activation, violated, chain="c"):
    return TelemetryRecord(
        kind=RecordKind.CHAIN, source=source, chain=chain,
        activation=activation, verdict="miss" if violated else "ok",
        timestamp_ns=(activation + 1) * 100, seq=seq,
    )


class TestSharding:
    def test_placement_is_deterministic_and_in_range(self):
        for n_shards in (1, 4, 8, 13):
            for source in ("vehicle-000", "vehicle-017", "scenario"):
                for chain in ("front_objects", "rear_objects"):
                    index = ChainStateStore.shard_index(source, chain, n_shards)
                    assert 0 <= index < n_shards
                    assert index == ChainStateStore.shard_index(
                        source, chain, n_shards
                    )

    def test_keys_land_on_their_shard(self):
        store = ChainStateStore(StoreConfig(n_shards=4))
        store.apply(_segment("v0", 0, 0, 10))
        store.apply(_segment("v1", 0, 0, 10))
        for shard_i, shard in enumerate(store.shards):
            for source, chain in shard:
                assert ChainStateStore.shard_index(source, chain, 4) == shard_i
        assert store.keys() == [("v0", "c"), ("v1", "c")]


class TestApplyFacts:
    def test_chain_miss_stream_counts_violations(self):
        store = ChainStateStore(StoreConfig(mk_by_chain={"c": (1, 3)}))
        verdicts = [True, True, True, False]
        facts = [
            store.apply(_chain("v0", i, i, violated))
            for i, violated in enumerate(verdicts)
        ]
        assert [f.mk_violation for f in facts] == [False, True, True, True]
        assert store.total_violations() == 3

    def test_margin_exhausted_is_episodic(self):
        store = ChainStateStore(StoreConfig(mk_by_chain={"c": (1, 4)}))
        facts = []
        for i, violated in enumerate([True, False, False, False, False, True]):
            facts.append(store.apply(_chain("v0", i, i, violated)))
        # Record 0 exhausts the margin (m=1) and the flag fires once; it
        # stays silent while the miss remains in the k=4 window, resets
        # when the window clears (record 4), and record 5 opens a new
        # episode.
        assert [f.margin_exhausted_now for f in facts] == [
            True, False, False, False, False, True
        ]
        assert store.total_violations() == 0

    def test_sequence_gap_reported_once_per_gap(self):
        store = ChainStateStore()
        assert store.apply(_segment("v0", 0, 0, 10)).seq_gap == 0
        assert store.apply(_segment("v0", 4, 1, 10)).seq_gap == 3
        assert store.apply(_segment("v0", 5, 2, 10)).seq_gap == 0
        assert store.sources["v0"].seq_gaps == 3

    def test_reorder_counted_not_gap(self):
        store = ChainStateStore()
        store.apply(_segment("v0", 1, 0, 10))
        outcome = store.apply(_segment("v0", 0, 1, 10))
        assert outcome.seq_gap == 0
        assert store.sources["v0"].reorders == 1

    def test_latency_budget_windows(self):
        config = StoreConfig(
            budget_by_segment={"c/s0": 100},
            window_records=5,
            latency_windows=2,
        )
        store = ChainStateStore(config)
        streaks = []
        # 4 windows of 5 records, every record over budget: the streak
        # fact fires at exact multiples of latency_windows (2 and 4).
        for i in range(20):
            outcome = store.apply(_segment("v0", i, i, 500))
            if outcome.latency_window_over_streak:
                streaks.append((i, outcome.latency_window_over_streak))
        assert streaks == [(9, 2), (19, 4)]

    def test_mode_record_updates_source_level(self):
        store = ChainStateStore()
        record = TelemetryRecord(
            kind=RecordKind.MODE, source="v0", verdict="fault",
            level="degraded", timestamp_ns=5, seq=0,
        )
        store.apply(record)
        assert store.sources["v0"].level == "degraded"


class TestSnapshotRestore:
    def _populated_store(self):
        store = ChainStateStore(StoreConfig(
            n_shards=4,
            mk_by_chain={"front": (2, 10)},
            budget_by_segment={"front/s0": 150},
        ))
        for i in range(40):
            store.apply(_segment(
                f"v{i % 3}", 2 * i, i, 90 + 7 * (i % 11),
                chain="front", segment="front/s0",
            ))
            store.apply(_chain(f"v{i % 3}", 2 * i + 1, i, i % 7 == 0,
                               chain="front"))
        return store

    def test_round_trip_identity_through_json(self):
        store = self._populated_store()
        snapshot = store.snapshot()
        restored = ChainStateStore.restore(json.loads(json.dumps(snapshot)))
        assert restored.snapshot() == snapshot
        assert restored.chain_summary() == store.chain_summary()
        assert restored.segment_percentiles() == store.segment_percentiles()

    def test_restored_store_continues_identically(self):
        store = self._populated_store()
        restored = ChainStateStore.restore(store.snapshot())
        more = [_chain("v9", i, i, i % 2 == 0, chain="front")
                for i in range(12)]
        for record in more:
            a = store.apply(record)
            b = restored.apply(record)
            assert (a.mk_violation, a.margin, a.seq_gap) == (
                b.mk_violation, b.margin, b.seq_gap
            )
        assert restored.snapshot() == store.snapshot()

    def test_bad_schema_rejected(self):
        store = ChainStateStore()
        snapshot = store.snapshot()
        snapshot["schema"] = "something-else/9"
        with pytest.raises(ValueError):
            ChainStateStore.restore(snapshot)


class TestWireFormat:
    @given(
        latencies=st.lists(
            st.integers(min_value=0, max_value=10**9), min_size=1, max_size=30
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_stream_codec_round_trip(self, latencies):
        records = [_segment("v0", i, i, lat) for i, lat in enumerate(latencies)]
        text = encode_stream(records)
        assert text.splitlines()[0] == json.dumps({"schema": WIRE_SCHEMA})
        assert list(decode_stream(text)) == records
