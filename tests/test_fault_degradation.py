"""Graceful degradation: the escalation ladder and the monitor watchdog."""

import pytest

from repro.core.chain_runtime import Outcome
from repro.faults import (
    DegradationMode,
    EscalationPolicy,
    GracefulDegradationManager,
    GroundTruthRecorder,
    LinkPartition,
    LossBurst,
    MonitorWatchdog,
    SilentSensor,
    check_completeness,
)
from repro.perception import PerceptionStack, StackConfig

#: Whole module exercises multi-second stack/campaign runs.
pytestmark = pytest.mark.slow


def build_stack(seed=11):
    return PerceptionStack(StackConfig(seed=seed))


class TestEscalationLadder:
    def test_degrade_then_recover(self):
        """A bounded burst: NORMAL -> DEGRADED -> back to NORMAL."""
        stack = build_stack()
        LossBurst("link_12", 8, 12).arm(stack)
        manager = GracefulDegradationManager(
            stack,
            policy=EscalationPolicy(recover_after_clean=20,
                                    safe_after_violations=100),
        )
        manager.start(n_frames=40)
        stack.run(n_frames=40)
        modes = [(old, new) for _t, old, new, _r in manager.transitions]
        assert (DegradationMode.NORMAL, DegradationMode.DEGRADED) in modes
        assert (DegradationMode.DEGRADED, DegradationMode.NORMAL) in modes
        assert manager.mode is DegradationMode.NORMAL
        assert manager.safe_state_entries == 0

    def test_sustained_fault_reaches_safe_state_once(self):
        stack = build_stack()
        LinkPartition(["link_front", "link_rear"], 8, 34).arm(stack)
        safe_calls = []
        manager = GracefulDegradationManager(
            stack,
            policy=EscalationPolicy(safe_after_violations=6),
            on_safe_state=lambda t, reason: safe_calls.append((t, reason)),
        )
        manager.start(n_frames=40)
        stack.run(n_frames=40)
        assert manager.mode is DegradationMode.SAFE
        assert len(safe_calls) == 1
        assert manager.safe_state_entries == 1
        # SAFE restores the original handlers (nothing stays masked).
        assert not manager._original_handlers

    def test_degraded_mode_recovers_with_stale_data(self):
        """In DEGRADED mode, remote misses are served from last-good
        data (RECOVERED) instead of propagating (MISS)."""
        stack = build_stack()
        LossBurst("link_front", 8, 16).arm(stack)
        manager = GracefulDegradationManager(
            stack, policy=EscalationPolicy(safe_after_violations=1000)
        )
        manager.start(n_frames=30)
        stack.run(n_frames=30)
        outcomes = [
            o for n, _lat, o in stack.remote_monitors["s0_front"].latencies
            if 9 <= n <= 16
        ]
        assert Outcome.RECOVERED in outcomes

    def test_manual_reset_leaves_safe(self):
        stack = build_stack()
        manager = GracefulDegradationManager(stack)
        manager._enter_safe("test")
        assert manager.mode is DegradationMode.SAFE
        manager.reset()
        assert manager.mode is DegradationMode.NORMAL
        assert manager.violation_count == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            EscalationPolicy(degrade_after_violations=0)
        with pytest.raises(ValueError):
            EscalationPolicy(degrade_after_violations=5,
                             safe_after_violations=2)
        with pytest.raises(ValueError):
            EscalationPolicy(recover_after_clean=0)
        with pytest.raises(ValueError):
            EscalationPolicy(safe_after_consecutive_recoveries=0)

    def test_prolonged_stale_service_escalates(self):
        """Recovery masks misses; masking for too long is itself unsafe."""
        stack = build_stack()
        LinkPartition(["link_front", "link_rear"], 8, 34).arm(stack)
        manager = GracefulDegradationManager(
            stack,
            policy=EscalationPolicy(safe_after_violations=10**6,
                                    safe_after_consecutive_recoveries=12),
        )
        manager.start(n_frames=40)
        stack.run(n_frames=40)
        assert manager.mode is DegradationMode.SAFE
        assert any("stale" in reason
                   for _t, _o, new, reason in manager.transitions
                   if new is DegradationMode.SAFE)


class TestMonitorWatchdog:
    def test_watchdog_arms_cold_monitor(self):
        """A sensor silent from boot never produces the first sample the
        monitor needs to arm itself; the watchdog closes that gap."""
        stack = build_stack()
        SilentSensor("front", 0, 10).arm(stack)
        watchdog = MonitorWatchdog(stack)
        watchdog.start(until_ns=36 * stack.config.period)
        stack.run(n_frames=40)
        assert any(seg == "s0_front" for _t, seg, _n in watchdog.rearms)
        boot_outcomes = [
            o for n, _lat, o in stack.remote_monitors["s0_front"].latencies
            if n <= 10
        ]
        assert Outcome.MISS in boot_outcomes

    def test_without_watchdog_boot_silence_is_invisible(self):
        stack = build_stack()
        SilentSensor("front", 0, 10).arm(stack)
        truth = GroundTruthRecorder(stack)
        stack.run(n_frames=40)
        monitor = stack.remote_monitors["s0_front"]
        assert all(n > 10 for n, _lat, _o in monitor.latencies)
        for runtime in stack.chain_runtimes.values():
            runtime.advance_window(39)
        report = check_completeness(stack, truth, 2, 36)
        assert not report.passed  # the violations exist, silently

    def test_watchdog_respects_until(self):
        stack = build_stack()
        SilentSensor("front", 0, 39).arm(stack)
        until = 10 * stack.config.period
        watchdog = MonitorWatchdog(stack)
        watchdog.start(until_ns=until)
        stack.run(n_frames=40)
        assert watchdog.rearms
        assert all(t < until for t, _seg, _n in watchdog.rearms)
