"""The tracing-overhead A/B gate: replica fidelity and verdict logic."""

from repro.bench.tracing_gate import (
    GateResult,
    _BaselineSim,
    _drive,
    run_gate,
)
from repro.sim import Simulator


class TestBaselineReplica:
    def test_replica_matches_real_kernel_semantics(self):
        n = 500
        replica = _BaselineSim()
        real = Simulator()
        assert _drive(replica, n) == _drive(real, n) == n
        assert replica.now == real.now == n - 1

    def test_replica_honours_cancellation(self):
        sim = _BaselineSim()
        fired = []
        keep = sim.schedule_at(1, fired.append, "keep")
        sim.schedule_at(2, fired.append, "dropped").cancel()
        assert sim.run() == 1
        assert fired == ["keep"]
        assert not keep.cancelled


class TestGate:
    def test_gate_runs_and_reports(self):
        result = run_gate(trials=3, n_events=2000, threshold=0.5)
        assert isinstance(result, GateResult)
        assert result.baseline_median_ns > 0
        assert result.guarded_median_ns > 0
        assert result.recorder_median_ns > 0
        text = result.render()
        assert "pre-tracing replica" in text
        assert ("PASS" in text) == result.passed
        # The disabled path must at the very least not be catastrophically
        # slower than the replica; the tight 3% bound is enforced by the
        # dedicated CI gate where trial counts are higher.
        assert result.disabled_overhead < 0.5

    def test_verdict_threshold_boundary(self):
        kwargs = dict(
            trials=1, n_events=1, baseline_median_ns=100,
            guarded_median_ns=103, recorder_median_ns=110,
            disabled_overhead=0.03, enabled_overhead=0.10,
        )
        assert GateResult(threshold=0.03, **kwargs).passed
        assert not GateResult(threshold=0.029, **kwargs).passed
