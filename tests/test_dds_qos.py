"""Unit tests for QoS profiles and topic/sample plumbing."""

import numpy as np
import pytest

from repro.dds import QosProfile, ReliabilityKind, Sample, Topic
from repro.dds.qos import HistoryKind
from repro.sim import msec


class TestQosProfile:
    def test_defaults(self):
        qos = QosProfile()
        assert qos.reliability is ReliabilityKind.BEST_EFFORT
        assert qos.history is HistoryKind.KEEP_LAST
        assert qos.deadline is None

    def test_reliable_reader_rejects_best_effort_writer(self):
        reader_qos = QosProfile(reliability=ReliabilityKind.RELIABLE)
        writer_qos = QosProfile(reliability=ReliabilityKind.BEST_EFFORT)
        assert not reader_qos.compatible_with(writer_qos)

    def test_best_effort_reader_accepts_reliable_writer(self):
        reader_qos = QosProfile(reliability=ReliabilityKind.BEST_EFFORT)
        writer_qos = QosProfile(reliability=ReliabilityKind.RELIABLE)
        assert reader_qos.compatible_with(writer_qos)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"history_depth": 0},
            {"deadline": 0},
            {"lifespan": -1},
            {"max_retransmits": -1},
            {"retransmit_delay": -1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            QosProfile(**kwargs)

    def test_profile_is_frozen(self):
        qos = QosProfile()
        with pytest.raises(AttributeError):
            qos.history_depth = 5


class TestTopic:
    def test_default_size_for_bytes(self):
        topic = Topic("t")
        assert topic.serialized_size(b"12345") == 5 + 64

    def test_default_size_for_numpy(self):
        topic = Topic("t")
        data = np.zeros((100, 4), dtype=np.float32)
        assert topic.serialized_size(data) == 1600 + 64

    def test_custom_size_fn(self):
        topic = Topic("t", size_fn=lambda data: 42)
        assert topic.serialized_size("anything") == 42

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Topic("")


class TestSample:
    def test_size_delegates_to_topic(self):
        topic = Topic("t", size_fn=lambda data: 1000)
        sample = Sample(topic=topic, data=None, source_timestamp=0, sequence_number=0)
        assert sample.size_bytes == 1000

    def test_uids_are_unique(self):
        topic = Topic("t")
        a = Sample(topic=topic, data=None, source_timestamp=0, sequence_number=0)
        b = Sample(topic=topic, data=None, source_timestamp=0, sequence_number=1)
        assert a.uid != b.uid
