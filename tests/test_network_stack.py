"""Unit tests for the NIC/ksoftirq receive path."""

import pytest

from repro.network import Frame, Link, NetworkStack
from repro.sim import Compute, Ecu, Simulator, msec, sec, usec


def make_ecu(n_cores=2):
    sim = Simulator(seed=1)
    ecu = Ecu(sim, "ecu2", n_cores=n_cores)
    return sim, ecu


class TestDelivery:
    def test_frame_reaches_registered_handler(self):
        sim, ecu = make_ecu()
        stack = NetworkStack(ecu, per_frame_cost=usec(10), per_byte_cost=0)
        received = []
        stack.register_port("topic/points", lambda f: received.append((f.payload, sim.now)))
        frame = Frame(payload="pc", size_bytes=100, src="ecu1", dst="ecu2")
        sim.schedule_at(msec(1), stack.deliver, "topic/points", frame)
        sim.run(until=msec(2))
        assert received == [("pc", msec(1) + usec(10))]

    def test_per_byte_cost_applied(self):
        sim, ecu = make_ecu()
        stack = NetworkStack(ecu, per_frame_cost=0, per_byte_cost=1.0)
        received = []
        stack.register_port("p", lambda f: received.append(sim.now))
        frame = Frame(payload=None, size_bytes=500, src="a", dst="b")
        sim.schedule_at(msec(1), stack.deliver, "p", frame)
        sim.run(until=msec(2))
        assert received == [msec(1) + 500]

    def test_unregistered_port_frame_is_dropped_silently(self):
        sim, ecu = make_ecu()
        stack = NetworkStack(ecu)
        frame = Frame(payload=None, size_bytes=10, src="a", dst="b")
        sim.schedule_at(msec(1), stack.deliver, "nowhere", frame)
        sim.run(until=msec(2))
        assert stack.frames_processed == 1

    def test_duplicate_port_registration_rejected(self):
        sim, ecu = make_ecu()
        stack = NetworkStack(ecu)
        stack.register_port("p", lambda f: None)
        with pytest.raises(ValueError):
            stack.register_port("p", lambda f: None)

    def test_unregister_then_reregister(self):
        sim, ecu = make_ecu()
        stack = NetworkStack(ecu)
        stack.register_port("p", lambda f: None)
        stack.unregister_port("p")
        stack.register_port("p", lambda f: None)


class TestScheduling:
    def test_ksoftirq_delayed_by_higher_priority_load(self):
        """With all cores occupied by higher-priority work, frame
        processing waits -- receive latency includes scheduling delay."""
        sim, ecu = make_ecu(n_cores=1)
        stack = NetworkStack(ecu, ksoftirq_priority=50, per_frame_cost=usec(10))
        received = []
        stack.register_port("p", lambda f: received.append(sim.now))

        def hog(_):
            yield Compute(msec(10))

        # Higher priority than ksoftirq: occupies the only core to 10ms.
        ecu.spawn("hog", hog, priority=60)
        frame = Frame(payload=None, size_bytes=0, src="a", dst="b")
        sim.schedule_at(msec(1), stack.deliver, "p", frame)
        sim.run(until=msec(20))
        assert received == [msec(10) + usec(10)]

    def test_ksoftirq_preempts_lower_priority_work(self):
        sim, ecu = make_ecu(n_cores=1)
        stack = NetworkStack(ecu, ksoftirq_priority=90, per_frame_cost=usec(10))
        received = []
        stack.register_port("p", lambda f: received.append(sim.now))

        def background(_):
            yield Compute(msec(10))

        ecu.spawn("bg", background, priority=10)
        frame = Frame(payload=None, size_bytes=0, src="a", dst="b")
        sim.schedule_at(msec(1), stack.deliver, "p", frame)
        sim.run(until=msec(20))
        assert received == [msec(1) + usec(10)]

    def test_frames_processed_in_arrival_order(self):
        sim, ecu = make_ecu()
        stack = NetworkStack(ecu, per_frame_cost=usec(5))
        order = []
        stack.register_port("p", lambda f: order.append(f.payload))
        for i in range(5):
            frame = Frame(payload=i, size_bytes=0, src="a", dst="b")
            sim.schedule_at(msec(1) + i, stack.deliver, "p", frame)
        sim.run(until=msec(5))
        assert order == [0, 1, 2, 3, 4]


class TestEndToEnd:
    def test_link_to_stack_pipeline(self):
        sim = Simulator(seed=3)
        ecu = Ecu(sim, "ecu2", n_cores=2)
        stack = NetworkStack(ecu, per_frame_cost=usec(20), per_byte_cost=0)
        link = Link(sim, "eth", base_latency=usec(100), bandwidth_bps=1e9)
        received = []
        stack.register_port("points", lambda f: received.append(sim.now))
        frame = Frame(payload="x", size_bytes=1250, src="ecu1", dst="ecu2")
        link.transmit(frame, lambda f: stack.deliver("points", f))
        sim.run(until=msec(1))
        # 10us serialization + 100us link + 20us ksoftirq processing.
        assert received == [usec(130)]
