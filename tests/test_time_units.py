"""Time-unit helpers: rounding semantics and formatting edge cases.

The duration constructors round **half away from zero** -- not Python's
default banker's rounding, which would map both ``0.5`` and ``-0.5`` to
``0``: a half-nanosecond duration would silently vanish and negative
clock offsets would round differently from their positive mirrors.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.kernel import (
    NS_PER_MS,
    NS_PER_S,
    NS_PER_US,
    fmt_time,
    msec,
    nsec,
    sec,
    usec,
)


class TestHalfAwayRounding:
    def test_positive_half_rounds_up(self):
        assert nsec(0.5) == 1
        assert nsec(1.5) == 2
        assert nsec(2.5) == 3  # banker's rounding would give 2

    def test_negative_half_rounds_away_from_zero(self):
        assert nsec(-0.5) == -1
        assert nsec(-1.5) == -2
        assert nsec(-2.5) == -3  # banker's rounding would give -2

    def test_symmetry(self):
        for value in (0.5, 1.5, 2.5, 3.49, 3.51, 1e6 + 0.5):
            assert nsec(-value) == -nsec(value)

    def test_sub_half_truncates_toward_zero(self):
        assert nsec(0.49) == 0
        assert nsec(-0.49) == 0

    def test_half_nanosecond_at_every_unit(self):
        # 0.5 ns expressed in each unit must survive as 1 ns.
        assert nsec(0.5) == 1
        assert usec(0.0005) == 1
        assert msec(0.0000005) == 1
        assert sec(0.0000000005) == 1
        assert usec(-0.0005) == -1
        assert msec(-0.0000005) == -1
        assert sec(-0.0000000005) == -1

    @given(value=st.integers(min_value=-10**9, max_value=10**9))
    def test_integers_pass_through(self, value):
        assert nsec(value) == value

    @given(value=st.floats(min_value=-1e6, max_value=1e6,
                           allow_nan=False, allow_infinity=False))
    def test_within_half_ns_of_input(self, value):
        assert abs(nsec(value) - value) <= 0.5


class TestUnitConversions:
    @pytest.mark.parametrize(
        "fn,factor",
        [(usec, NS_PER_US), (msec, NS_PER_MS), (sec, NS_PER_S)],
    )
    def test_integral_values_scale_exactly(self, fn, factor):
        for value in (0, 1, 3, 250, -1, -17):
            assert fn(value) == value * factor

    def test_round_trip_through_smaller_units(self):
        # 1.5 ms == 1500 us == 1_500_000 ns, whichever constructor is used.
        assert msec(1.5) == usec(1500) == nsec(1_500_000)
        assert sec(0.25) == msec(250) == usec(250_000)
        assert msec(-1.5) == usec(-1500)

    def test_fractional_ns_boundaries(self):
        assert usec(0.0004) == 0   # 0.4 ns, below the half
        assert usec(0.0006) == 1   # 0.6 ns, above the half
        assert msec(0.9999995) == NS_PER_MS  # rounds up to exactly 1 ms


class TestFmtTime:
    def test_unit_selection(self):
        assert fmt_time(5) == "5ns"
        assert fmt_time(usec(3)) == "3.000us"
        assert fmt_time(msec(42)) == "42.000ms"
        assert fmt_time(sec(2)) == "2.000000s"

    def test_boundaries(self):
        assert fmt_time(NS_PER_US - 1) == "999ns"
        assert fmt_time(NS_PER_US) == "1.000us"
        assert fmt_time(NS_PER_MS) == "1.000ms"
        assert fmt_time(NS_PER_S) == "1.000000s"

    def test_negative_values_keep_their_unit(self):
        # abs() picks the unit, so -1 ms renders as ms, not ns.
        assert fmt_time(-5) == "-5ns"
        assert fmt_time(-NS_PER_MS) == "-1.000ms"
        assert fmt_time(-NS_PER_S) == "-1.000000s"

    def test_zero(self):
        assert fmt_time(0) == "0ns"

    @given(t=st.integers(min_value=-10**12, max_value=10**12))
    def test_always_renders_with_unit_suffix(self, t):
        rendered = fmt_time(t)
        assert rendered.endswith(("ns", "us", "ms", "s"))
        # The numeric part parses back.
        for suffix in ("ns", "us", "ms", "s"):
            if rendered.endswith(suffix):
                float(rendered[: -len(suffix)])
                break
