"""Regression tests for two robustness fixes:

1. schema evolution -- snapshot/restore rejects unknown schema versions
   with a clear :class:`SchemaVersionError`, and tolerates unknown
   *extra* fields (additive evolution) with a warning, never a crash;
2. sequence continuity -- duplicates and late-reordered records must
   never inflate gap counts or heartbeat staleness (the at-least-once
   uplink makes both arrivals routine, not exceptional).
"""

import json
import warnings

import pytest

from repro.telemetry.records import (
    RecordKind,
    SchemaVersionError,
    TelemetryRecord,
    WIRE_SCHEMA,
    decode_stream,
)
from repro.telemetry.store import (
    MAX_TRACKED_MISSING,
    ChainStateStore,
    StoreConfig,
)


def _segment(source, seq, latency=10, ts=None):
    return TelemetryRecord(
        kind=RecordKind.SEGMENT, source=source, chain="c", segment="c/s0",
        activation=seq, latency_ns=latency, verdict="ok",
        timestamp_ns=seq * 100 if ts is None else ts, seq=seq,
    )


class TestSchemaVersioning:
    def test_unknown_snapshot_schema_raises_clearly(self):
        snapshot = ChainStateStore().snapshot()
        snapshot["schema"] = "repro-telemetry-store/99"
        with pytest.raises(SchemaVersionError) as err:
            ChainStateStore.restore(snapshot)
        message = str(err.value)
        assert "repro-telemetry-store/99" in message
        assert "repro-telemetry-store/1" in message
        assert err.value.found == "repro-telemetry-store/99"
        # Still a ValueError: existing except-clauses keep working.
        assert isinstance(err.value, ValueError)

    def test_missing_schema_field_raises_not_keyerror(self):
        snapshot = ChainStateStore().snapshot()
        del snapshot["schema"]
        with pytest.raises(SchemaVersionError):
            ChainStateStore.restore(snapshot)

    def test_unknown_stream_schema_raises(self):
        text = json.dumps({"schema": "repro-telemetry/42"}) + "\n"
        with pytest.raises(SchemaVersionError) as err:
            list(decode_stream(text))
        assert err.value.supported == WIRE_SCHEMA

    def test_unknown_extra_fields_warn_but_restore(self):
        store = ChainStateStore(StoreConfig(mk_by_chain={"c": (2, 10)}))
        for i in range(8):
            store.apply(_segment("v0", i))
        snapshot = store.snapshot()
        # A future build added fields at several levels: tolerate all.
        snapshot["future_top_level"] = {"x": 1}
        snapshot["config"]["future_knob"] = 7
        snapshot["sources"]["v0"]["future_counter"] = 3
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            restored = ChainStateStore.restore(
                json.loads(json.dumps(snapshot))
            )
        messages = [str(w.message) for w in caught]
        assert any("future_top_level" in m for m in messages)
        assert any("future_knob" in m for m in messages)
        assert any("future_counter" in m for m in messages)
        # The known state survived untouched.
        assert restored.sources["v0"].records == 8
        assert restored.chain_summary() == store.chain_summary()

    def test_clean_snapshot_restores_without_warnings(self):
        store = ChainStateStore()
        store.apply(_segment("v0", 0))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ChainStateStore.restore(store.snapshot())


class TestSequenceContinuity:
    def test_duplicate_never_inflates_gap_count(self):
        store = ChainStateStore()
        for seq in (0, 1, 2):
            store.apply(_segment("v0", seq))
        outcome = store.apply(_segment("v0", 1))
        source = store.sources["v0"]
        assert outcome.duplicate is True
        assert outcome.seq_gap == 0
        assert source.seq_gaps == 0
        assert source.duplicates == 1
        assert source.reorders == 0
        assert source.last_seq == 2

    def test_duplicate_never_regresses_heartbeat_staleness(self):
        store = ChainStateStore()
        store.apply(_segment("v0", 0, ts=1_000))
        store.apply(_segment("v0", 1, ts=2_000))
        # A retransmitted (old) record arrives late: its stale
        # timestamp must not rewind liveness.
        store.apply(_segment("v0", 0, ts=1_000))
        assert store.sources["v0"].last_seen_ns == 2_000

    def test_late_reorder_heals_the_gap_exactly_once(self):
        store = ChainStateStore()
        store.apply(_segment("v0", 0))
        gap = store.apply(_segment("v0", 2))
        assert gap.seq_gap == 1
        source = store.sources["v0"]
        assert source.seq_gaps == 1

        healed = store.apply(_segment("v0", 1))
        assert healed.seq_gap == 0
        assert healed.duplicate is False
        assert source.seq_gaps == 0
        assert source.reorders == 1

        # The same late record again is a duplicate, NOT another heal:
        # gap statistics must not go negative or oscillate.
        again = store.apply(_segment("v0", 1))
        assert again.duplicate is True
        assert source.seq_gaps == 0
        assert source.reorders == 1
        assert source.duplicates == 1

    def test_leading_gap_counted_and_healable(self):
        store = ChainStateStore()
        # First-ever record already skipped seqs 0 and 1.
        first = store.apply(_segment("v0", 2))
        assert first.seq_gap == 2
        store.apply(_segment("v0", 0))
        assert store.sources["v0"].seq_gaps == 1
        assert store.sources["v0"].reorders == 1

    def test_missing_set_is_bounded_but_count_is_exact(self):
        store = ChainStateStore()
        store.apply(_segment("v0", 0))
        width = MAX_TRACKED_MISSING + 500
        outcome = store.apply(_segment("v0", width + 1))
        source = store.sources["v0"]
        assert outcome.seq_gap == width
        assert source.seq_gaps == width
        assert len(source.missing) == MAX_TRACKED_MISSING
        # An evicted (too-old) gap member cannot heal: it is a
        # duplicate now -- the count stays honest either way.
        old = store.apply(_segment("v0", 1))
        assert old.duplicate is True
        assert source.seq_gaps == width
        # A tracked member still heals.
        store.apply(_segment("v0", width))
        assert source.seq_gaps == width - 1

    def test_continuity_state_survives_snapshot_round_trip(self):
        store = ChainStateStore()
        store.apply(_segment("v0", 0))
        store.apply(_segment("v0", 3))  # gap {1, 2}
        store.apply(_segment("v0", 3))  # duplicate
        restored = ChainStateStore.restore(
            json.loads(json.dumps(store.snapshot()))
        )
        source = restored.sources["v0"]
        assert source.duplicates == 1
        assert source.missing == {1, 2}
        # The restored store heals exactly like the live one would.
        live = store.apply(_segment("v0", 1))
        replica = restored.apply(_segment("v0", 1))
        assert (live.seq_gap, live.duplicate) == (
            replica.seq_gap, replica.duplicate
        )
        assert restored.sources["v0"].seq_gaps == store.sources["v0"].seq_gaps
