"""Golden-trace determinism: the simulator's behaviour is frozen.

Each scenario in ``tests/golden/golden_digests.json`` pins a sha256
digest of the full event trace and of the per-segment latency series of
a short perception-stack run.  Any change that alters event order,
timestamps, RNG draws or latency bookkeeping -- however subtly -- flips
a digest and fails here.  Performance work must keep these green: the
optimizations are only legal because they are bit-identical.

Regenerate (after an *intentional* behaviour change) with::

    PYTHONPATH=src python -c "
    import json; from repro.tracing.golden import *
    print(json.dumps({'schema': 'repro-golden/1',
                      'n_frames': GOLDEN_FRAMES,
                      'scenarios': compute_golden_digests()},
                     indent=2, sort_keys=True))"
"""

import json
from pathlib import Path

import pytest

from repro.tracing.golden import (
    GOLDEN_FRAMES,
    golden_scenarios,
    stack_fingerprint,
)

GOLDEN_FILE = Path(__file__).parent / "golden" / "golden_digests.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    data = json.loads(GOLDEN_FILE.read_text())
    assert data["schema"] == "repro-golden/1"
    return data


def test_golden_file_covers_all_scenarios(golden):
    assert set(golden["scenarios"]) == set(golden_scenarios())
    assert golden["n_frames"] == GOLDEN_FRAMES
    for name, entry in golden["scenarios"].items():
        assert set(entry) == {"trace", "latencies", "final_time"}, name
        assert len(entry["trace"]) == 64, name
        assert len(entry["latencies"]) == 64, name


@pytest.mark.parametrize("scenario", sorted(golden_scenarios()))
def test_golden_digest_matches(golden, scenario):
    stack = golden_scenarios()[scenario]()
    stack.run(n_frames=golden["n_frames"])
    fingerprint = stack_fingerprint(stack)
    assert fingerprint == golden["scenarios"][scenario], (
        f"{scenario}: simulation diverged from the golden trace -- "
        "a change altered event order, timing or RNG draws"
    )


def test_reruns_are_bit_identical():
    """Two in-process runs of the same scenario agree exactly."""
    factory = golden_scenarios()["benign_seed1"]
    fingerprints = []
    for _ in range(2):
        stack = factory()
        stack.run(n_frames=GOLDEN_FRAMES)
        fingerprints.append(stack_fingerprint(stack))
    assert fingerprints[0] == fingerprints[1]
