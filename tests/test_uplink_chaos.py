"""Chaos harness: scenario sweep invariants, determinism, CLI."""

import json

import pytest

from repro.telemetry.uplink.chaos import (
    ChaosConfig,
    ChaosDriver,
    ChaosScenario,
    CrashEvent,
    default_scenarios,
    main,
    run_chaos,
)
from repro.telemetry.uplink.transport import ChannelFaultPlan


def _quick_config(**kwargs):
    kwargs.setdefault("vehicles", 2)
    kwargs.setdefault("frames", 8)
    kwargs.setdefault("fsync", "never")
    return ChaosConfig(**kwargs)


def _by_name(name):
    return next(s for s in default_scenarios() if s.name == name)


class TestScenarios:
    def test_default_sweep_covers_every_fault_class_and_crash_points(self):
        scenarios = {s.name: s for s in default_scenarios()}
        for fault in ("drop", "duplicate", "reorder", "corrupt", "partition"):
            assert fault in scenarios
        vehicle = [
            e for s in scenarios.values() for e in s.crashes
            if e.side == "vehicle"
        ]
        server = [
            e for s in scenarios.values() for e in s.crashes
            if e.side == "server"
        ]
        assert len({e.step for e in vehicle}) >= 3
        assert len({e.step for e in server}) >= 3
        assert any(e.torn_tail for e in vehicle)
        assert scenarios["eviction"].expect_evictions

    def test_full_quick_sweep_passes(self, tmp_path):
        report = run_chaos(
            _quick_config(), default_scenarios(), workdir=tmp_path
        )
        failures = [s["name"] for s in report["scenarios"] if not s["ok"]]
        assert report["ok"], f"failing scenarios: {failures}"
        assert len(report["scenarios"]) == len(default_scenarios())

    def test_ledger_balances_under_mixed_chaos(self, tmp_path):
        result = ChaosDriver(
            _by_name("chaos_mixed"), _quick_config(), tmp_path
        ).run()
        assert result.ok
        for source, entry in result.ledger.items():
            assert entry["balanced"], (source, entry)
            assert entry["offered"] == (
                entry["acked"] + entry["spooled"] + entry["evicted"]
            )

    def test_eviction_scenario_counts_losses(self, tmp_path):
        result = ChaosDriver(
            _by_name("eviction"), _quick_config(), tmp_path
        ).run()
        assert result.ok
        evicted = sum(e["evicted"] for e in result.ledger.values())
        assert evicted > 0
        # Evicted records are the only ones missing from the fleet side.
        for entry in result.ledger.values():
            assert entry["spooled"] == 0
            assert entry["acked"] + entry["evicted"] == entry["offered"]

    def test_crash_scenarios_actually_crash_and_recover(self, tmp_path):
        # Enough frames that the spool is still busy at every crash
        # point -- otherwise the torn-tail kill has nothing to tear.
        vehicle = ChaosDriver(
            _by_name("vehicle_crash"), _quick_config(frames=24),
            tmp_path / "v",
        ).run()
        assert vehicle.ok
        assert vehicle.recoveries["vehicles"], "no vehicle ever recovered"
        assert any(
            entry["truncated_lines"] > 0
            for entry in vehicle.recoveries["vehicles"].values()
        ), "the torn-tail crash point never tore a tail"
        server = ChaosDriver(
            _by_name("server_crash"), _quick_config(), tmp_path / "s"
        ).run()
        assert server.ok
        assert server.recoveries["server"] == 3

    def test_sweep_is_deterministic(self, tmp_path):
        scenario = _by_name("chaos_mixed")
        first = ChaosDriver(scenario, _quick_config(), tmp_path / "a").run()
        second = ChaosDriver(scenario, _quick_config(), tmp_path / "b").run()
        assert first.to_json() == second.to_json()

    def test_unhealable_fault_is_detected_not_masked(self, tmp_path):
        """Sanity that the checks can fail: a permanent one-way
        partition must show up as non-convergence, not a pass."""
        scenario = ChaosScenario(
            name="dead_uplink",
            up=ChannelFaultPlan(partitions=((0, 10_000),)),
            check_digest=False,
        )
        result = ChaosDriver(
            scenario, _quick_config(max_steps=120), tmp_path
        ).run()
        assert not result.ok
        assert any(
            c["name"] == "converged" and not c["ok"] for c in result.checks
        )


class TestCli:
    def test_cli_smoke_writes_report(self, tmp_path, capsys):
        report_path = tmp_path / "out" / "chaos.json"
        code = main([
            "--quick", "--frames", "8",
            "--scenario", "baseline", "--scenario", "drop",
            "--report", str(report_path), "--dir", str(tmp_path / "work"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ALL PASS" in out
        report = json.loads(report_path.read_text())
        assert report["schema"] == "repro-chaos-report/1"
        assert [s["name"] for s in report["scenarios"]] == ["baseline", "drop"]

    def test_cli_list_and_unknown_scenario(self, capsys):
        assert main(["--list"]) == 0
        assert "eviction" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["--scenario", "no-such-scenario"])


class TestCrashEventValidation:
    def test_rejects_bad_side_and_steps(self):
        with pytest.raises(ValueError):
            CrashEvent(step=1, side="sideways")
        with pytest.raises(ValueError):
            CrashEvent(step=-1, side="server")
        with pytest.raises(ValueError):
            CrashEvent(step=1, side="server", down_for=0)
