"""Source audit: no stochastic model may use numpy's global RNG.

Determinism of the simulation (and of the fault campaign built on it)
requires every random draw to come from an explicitly seeded generator
-- the simulator's named streams or an ``np.random.Generator`` passed
in.  Calls through the global ``np.random.*`` functions (``seed``,
``normal``, ``rand``, ...) share hidden mutable state across the whole
process and silently break run-to-run reproducibility, so this test
bans them from ``src/``.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: np.random.<something> that is NOT one of the explicit-generator APIs.
FORBIDDEN = re.compile(
    r"\bnp\.random\.(?!default_rng\b|Generator\b|SeedSequence\b)\w+"
)


def test_no_global_numpy_rng_in_src():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            match = FORBIDDEN.search(code)
            if match:
                offenders.append(
                    f"{path.relative_to(SRC)}:{lineno}: {match.group(0)}"
                )
    assert not offenders, (
        "global numpy RNG usage found (use sim.rng(stream) or a passed "
        "np.random.Generator):\n" + "\n".join(offenders)
    )


def test_no_stdlib_random_module_in_src():
    """The stdlib ``random`` module is the same trap."""
    offenders = []
    pattern = re.compile(r"^\s*(import random\b|from random import)")
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.search(line):
                offenders.append(f"{path.relative_to(SRC)}:{lineno}")
    assert not offenders, (
        "stdlib random imported in src (use seeded generators):\n"
        + "\n".join(offenders)
    )
