"""Source audit: no stochastic model may use numpy's global RNG.

Determinism of the simulation (and of the fault campaign built on it)
requires every random draw to come from an explicitly seeded generator
-- the simulator's named streams or an ``np.random.Generator`` passed
in.  Calls through the global ``np.random.*`` functions (``seed``,
``normal``, ``rand``, ...) share hidden mutable state across the whole
process and silently break run-to-run reproducibility, so this test
bans them from ``src/``.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: np.random.<something> that is NOT one of the explicit-generator APIs.
FORBIDDEN = re.compile(
    r"\bnp\.random\.(?!default_rng\b|Generator\b|SeedSequence\b)\w+"
)


def test_no_global_numpy_rng_in_src():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            match = FORBIDDEN.search(code)
            if match:
                offenders.append(
                    f"{path.relative_to(SRC)}:{lineno}: {match.group(0)}"
                )
    assert not offenders, (
        "global numpy RNG usage found (use sim.rng(stream) or a passed "
        "np.random.Generator):\n" + "\n".join(offenders)
    )


def test_no_stdlib_random_module_in_src():
    """The stdlib ``random`` module is the same trap."""
    offenders = []
    pattern = re.compile(r"^\s*(import random\b|from random import)")
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.search(line):
                offenders.append(f"{path.relative_to(SRC)}:{lineno}")
    assert not offenders, (
        "stdlib random imported in src (use seeded generators):\n"
        + "\n".join(offenders)
    )


def test_no_wall_clock_in_src():
    """Simulated time is integer nanoseconds from the kernel; reading
    the host's wall clock (``time.time``, ``datetime.now``/``utcnow``)
    from model code would leak nondeterminism into traces and records.
    (``perf_counter_ns`` in the bench harness measures the host on
    purpose and is allowed.)
    """
    pattern = re.compile(r"\btime\.time\(|\bdatetime\.now\(|\butcnow\(")
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            if pattern.search(code):
                offenders.append(f"{path.relative_to(SRC)}:{lineno}")
    assert not offenders, (
        "wall-clock reads found in src (use sim.now / perf_counter_ns):\n"
        + "\n".join(offenders)
    )


def test_no_unseeded_generators_in_src_or_tests():
    """``np.random.default_rng()`` without a seed re-randomizes every
    run; both the models and the tests must pass an explicit seed.
    Stdlib ``random`` in tests must go through ``random.Random(seed)``.
    """
    tests = Path(__file__).resolve().parent
    argless = re.compile(r"default_rng\(\s*\)")
    bare_stdlib = re.compile(
        r"\brandom\.(random|randint|choice|shuffle|sample|seed)\("
    )
    this_file = Path(__file__).resolve()
    offenders = []
    for root in (SRC, tests):
        for path in sorted(root.rglob("*.py")):
            if path.resolve() == this_file:
                continue  # the patterns above appear here as text
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                code = line.split("#", 1)[0]
                if argless.search(code) or bare_stdlib.search(code):
                    offenders.append(f"{path.name}:{lineno}: {code.strip()}")
    assert not offenders, (
        "unseeded RNG use found (pass an explicit seed):\n"
        + "\n".join(offenders)
    )
