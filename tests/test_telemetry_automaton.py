"""Equivalence of the bit-packed (m,k) automaton with the reference.

The telemetry store replaces :class:`repro.core.weakly_hard.MissWindow`
(deque of the last k outcomes) with the O(1)-memory bit-packed
:class:`repro.telemetry.automata.MKAutomaton`.  The replacement is only
licensed by record-for-record equivalence, proven here over random
verdict streams.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weakly_hard import MKConstraint, MissWindow
from repro.telemetry.automata import MKAutomaton

miss_sequences = st.lists(st.booleans(), max_size=80)


@st.composite
def mk_pairs(draw):
    k = draw(st.integers(min_value=1, max_value=16))
    m = draw(st.integers(min_value=0, max_value=k))
    return m, k


class TestEquivalenceWithMissWindow:
    @given(mk=mk_pairs(), misses=miss_sequences)
    @settings(max_examples=300, deadline=None)
    def test_record_for_record(self, mk, misses):
        reference = MissWindow(MKConstraint(*mk))
        automaton = MKAutomaton(mk)
        for i, miss in enumerate(misses):
            assert automaton.record(miss) == reference.record(miss), f"step {i}"
        assert automaton.violations == reference.violations
        assert automaton.total == reference.total
        assert automaton.total_misses == reference.total_misses
        assert automaton.misses_in_window == reference.misses_in_window
        assert automaton.violated == reference.violated

    @given(mk=mk_pairs(), misses=miss_sequences)
    @settings(max_examples=200, deadline=None)
    def test_window_bits_match_reference_window(self, mk, misses):
        reference = MissWindow(MKConstraint(*mk))
        automaton = MKAutomaton(mk)
        for miss in misses:
            reference.record(miss)
            automaton.record(miss)
        assert automaton.window_bits() == list(reference._window)

    @given(mk=mk_pairs(), misses=miss_sequences)
    @settings(max_examples=200, deadline=None)
    def test_snapshot_restore_continues_identically(self, mk, misses):
        cut = len(misses) // 2
        automaton = MKAutomaton(mk)
        for miss in misses[:cut]:
            automaton.record(miss)
        restored = MKAutomaton.restore(automaton.snapshot())
        for miss in misses[cut:]:
            assert restored.record(miss) == automaton.record(miss)
        assert restored.snapshot() == automaton.snapshot()


class TestMargin:
    def test_margin_counts_down_and_recovers(self):
        automaton = MKAutomaton((2, 4))
        assert automaton.margin == 2
        automaton.record(True)
        assert automaton.margin == 1
        automaton.record(True)
        assert automaton.margin == 0
        # The misses age out of the k=4 window.
        for _ in range(4):
            automaton.record(False)
        assert automaton.margin == 2

    def test_violation_positions_counted_like_reference(self):
        # (1,3): every position whose window holds >1 misses violates.
        automaton = MKAutomaton((1, 3))
        verdicts = [automaton.record(m) for m in [True, True, True, False]]
        assert verdicts == [False, True, True, True]
        assert automaton.violations == 3
        assert automaton.last_violation == 3


class TestValidation:
    def test_rejects_non_constraint(self):
        with pytest.raises(ValueError):
            MKAutomaton("not a constraint")

    def test_rejects_invalid_mk(self):
        with pytest.raises(ValueError):
            MKAutomaton((5, 2))  # m > k
