"""Integration tests for the ROS2-like node/executor layer."""

import pytest

from repro.dds import DdsDomain, Topic
from repro.ros import Node
from repro.sim import Compute, Ecu, Simulator, msec, usec


def make_world():
    sim = Simulator(seed=1)
    ecu = Ecu(sim, "ecu1", n_cores=2)
    domain = DdsDomain(sim, local_latency=usec(10))
    return sim, ecu, domain


class TestPubSub:
    def test_subscription_callback_receives_sample(self):
        sim, ecu, domain = make_world()
        talker = Node(domain, ecu, "talker", priority=10)
        listener = Node(domain, ecu, "listener", priority=9)
        topic = Topic("chatter")
        heard = []
        listener.create_subscription(topic, lambda s: heard.append((s.data, sim.now)))
        pub = talker.create_publisher(topic)
        sim.schedule_at(msec(1), pub.publish, "hi")
        sim.run(until=msec(2))
        assert len(heard) == 1
        assert heard[0][0] == "hi"
        assert heard[0][1] >= msec(1) + usec(10)

    def test_generator_callback_consumes_cpu_time(self):
        sim, ecu, domain = make_world()
        node_a = Node(domain, ecu, "a", priority=10)
        node_b = Node(domain, ecu, "b", priority=9)
        topic = Topic("t")
        done = []

        def heavy_callback(sample):
            yield Compute(msec(5))
            done.append(sim.now)

        node_b.create_subscription(topic, heavy_callback)
        pub = node_a.create_publisher(topic)
        sim.schedule_at(msec(1), pub.publish, "x")
        sim.run(until=msec(10))
        assert len(done) == 1
        assert done[0] >= msec(6)

    def test_pipeline_of_two_nodes(self):
        sim, ecu, domain = make_world()
        stage1 = Node(domain, ecu, "stage1", priority=10)
        stage2 = Node(domain, ecu, "stage2", priority=9)
        t_in = Topic("in")
        t_out = Topic("out")
        sink = Node(domain, ecu, "sink", priority=8)
        results = []

        pub_out = stage1.create_publisher(t_out)

        def relay(sample):
            yield Compute(usec(100))
            pub_out.publish(sample.data * 2)

        stage1.create_subscription(t_in, relay)
        sink.create_subscription(t_out, lambda s: results.append(s.data))
        src = stage2.create_publisher(t_in)
        sim.schedule_at(msec(1), src.publish, 21)
        sim.run(until=msec(5))
        assert results == [42]


class TestExecutorSemantics:
    def test_single_threaded_executor_serializes_callbacks(self):
        """Two subscriptions of one node never run concurrently."""
        sim, ecu, domain = make_world()
        pub_node = Node(domain, ecu, "pub", priority=10)
        work_node = Node(domain, ecu, "worker", priority=9)
        t1, t2 = Topic("t1"), Topic("t2")
        spans = []

        def make_cb(name):
            def cb(sample):
                start = sim.now
                yield Compute(msec(3))
                spans.append((name, start, sim.now))
            return cb

        work_node.create_subscription(t1, make_cb("cb1"))
        work_node.create_subscription(t2, make_cb("cb2"))
        p1 = pub_node.create_publisher(t1)
        p2 = pub_node.create_publisher(t2)
        sim.schedule_at(msec(1), p1.publish, "a")
        sim.schedule_at(msec(1), p2.publish, "b")
        sim.run(until=msec(20))
        assert len(spans) == 2
        (n1, s1, e1), (n2, s2, e2) = spans
        assert e1 <= s2 or e2 <= s1  # no overlap

    def test_queueing_delay_recorded(self):
        sim, ecu, domain = make_world()
        pub_node = Node(domain, ecu, "pub", priority=10)
        work_node = Node(domain, ecu, "worker", priority=9)
        topic = Topic("t")

        def slow(sample):
            yield Compute(msec(5))

        work_node.create_subscription(topic, slow)
        pub = pub_node.create_publisher(topic)
        sim.schedule_at(msec(1), pub.publish, 1)
        sim.schedule_at(msec(1), pub.publish, 2)
        sim.run(until=msec(20))
        assert work_node.executor.callbacks_executed == 2
        assert work_node.executor.max_queueing_delay >= msec(5) - usec(50)

    def test_backlog_counts_waiting_items(self):
        sim, ecu, domain = make_world()
        node = Node(domain, ecu, "n", priority=10)
        # Stall the executor with a callback that sleeps forever by
        # computing a long time; then enqueue more items.
        def long_job():
            yield Compute(msec(100))

        node.executor.enqueue(long_job)
        node.executor.enqueue(lambda: None)
        node.executor.enqueue(lambda: None)
        sim.run(until=msec(1))
        assert node.executor.backlog == 2


class TestCallbackFaultIsolation:
    def test_raising_callback_does_not_kill_executor(self):
        sim, ecu, domain = make_world()
        pub_node = Node(domain, ecu, "pub", priority=10)
        work_node = Node(domain, ecu, "worker", priority=9)
        topic = Topic("t")
        good = []

        def faulty(sample):
            if sample.data == "bad":
                raise RuntimeError("boom")
            good.append(sample.data)

        work_node.create_subscription(topic, faulty)
        pub = pub_node.create_publisher(topic)
        sim.schedule_at(msec(1), pub.publish, "bad")
        sim.schedule_at(msec(2), pub.publish, "ok")
        sim.run(until=msec(5))
        assert good == ["ok"]
        assert work_node.executor.callback_errors == 1
        assert isinstance(work_node.executor.last_error, RuntimeError)

    def test_raising_generator_callback_isolated(self):
        sim, ecu, domain = make_world()
        pub_node = Node(domain, ecu, "pub", priority=10)
        work_node = Node(domain, ecu, "worker", priority=9)
        topic = Topic("t")
        done = []

        def faulty_gen(sample):
            yield Compute(msec(1))
            if sample.data == "bad":
                raise ValueError("mid-compute failure")
            done.append(sample.data)

        work_node.create_subscription(topic, faulty_gen)
        pub = pub_node.create_publisher(topic)
        sim.schedule_at(msec(1), pub.publish, "bad")
        sim.schedule_at(msec(2), pub.publish, "ok")
        sim.run(until=msec(10))
        assert done == ["ok"]
        assert work_node.executor.callback_errors == 1


class TestRosTimer:
    def test_timer_callback_runs_on_executor(self):
        sim, ecu, domain = make_world()
        node = Node(domain, ecu, "n", priority=10)
        ticks = []
        timer = node.create_timer(msec(10), lambda i: ticks.append((i, sim.now)))
        timer.start()
        sim.run(until=msec(35))
        timer.stop()
        assert [i for i, _ in ticks] == [0, 1, 2, 3]

    def test_timer_delayed_by_busy_executor(self):
        sim, ecu, domain = make_world()
        pub_node = Node(domain, ecu, "pub", priority=10)
        node = Node(domain, ecu, "n", priority=9)
        topic = Topic("t")

        def hog(sample):
            yield Compute(msec(30))

        node.create_subscription(topic, hog)
        ticks = []
        timer = node.create_timer(msec(10), lambda i: ticks.append(sim.now))
        pub = pub_node.create_publisher(topic)
        sim.schedule_at(usec(100), pub.publish, "x")
        timer.start()
        sim.run(until=msec(50))
        timer.stop()
        # Tick 0 fires at t=0 while the executor is still idle; tick 1
        # (nominally 10ms) waits for the 30ms hog callback to finish.
        assert ticks[0] < msec(1)
        assert ticks[1] >= msec(30)


class TestPriorities:
    def test_higher_priority_node_preempts_lower(self):
        sim, ecu, domain = make_world()
        # Single core to force contention.
        ecu_single = Ecu(sim, "single", n_cores=1)
        pub_node = Node(domain, ecu_single, "pub", priority=50)
        hi = Node(domain, ecu_single, "hi", priority=40)
        lo = Node(domain, ecu_single, "lo", priority=20)
        topic = Topic("t")
        done = {}

        def make_cb(name, dur):
            def cb(sample):
                yield Compute(dur)
                done[name] = sim.now
            return cb

        lo.create_subscription(topic, make_cb("lo", msec(10)))
        hi.create_subscription(topic, make_cb("hi", msec(2)))
        pub = pub_node.create_publisher(topic)
        sim.schedule_at(msec(1), pub.publish, "x")
        sim.run(until=msec(30))
        assert done["hi"] < done["lo"]
