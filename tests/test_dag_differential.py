"""Differential identity: the DAG model is a conservative extension.

Every linear scenario re-expressed as a degenerate single-path DAG
(``StackConfig.via_dag`` / ``CampaignConfig.via_dag`` round-trip the
chains through :class:`~repro.core.dag.DagChain`) must produce
**byte-identical** behaviour: golden-trace fingerprints, full
:class:`ScenarioResult` contents (serial and with the ``-j4``
multiprocessing fan-out) and telemetry-store snapshot digests.  Any
divergence means the DAG layer is not actually degenerate on linear
chains.
"""

import dataclasses
import hashlib
import json

import pytest

from repro.experiments.common import interference_governor
from repro.experiments.parallel import run_campaign_parallel
from repro.faults import CampaignConfig, FaultCampaign, default_scenarios
from repro.perception.stack import PerceptionStack, StackConfig
from repro.tracing.golden import GOLDEN_FRAMES, stack_fingerprint

#: Whole module runs multi-second stack/campaign simulations.
pytestmark = pytest.mark.slow

N_FRAMES = 24

#: The golden scenario configurations, parameterized by via_dag.
GOLDEN_CONFIGS = {
    "benign_seed1": lambda via: StackConfig(seed=1, via_dag=via),
    "interference_seed42": lambda via: StackConfig(
        seed=42, ecu2_governor=interference_governor(), via_dag=via
    ),
    "lossy_link_seed7": lambda via: StackConfig(
        seed=7, link_loss=0.08, via_dag=via
    ),
}


def run_fingerprint(config: StackConfig) -> dict:
    stack = PerceptionStack(config)
    stack.run(n_frames=GOLDEN_FRAMES)
    return stack_fingerprint(stack)


@pytest.mark.parametrize("scenario", sorted(GOLDEN_CONFIGS))
def test_golden_fingerprints_identical_via_dag(scenario):
    """Trace, latency and final-time digests are bit-identical."""
    plain = run_fingerprint(GOLDEN_CONFIGS[scenario](False))
    via_dag = run_fingerprint(GOLDEN_CONFIGS[scenario](True))
    assert plain == via_dag, (
        f"{scenario}: degenerate-DAG round-trip changed observable "
        f"behaviour"
    )


def scenario_subset(names):
    registry = {s.name: s for s in default_scenarios()}
    return [registry[n] for n in names]


def result_payload(result):
    """Full ScenarioResult content as comparable plain data."""
    return dataclasses.asdict(result)


class TestScenarioResultIdentity:
    NAMES = ["loss_burst", "latency_spike", "clock_drift"]

    @pytest.fixture(scope="class")
    def serial_plain(self):
        campaign = FaultCampaign(
            scenario_subset(self.NAMES), CampaignConfig(n_frames=N_FRAMES)
        )
        return campaign.run()

    def test_serial_via_dag_identical(self, serial_plain):
        via = FaultCampaign(
            scenario_subset(self.NAMES),
            CampaignConfig(n_frames=N_FRAMES, via_dag=True),
        ).run()
        for a, b in zip(serial_plain.scenarios, via.scenarios):
            assert result_payload(a) == result_payload(b), a.name
        assert serial_plain.render_report() == via.render_report()

    def test_parallel_j4_via_dag_identical(self, serial_plain):
        """The -j4 fan-out with via_dag merges to the same bytes: the
        flag survives the spawn boundary and workers rebuild scenarios
        identically."""
        parallel = run_campaign_parallel(
            self.NAMES,
            config=CampaignConfig(n_frames=N_FRAMES, via_dag=True),
            jobs=4,
        )
        assert [s.name for s in parallel.scenarios] == self.NAMES
        for a, b in zip(serial_plain.scenarios, parallel.scenarios):
            assert result_payload(a) == result_payload(b), a.name
        assert serial_plain.render_report() == parallel.render_report()


def telemetry_store_digest(config: StackConfig, n_frames: int) -> str:
    """Run a stack, replay its records through a fresh telemetry
    service, and hash the exact store snapshot."""
    from repro.telemetry.emitter import replay_stack_records, stack_store_config
    from repro.telemetry.service import ServiceConfig, TelemetryService

    stack = PerceptionStack(config)
    stack.run(n_frames=n_frames)
    service = TelemetryService(ServiceConfig(store=stack_store_config(stack)))
    service.ingest_many(
        replay_stack_records(stack, "differential", n_frames, manager=None)
    )
    service.drain()
    payload = json.dumps(
        service.snapshot(), sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def test_telemetry_store_digests_identical_via_dag():
    plain = telemetry_store_digest(StackConfig(seed=7), GOLDEN_FRAMES)
    via = telemetry_store_digest(
        StackConfig(seed=7, via_dag=True), GOLDEN_FRAMES
    )
    assert plain == via


def test_via_dag_actually_round_trips():
    """Guard against via_dag silently becoming a no-op: the flag must
    route construction through DagChain.from_linear/to_linear."""
    import repro.core.dag as dag_module

    calls = []
    original = dag_module.DagChain.from_linear.__func__

    def counting(cls, chain):
        calls.append(chain.name)
        return original(cls, chain)

    dag_module.DagChain.from_linear = classmethod(counting)
    try:
        PerceptionStack(StackConfig(seed=1, via_dag=True))
    finally:
        dag_module.DagChain.from_linear = classmethod(original)
    assert sorted(calls) == [
        "front_ground", "front_objects", "rear_ground", "rear_objects",
    ]
