"""Relative throughput floors: the bench gate that keeps designed
speedups (windowed ARQ >= 2x stop-and-wait) from silently eroding."""

import pytest

from repro.bench.harness import (
    THROUGHPUT_FLOORS,
    check_throughput_floors,
    validate_suite,
)


def _suite(benchmarks):
    entries = {}
    for name, units_per_s in benchmarks.items():
        entries[name] = {
            "layer": "telemetry", "iterations": 3, "units": 100,
            "unit": "records", "median_ns": 1_000_000, "p95_ns": 1_100_000,
            "min_ns": 900_000, "units_per_s": units_per_s,
        }
    return {"schema": "repro-bench/1", "suite": "e2e",
            "benchmarks": entries}


FLOORS = {"fast": ("slow", 2.0)}


class TestCheckThroughputFloors:
    def test_ratio_above_floor_passes(self):
        report = check_throughput_floors(
            _suite({"slow": 100.0, "fast": 250.0}), floors=FLOORS
        )
        (check,) = report.checks
        assert check.ok
        assert check.ratio == pytest.approx(2.5)
        assert report.passed
        assert "2.50x" in report.render()

    def test_ratio_below_floor_fails(self):
        report = check_throughput_floors(
            _suite({"slow": 100.0, "fast": 150.0}), floors=FLOORS
        )
        assert not report.passed
        assert "BELOW FLOOR" in report.render()

    def test_exactly_at_floor_passes(self):
        report = check_throughput_floors(
            _suite({"slow": 100.0, "fast": 200.0}), floors=FLOORS
        )
        assert report.passed

    def test_floored_bench_absent_is_skipped(self):
        # Old baselines without the new bench stay valid.
        report = check_throughput_floors(
            _suite({"slow": 100.0}), floors=FLOORS
        )
        assert report.checks == []
        assert report.passed

    def test_missing_reference_fails(self):
        # The ratio the floor exists to prove is unmeasurable: fail.
        report = check_throughput_floors(
            _suite({"fast": 250.0}), floors=FLOORS
        )
        (check,) = report.checks
        assert not check.ok
        assert check.ratio is None
        assert not report.passed

    def test_zero_reference_throughput_fails(self):
        report = check_throughput_floors(
            _suite({"slow": 0.0, "fast": 250.0}), floors=FLOORS
        )
        assert not report.passed

    def test_default_floors_pin_the_windowed_uplink(self):
        assert "uplink_roundtrip_windowed" in THROUGHPUT_FLOORS
        reference, required = THROUGHPUT_FLOORS["uplink_roundtrip_windowed"]
        assert reference == "uplink_roundtrip"
        assert required == 2.0

    def test_synthetic_suites_are_schema_valid(self):
        validate_suite(_suite({"slow": 100.0, "fast": 250.0}))
