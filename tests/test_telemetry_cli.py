"""CLI surfaces: subcommand help, README table sync, telemetry command."""

import json
from pathlib import Path

import pytest

from repro.experiments.runner import EXPERIMENTS, SUBCOMMANDS
from repro.experiments.runner import main as runner_main
from repro.telemetry.cli import main as telemetry_main

README = Path(__file__).resolve().parent.parent / "README.md"


class TestSubcommandHelp:
    def test_every_subcommand_has_a_description(self):
        assert set(SUBCOMMANDS) == set(EXPERIMENTS) | {
            "adapt", "all", "bench", "chaos", "gateway", "telemetry",
            "trace", "warehouse"
        }
        for name, description in SUBCOMMANDS.items():
            assert description.strip(), name
            assert len(description) < 80, name

    def test_help_epilog_lists_every_subcommand(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner_main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name, description in SUBCOMMANDS.items():
            assert name in out
            assert description in out

    def test_readme_cli_table_matches_runner(self):
        readme = README.read_text()
        for name, description in SUBCOMMANDS.items():
            row = f"| `{name}` | {description} |"
            assert row in readme, f"README CLI table missing/stale: {row!r}"


class TestTelemetryCommand:
    def test_routed_from_runner(self, capsys):
        assert runner_main(
            ["telemetry", "--vehicles", "1", "--frames", "30"]
        ) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "accounting       : OK" in out

    def test_smoke_run_writes_alert_log_and_snapshot(self, tmp_path, capsys):
        alert_log = tmp_path / "alerts.jsonl"
        snapshot = tmp_path / "snap.json"
        code = telemetry_main([
            "--vehicles", "4", "--frames", "120",
            "--alert-log", str(alert_log),
            "--snapshot", str(snapshot),
        ])
        assert code == 0
        alerts = [
            json.loads(line)
            for line in alert_log.read_text().splitlines() if line
        ]
        assert alerts, "the imperfect fleet must raise alerts"
        assert {"rule", "severity", "source", "timestamp_ns"} <= set(alerts[0])
        data = json.loads(snapshot.read_text())
        assert data["schema"] == "repro-telemetry-store/1"
        assert "restore round-trip OK" in capsys.readouterr().out

    def test_min_throughput_gate_fails_when_missed(self, capsys):
        # An impossible gate must exit non-zero.
        code = telemetry_main([
            "--vehicles", "1", "--frames", "30",
            "--min-throughput", "1e15",
        ])
        assert code == 1

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner_main(["no-such-figure"])
        assert excinfo.value.code != 0
