"""Differential oracle: span tracing must be observationally invisible.

Recording spans may not perturb the simulation in any observable way.
These tests run identical workloads with tracing ON and OFF and demand
byte-identical artifacts on every level: golden-trace digests of stack
runs, full fault-campaign scenario results (oracle verdicts, detections,
mode transitions, alert counts), telemetry-store snapshots from record
replay -- serially and through the 4-way multiprocessing fan-out.
"""

import dataclasses
import hashlib
import json

import pytest

from repro.experiments.parallel import run_campaign_parallel
from repro.faults.campaign import CampaignConfig, FaultCampaign, default_scenarios
from repro.perception.stack import PerceptionStack, StackConfig
from repro.tracing.golden import GOLDEN_FRAMES, golden_scenarios, stack_fingerprint

#: Whole module exercises multi-second stack/campaign runs.
pytestmark = pytest.mark.slow

N_FRAMES = 16  # minimum the campaign config admits with default warmup/tail

SCENARIO_NAMES = [s.name for s in default_scenarios()]


def _campaign_scenario(name, spans):
    registry = {s.name: s for s in default_scenarios()}
    campaign = FaultCampaign(config=CampaignConfig(n_frames=N_FRAMES, spans=spans))
    return campaign.run_scenario(registry[name])


def _store_digest(stack, source, n_frames):
    """SHA-256 of the telemetry store state after replaying one run."""
    from repro.telemetry.emitter import replay_stack_records, stack_store_config
    from repro.telemetry.service import ServiceConfig, TelemetryService

    service = TelemetryService(ServiceConfig(store=stack_store_config(stack)))
    service.ingest_many(replay_stack_records(stack, source, n_frames))
    service.drain()
    canonical = json.dumps(service.snapshot(), sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class TestGoldenScenarios:
    @pytest.mark.parametrize("name", sorted(golden_scenarios()))
    def test_fingerprints_and_store_digests_identical(self, name):
        factory = golden_scenarios()[name]
        off = factory()
        off.run(n_frames=GOLDEN_FRAMES)
        on = PerceptionStack(dataclasses.replace(off.config, spans=True))
        on.run(n_frames=GOLDEN_FRAMES)
        assert on.spans is not None and len(on.spans) > 0
        assert stack_fingerprint(on) == stack_fingerprint(off)
        assert _store_digest(on, name, GOLDEN_FRAMES) == _store_digest(
            off, name, GOLDEN_FRAMES
        )


class TestCampaignScenarios:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_scenario_results_identical(self, name):
        off = _campaign_scenario(name, spans=False)
        on = _campaign_scenario(name, spans=True)
        # Dataclass equality covers oracle verdicts, detections,
        # injections, mode transitions, watchdog rearms, alert counts
        # and telemetry record counts.
        assert on == off, f"scenario {name} diverged with spans enabled"


class TestParallelCampaign:
    def test_spans_on_j4_matches_spans_off_serial(self):
        subset = ["loss_burst", "clock_step", "cpu_overload", "silent_sensor"]
        serial_off = FaultCampaign(
            [s for s in default_scenarios() if s.name in subset],
            config=CampaignConfig(n_frames=N_FRAMES, spans=False),
        ).run()
        parallel_on = run_campaign_parallel(
            subset, config=CampaignConfig(n_frames=N_FRAMES, spans=True), jobs=4
        )
        assert serial_off.render_report() == parallel_on.render_report()
        for a, b in zip(serial_off.scenarios, parallel_on.scenarios):
            assert a == b, f"scenario {a.name} diverged (spans on, -j4)"
