"""Unit tests for drifting clocks and PTP synchronization."""

import pytest

from repro.network import DriftingClock, PtpService
from repro.sim import Simulator, msec, sec, usec


class TestDriftingClock:
    def test_zero_drift_zero_offset_reads_global_time(self):
        sim = Simulator()
        clock = DriftingClock(sim)
        sim.schedule_at(msec(5), lambda: None)
        sim.run()
        assert clock.now() == msec(5)

    def test_static_offset(self):
        sim = Simulator()
        clock = DriftingClock(sim, offset_ns=usec(30))
        assert clock.now() == usec(30)

    def test_drift_accumulates(self):
        sim = Simulator()
        clock = DriftingClock(sim, drift_ppm=100.0)  # 100us per second
        sim.schedule_at(sec(1), lambda: None)
        sim.run()
        assert clock.offset == usec(100)
        assert clock.now() == sec(1) + usec(100)

    def test_negative_drift(self):
        sim = Simulator()
        clock = DriftingClock(sim, drift_ppm=-50.0)
        sim.schedule_at(sec(2), lambda: None)
        sim.run()
        assert clock.offset == -usec(100)

    def test_correct_resets_offset_and_drift_epoch(self):
        sim = Simulator()
        clock = DriftingClock(sim, drift_ppm=100.0)
        sim.schedule_at(sec(1), lambda: clock.correct(0))
        sim.run()
        assert clock.offset == 0
        # Drift resumes from the correction epoch.
        sim.schedule_at(sec(2), lambda: None)
        sim.run()
        assert clock.offset == usec(100)

    def test_to_global_inverts_local_timestamp(self):
        sim = Simulator()
        clock = DriftingClock(sim, offset_ns=usec(7))
        local = clock.now()
        assert clock.to_global(local) == sim.now


class TestPtpService:
    def test_sync_bounds_error(self):
        sim = Simulator(seed=4)
        clocks = [
            DriftingClock(sim, offset_ns=msec(1), drift_ppm=50.0, name="a"),
            DriftingClock(sim, offset_ns=-msec(2), drift_ppm=-30.0, name="b"),
        ]
        ptp = PtpService(
            sim, clocks, sync_period=msec(100), residual_error=usec(2)
        )
        ptp.start()
        sim.run(until=sec(2))
        ptp.stop()
        bound = ptp.error_bound()
        for clock in clocks:
            assert abs(clock.offset) <= bound

    def test_error_bound_includes_drift_growth(self):
        sim = Simulator()
        clocks = [DriftingClock(sim, drift_ppm=100.0)]
        ptp = PtpService(sim, clocks, sync_period=msec(100), residual_error=usec(1))
        # 100 ppm over 100 ms -> 10us of growth + 1us residual.
        assert ptp.error_bound() == usec(11)

    def test_first_sync_is_immediate(self):
        sim = Simulator()
        clock = DriftingClock(sim, offset_ns=msec(5))
        ptp = PtpService(sim, [clock], sync_period=sec(1), residual_error=0)
        ptp.start()
        assert clock.offset == 0

    def test_rounds_counted(self):
        sim = Simulator()
        ptp = PtpService(sim, [DriftingClock(sim)], sync_period=msec(10))
        ptp.start()
        sim.run(until=msec(35))
        ptp.stop()
        assert ptp.rounds == 4  # t=0, 10, 20, 30

    def test_double_start_rejected(self):
        sim = Simulator()
        ptp = PtpService(sim, [], sync_period=msec(10))
        ptp.start()
        with pytest.raises(RuntimeError):
            ptp.start()

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PtpService(sim, [], sync_period=0)
        with pytest.raises(ValueError):
            PtpService(sim, [], sync_period=1, residual_error=-1)
