"""Property-based tests of span-tree well-formedness and attribution.

Three families:

- *Synthetic trees*: arbitrary interleavings of stack-disciplined
  begin/end programs across several traces must produce well-formed
  forests (single root per trace, child intervals nested inside their
  parents, no dangling references).
- *Edge telescoping*: for any causally-ordered span path, the edges
  built by :func:`~repro.tracing.critical_path.build_edges` are
  non-negative and sum exactly to ``last.end - first.start``.
- *Order invariance*: critical-path attribution of a real run does not
  depend on the recorder's emission order (any permutation of the span
  list yields identical paths and edges).
"""

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.perception.stack import PerceptionStack, StackConfig
from repro.tracing.critical_path import (
    CriticalPathAnalyzer,
    build_edges,
    validate_spans,
)
from repro.tracing.spans import Span, SpanRecorder


class _FakeSim:
    """A stand-in simulator: just a clock the test advances."""

    def __init__(self):
        self.now = 0


# ----------------------------------------------------------------------
# Synthetic interleaved trees
# ----------------------------------------------------------------------
@st.composite
def interleaved_programs(draw):
    """Per-trace nested begin/end programs plus an interleaving order.

    Each trace's program is a Dyck word (balanced brackets, root first);
    the merge order interleaves the traces arbitrarily while preserving
    each trace's own op order.  Clock increments between ops are drawn
    too, so sibling spans may touch or be separated.
    """
    n_traces = draw(st.integers(min_value=1, max_value=4))
    programs = []
    for _ in range(n_traces):
        n_spans = draw(st.integers(min_value=1, max_value=8))
        ops = ["begin"]
        opened, closed = 1, 0
        while closed < n_spans:
            can_open = opened - closed > 0  # root still open
            if opened < n_spans and can_open and draw(st.booleans()):
                ops.append("begin")
                opened += 1
            elif opened - closed > 0:
                ops.append("end")
                closed += 1
            else:
                break
        programs.append(ops)
    # Interleaving: a shuffled multiset of trace indices.
    deck = [t for t, ops in enumerate(programs) for _ in ops]
    order = draw(st.permutations(deck))
    increments = draw(
        st.lists(
            st.integers(min_value=0, max_value=50),
            min_size=len(deck), max_size=len(deck),
        )
    )
    return programs, order, increments


@given(interleaved_programs())
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_interleaved_programs_build_wellformed_forests(program):
    programs, order, increments = program
    sim = _FakeSim()
    recorder = SpanRecorder(sim)
    cursors = [0] * len(programs)
    stacks = [[] for _ in programs]  # open spans per trace, LIFO
    for step, trace_index in enumerate(order):
        sim.now += increments[step]
        op = programs[trace_index][cursors[trace_index]]
        cursors[trace_index] += 1
        stack = stacks[trace_index]
        if op == "begin":
            parent = stack[-1].context if stack else None
            stack.append(
                recorder.begin(f"t{trace_index}", "compute", parent=parent)
            )
        else:
            recorder.end(stack.pop())
    assert all(not stack for stack in stacks)
    assert recorder.open_spans == 0
    assert validate_spans(recorder) == []
    # Strict interval nesting: LIFO close discipline + monotone clock.
    by_id = {span.span_id: span for span in recorder.spans}
    roots = set()
    for span in recorder.spans:
        if span.parent_id is None:
            roots.add(span.trace_id)
            continue
        parent = by_id[span.parent_id]
        assert parent.start <= span.start
        assert span.end <= parent.end
    assert len(roots) == len(programs)


# ----------------------------------------------------------------------
# Edge telescoping over arbitrary causal paths
# ----------------------------------------------------------------------
@st.composite
def causal_paths(draw):
    """A path of spans with non-decreasing starts and end >= start."""
    n = draw(st.integers(min_value=1, max_value=10))
    start_gaps = draw(
        st.lists(st.integers(min_value=0, max_value=100),
                 min_size=n, max_size=n)
    )
    durations = draw(
        st.lists(st.integers(min_value=0, max_value=100),
                 min_size=n, max_size=n)
    )
    spans = []
    clock = draw(st.integers(min_value=0, max_value=1000))
    parent = None
    for index in range(n):
        clock += start_gaps[index]
        span = Span(
            name=f"s{index}",
            category="compute" if index % 2 else "network",
            trace_id=1,
            span_id=index + 1,
            parent_id=parent,
            start=clock,
            attrs={},
        )
        span.end = clock + durations[index]
        parent = span.span_id
        spans.append(span)
    return spans


@given(causal_paths())
@settings(max_examples=120, deadline=None)
def test_edges_always_telescope(path_spans):
    edges = build_edges(path_spans)
    assert all(edge.duration >= 0 for edge in edges)
    expected = path_spans[-1].end - path_spans[0].start
    assert sum(edge.duration for edge in edges) == expected


# ----------------------------------------------------------------------
# Emission-order invariance on a real run
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def recorded_run():
    stack = PerceptionStack(StackConfig(seed=7, link_loss=0.08, spans=True))
    stack.run(n_frames=8)
    analyzer = CriticalPathAnalyzer(stack.spans)
    reference = {}
    for name, chain in stack.chains.items():
        for path in analyzer.analyze(chain, range(8)):
            reference[(name, path.frame)] = [
                (e.name, e.category, e.start, e.end) for e in path.edges
            ]
    assert reference
    return stack, reference


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_attribution_invariant_under_emission_shuffles(recorded_run, seed):
    stack, reference = recorded_run
    shuffled = SpanRecorder(stack.sim)
    shuffled.spans = list(stack.spans.spans)
    random.Random(seed).shuffle(shuffled.spans)
    shuffled._by_id = {span.span_id: span for span in shuffled.spans}
    analyzer = CriticalPathAnalyzer(shuffled)
    observed = {}
    for name, chain in stack.chains.items():
        for path in analyzer.analyze(chain, range(8)):
            observed[(name, path.frame)] = [
                (e.name, e.category, e.start, e.end) for e in path.edges
            ]
    assert observed == reference
