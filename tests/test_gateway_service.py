"""FleetGateway unit tests: handshake, rate limiting, receive-window
backpressure, the overload ladder, shed accounting, and crash
recovery."""

import pytest

from repro.telemetry import ServiceConfig, TelemetryService
from repro.telemetry.gateway import (
    CLASS_ALERT,
    CLASS_DASHBOARD,
    CLASS_TELEMETRY,
    FleetGateway,
    GatewayConfig,
    GatewayMode,
    OverloadLadder,
    OverloadPolicy,
    RateLimitConfig,
    TokenBucket,
)
from repro.telemetry.records import (
    RecordKind,
    TelemetryRecord,
)
from repro.telemetry.uplink.transport import (
    ACK_SCHEMA,
    REJECT_SCHEMA,
    WELCOME_SCHEMA,
    decode_envelope,
    encode_frame,
    encode_hello,
)
from repro.telemetry.uplink.wal import encode_entry

TOKEN = "unit-secret"


def _rec(seq, source="veh00", kind=RecordKind.SEGMENT, verdict="ok"):
    return TelemetryRecord(
        kind=kind, source=source, chain="c", segment="c/s0",
        activation=seq, latency_ns=10 + seq, verdict=verdict,
        timestamp_ns=(seq + 1) * 1000, seq=seq,
    )


def _frame(records, frame_id=0, source="veh00", floor=None):
    floor = records[0].seq if floor is None else floor
    return encode_frame(
        source, frame_id, floor,
        [encode_entry(r.encode_line()) for r in records],
    )


def _gateway(tmp_path, **kwargs) -> FleetGateway:
    kwargs.setdefault("token", TOKEN)
    kwargs.setdefault("fsync", "never")
    kwargs.setdefault("checkpoint_every", None)
    return FleetGateway(
        TelemetryService(ServiceConfig()),
        tmp_path / "fleet",
        GatewayConfig(**kwargs),
    )


def _drain_outbox(gateway):
    out = [decode_envelope(p) for _, p in gateway.poll_outbox()]
    assert all(doc is not None for doc in out)
    return out


def _establish(gateway, source="veh00", life=0):
    gateway.handle_payload(encode_hello(source, TOKEN, life), 0)
    docs = _drain_outbox(gateway)
    assert docs[-1]["schema"] == WELCOME_SCHEMA
    return docs[-1]


class TestHandshake:
    def test_hello_with_secret_is_welcomed_with_window(self, tmp_path):
        gateway = _gateway(tmp_path, recv_window=32)
        welcome = _establish(gateway)
        assert welcome["window"] == 32
        assert gateway.sessions == {"veh00": 0}
        assert gateway.stats()["welcomes"] == 1

    def test_wrong_secret_is_terminally_rejected(self, tmp_path):
        gateway = _gateway(tmp_path)
        gateway.handle_payload(encode_hello("veh00", "wrong", 0), 0)
        (doc,) = _drain_outbox(gateway)
        assert doc["schema"] == REJECT_SCHEMA
        assert doc["reason"] == "auth"
        assert gateway.sessions == {}
        assert gateway.stats()["auth_rejects"] == 1

    def test_frame_without_session_asks_for_hello(self, tmp_path):
        gateway = _gateway(tmp_path)
        gateway.handle_payload(_frame([_rec(0), _rec(1)]), 0)
        (doc,) = _drain_outbox(gateway)
        assert doc["schema"] == REJECT_SCHEMA
        assert doc["reason"] == "hello"
        assert gateway.stats()["session_rejects"] == 1
        assert gateway.backlog_records == 0, "nothing may queue sessionless"


class TestRateLimiting:
    def test_flood_gets_reject_rate_with_retry_after(self, tmp_path):
        gateway = _gateway(
            tmp_path, recv_window=1024,
            rate=RateLimitConfig(capacity=8, refill_per_step=2),
        )
        _establish(gateway)
        gateway.handle_payload(_frame([_rec(i) for i in range(8)]), now=1)
        assert not gateway.poll_outbox()  # within budget: queued
        gateway.handle_payload(
            _frame([_rec(i) for i in range(8, 16)], frame_id=1), now=1
        )
        (doc,) = _drain_outbox(gateway)
        assert doc["schema"] == REJECT_SCHEMA
        assert doc["reason"] == "rate"
        # 8 tokens short at 2/step: deterministic 4-step penalty.
        assert doc["retry_after"] == 4
        assert gateway.stats()["rate_rejects"] == 1
        assert gateway.backlog_records == 8, "rejected frame must not queue"

    def test_bucket_refills_deterministically(self):
        bucket = TokenBucket(RateLimitConfig(capacity=4, refill_per_step=2))
        assert bucket.take(4, now=0)
        assert not bucket.take(1, now=0)
        assert bucket.take(2, now=1)  # one step refilled 2


class TestReceiveWindow:
    def test_overrun_answers_with_window_update_not_silence(self, tmp_path):
        gateway = _gateway(
            tmp_path, recv_window=8,
            rate=RateLimitConfig(capacity=4096, refill_per_step=4096),
        )
        _establish(gateway)
        gateway.handle_payload(_frame([_rec(i) for i in range(8)]), 1)
        assert not gateway.poll_outbox()
        gateway.handle_payload(
            _frame([_rec(i) for i in range(8, 16)], frame_id=1), 1
        )
        (doc,) = _drain_outbox(gateway)
        assert doc["schema"] == ACK_SCHEMA
        assert doc["window"] == 0, "full window must be advertised as 0"
        assert gateway.stats()["window_rejects"] == 1
        # Draining the backlog reopens the window on the next ack.
        gateway.step(now=2)
        (ack,) = _drain_outbox(gateway)
        assert ack["schema"] == ACK_SCHEMA
        assert ack["window"] == 8
        assert ack["ack_through"] == 7

    def test_acks_advertise_remaining_room(self, tmp_path):
        gateway = _gateway(tmp_path, recv_window=64)
        _establish(gateway)
        gateway.handle_payload(_frame([_rec(i) for i in range(4)]), 1)
        gateway.step(now=1)
        (ack,) = _drain_outbox(gateway)
        assert ack["window"] == 64  # drained: full room again


class TestOverloadLadder:
    def test_escalation_and_hysteresis(self):
        ladder = OverloadLadder(OverloadPolicy(
            degraded_above=10, safe_above=20, recover_below=4, dwell=3,
        ))
        assert ladder.observe(5, now=0) is GatewayMode.NORMAL
        assert ladder.observe(15, now=1) is GatewayMode.DEGRADED
        assert ladder.observe(25, now=2) is GatewayMode.SAFE
        # Calm streaks de-escalate one rung per dwell, never instantly.
        assert ladder.observe(0, now=3) is GatewayMode.SAFE
        assert ladder.observe(0, now=4) is GatewayMode.SAFE
        assert ladder.observe(0, now=5) is GatewayMode.DEGRADED
        assert ladder.observe(0, now=6) is GatewayMode.DEGRADED
        assert ladder.observe(0, now=7) is GatewayMode.NORMAL
        assert [t[1:3] for t in ladder.transitions] == [
            ("normal", "degraded"), ("degraded", "safe"),
            ("safe", "degraded"), ("degraded", "normal"),
        ]

    def test_sheds_by_rung(self):
        ladder = OverloadLadder(OverloadPolicy(
            degraded_above=1, safe_above=2, recover_below=0, dwell=1,
        ))
        ladder.observe(2, now=0)
        assert ladder.sheds(CLASS_DASHBOARD)
        assert not ladder.sheds(CLASS_TELEMETRY)
        ladder.observe(3, now=1)
        assert ladder.sheds(CLASS_TELEMETRY)
        assert not ladder.sheds(CLASS_ALERT), "alerts are never shed"


class TestShedAccounting:
    def _overloaded_gateway(self, tmp_path):
        return _gateway(
            tmp_path, recv_window=1024, drain_records_per_step=1024,
            rate=RateLimitConfig(capacity=4096, refill_per_step=4096),
            overload=OverloadPolicy(
                degraded_above=2, safe_above=4, recover_below=1, dwell=2,
            ),
        )

    def test_shed_seqs_are_announced_and_counted_by_class(self, tmp_path):
        gateway = self._overloaded_gateway(tmp_path)
        _establish(gateway)
        records = [
            _rec(0, kind=RecordKind.HEARTBEAT),          # dashboard
            _rec(1),                                     # telemetry
            _rec(2, kind=RecordKind.EXCEPTION),          # alert
            _rec(3, verdict="miss"),                     # alert
            _rec(4),                                     # telemetry
            _rec(5, kind=RecordKind.HEARTBEAT),          # dashboard
        ]
        gateway.handle_payload(_frame(records), 1)
        gateway.step(now=1)  # backlog 6 > safe_above 4 -> SAFE
        (ack,) = _drain_outbox(gateway)
        assert gateway.ladder.mode is GatewayMode.SAFE
        assert ack["shed"] == [0, 1, 4, 5]
        assert ack["ack_through"] == 5, \
            "shed seqs still settle the cumulative ack"
        stats = gateway.stats()
        assert stats["shed_by_class"] == {
            CLASS_DASHBOARD: 2, CLASS_TELEMETRY: 2, CLASS_ALERT: 0,
        }
        # Alert-bearing records reached the store; shed ones did not.
        gateway.service.drain()
        assert gateway.service.store.applied == 2

    def test_shed_announcement_is_cumulative_across_acks(self, tmp_path):
        gateway = self._overloaded_gateway(tmp_path)
        _establish(gateway)
        gateway.handle_payload(
            _frame([_rec(i, kind=RecordKind.HEARTBEAT) for i in range(6)]), 1
        )
        gateway.step(now=1)
        (first,) = _drain_outbox(gateway)
        assert first["shed"] == [0, 1, 2, 3, 4, 5]
        # A later frame's ack re-announces every shed seq: a lost ack
        # can never silently strand records.  (The follow-up record is
        # an alert, which even a SAFE-mode gateway never sheds.)
        gateway.handle_payload(
            _frame([_rec(6, kind=RecordKind.EXCEPTION)],
                   frame_id=1, floor=6),
            20,
        )
        gateway.step(now=20)
        (second,) = _drain_outbox(gateway)
        assert second["shed"] == [0, 1, 2, 3, 4, 5]
        assert second["ack_through"] == 6


class TestRecovery:
    def test_recover_loses_sessions_but_not_records(self, tmp_path):
        gateway = _gateway(tmp_path)
        _establish(gateway)
        gateway.handle_payload(_frame([_rec(i) for i in range(6)]), 1)
        gateway.step(now=1)
        _drain_outbox(gateway)
        gateway.ingestor.close()

        recovered, report = FleetGateway.recover(
            tmp_path / "fleet",
            GatewayConfig(token=TOKEN, fsync="never", checkpoint_every=None),
        )
        assert report.replayed_records >= 0
        assert recovered.sessions == {}, "sessions are soft state"
        recovered.service.drain()
        assert recovered.service.store.applied == 6
        # A pre-crash client's frame is asked to re-handshake.
        recovered.handle_payload(_frame([_rec(6)], frame_id=1, floor=0), 2)
        (doc,) = _drain_outbox(recovered)
        assert doc["schema"] == REJECT_SCHEMA
        assert doc["reason"] == "hello"


class TestConfigValidation:
    def test_bad_windows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            GatewayConfig(recv_window=0)
        with pytest.raises(ValueError):
            GatewayConfig(drain_records_per_step=0)
        with pytest.raises(ValueError):
            RateLimitConfig(capacity=0)
