"""The full fault campaign: coverage, oracles, determinism, lesions.

The default scenario matrix is expensive (~20 s), so it runs once as a
module-scoped fixture and every assertion reads from that result.
"""

import pytest

from repro.faults import (
    CampaignConfig,
    FaultCampaign,
    default_scenarios,
    run_default_campaign,
)

#: Whole module exercises multi-second stack/campaign runs.
pytestmark = pytest.mark.slow

N_FRAMES = 40


@pytest.fixture(scope="module")
def campaign_result():
    return run_default_campaign(CampaignConfig(n_frames=N_FRAMES))


def scenario_by_name(name):
    return {s.name: s for s in default_scenarios()}[name]


class TestCampaignMatrix:
    def test_covers_at_least_six_fault_classes(self, campaign_result):
        assert len(campaign_result.fault_classes_covered) >= 6

    def test_every_scenario_passes_both_oracles(self, campaign_result):
        for scenario in campaign_result.scenarios:
            detail = "\n".join(
                f.detail for f in (scenario.soundness.failures
                                   + scenario.completeness.failures)[:5]
            )
            assert scenario.soundness.passed, f"{scenario.name}:\n{detail}"
            assert scenario.completeness.passed, f"{scenario.name}:\n{detail}"
        assert campaign_result.passed

    def test_every_scenario_injects_and_detects(self, campaign_result):
        for scenario in campaign_result.scenarios:
            assert scenario.injections > 0, scenario.name
            assert scenario.detections > 0, scenario.name

    def test_oracles_actually_checked_something(self, campaign_result):
        for scenario in campaign_result.scenarios:
            assert scenario.soundness.checked > 0, scenario.name

    def test_escalation_reached_safe_under_sustained_faults(
        self, campaign_result
    ):
        by_name = {s.name: s for s in campaign_result.scenarios}
        # A sensor silent from boot is an unbounded violation stream:
        # the ladder must escalate all the way.
        assert by_name["silent_sensor_boot"].safe_state_entries == 1
        # A short loss burst recovers: ends NORMAL, no safe state.
        assert by_name["loss_burst"].final_mode == "normal"
        assert by_name["loss_burst"].safe_state_entries == 0

    def test_render_report_mentions_verdict(self, campaign_result):
        report = campaign_result.render_report()
        assert "campaign: PASS" in report
        for scenario in campaign_result.scenarios:
            assert scenario.name in report


class TestOracleDiscrimination:
    """Disabling violation reporting must make completeness fail."""

    def test_silent_monitor_fails_no_silent_violation(self):
        config = CampaignConfig(
            n_frames=N_FRAMES, degradation=False, watchdog=False,
            disable_violation_reporting=True,
        )
        result = FaultCampaign(
            [scenario_by_name("loss_burst")], config
        ).run().scenarios[0]
        assert not result.completeness.passed
        assert result.completeness.failures
        # The lesion silences reports, it does not fabricate events:
        # soundness still holds vacuously-or-better.
        assert result.soundness.passed

    def test_same_scenario_with_reporting_passes(self):
        config = CampaignConfig(
            n_frames=N_FRAMES, degradation=False, watchdog=False
        )
        result = FaultCampaign(
            [scenario_by_name("loss_burst")], config
        ).run().scenarios[0]
        assert result.completeness.passed


class TestWatchdogDependence:
    def test_boot_silence_undetected_without_watchdog(self):
        """The sync-based monitor never arms without a first sample; the
        watchdog is what turns boot silence into timeouts."""
        scenario = scenario_by_name("silent_sensor_boot")
        config = CampaignConfig(
            n_frames=N_FRAMES, degradation=False, watchdog=False
        )
        result = FaultCampaign([scenario], config).run_scenario(scenario)
        assert not result.completeness.passed

    def test_watchdog_required_scenarios_skipped_when_disabled(self):
        config = CampaignConfig(
            n_frames=N_FRAMES, degradation=False, watchdog=False
        )
        result = FaultCampaign(config=config).run()
        names = {s.name for s in result.scenarios}
        assert "silent_sensor_boot" not in names
        assert "silent_sensor" in names


class TestDeterminism:
    def test_identical_runs_produce_identical_records(self):
        scenario = scenario_by_name("loss_burst")
        config = CampaignConfig(n_frames=24)

        def fingerprint():
            campaign = FaultCampaign([scenario], config)
            result = campaign.run_scenario(scenario)
            return (
                result.detections,
                result.injections,
                result.soundness.checked,
                result.completeness.checked,
                tuple(result.mode_transitions),
            )

        assert fingerprint() == fingerprint()


class TestConfigValidation:
    def test_too_few_frames_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(n_frames=8)

    def test_frames_env_override(self, monkeypatch):
        from repro.faults import campaign_frames

        monkeypatch.setenv("REPRO_FAULT_FRAMES", "64")
        assert campaign_frames() == 64
        monkeypatch.setenv("REPRO_FAULT_FRAMES", "junk")
        assert campaign_frames() == 48
        monkeypatch.setenv("REPRO_FAULT_FRAMES", "4")
        assert campaign_frames() == 16  # floor
