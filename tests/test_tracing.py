"""Unit tests for the tracer and trace-based latency reconstruction."""

import pytest

from _harness import Message, PipelineWorld

from repro.core import EventKind, EventPoint
from repro.sim import Simulator, msec
from repro.tracing import Tracer, endpoint_events, segment_latencies_from_trace


class TestTracer:
    def test_records_events(self):
        sim = Simulator()
        tracer = Tracer(sim)
        sim.schedule_at(msec(1), lambda: sim.emit_trace("x.y", a=1))
        sim.run()
        events = tracer.events("x.y")
        assert len(events) == 1
        assert events[0].timestamp == msec(1)
        assert events[0].fields == {"a": 1}

    def test_prefix_filter(self):
        sim = Simulator()
        tracer = Tracer(sim, prefixes=("dds.",))
        sim.emit_trace("dds.publish", topic="t")
        sim.emit_trace("monitor.start_event", segment="s")
        assert tracer.count("dds.publish") == 1
        assert tracer.count("monitor.start_event") == 0

    def test_capacity_ring_buffer(self):
        sim = Simulator()
        tracer = Tracer(sim, capacity_per_name=3)
        for i in range(5):
            sim.emit_trace("e", i=i)
        events = tracer.events("e")
        assert [e.fields["i"] for e in events] == [2, 3, 4]
        assert tracer.discarded == 2

    def test_select_by_fields(self):
        sim = Simulator()
        tracer = Tracer(sim)
        sim.emit_trace("e", topic="a", n=1)
        sim.emit_trace("e", topic="b", n=2)
        assert len(tracer.select("e", topic="a")) == 1

    def test_disable(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.enabled = False
        sim.emit_trace("e")
        assert tracer.count("e") == 0

    def test_clear(self):
        sim = Simulator()
        tracer = Tracer(sim)
        sim.emit_trace("e")
        tracer.clear()
        assert tracer.events("e") == []
        assert tracer.recorded == 1


class TestLatencyReconstruction:
    def test_segment_latency_from_pipeline_trace(self):
        world = PipelineWorld(worker_time=lambda i: msec(5), d_mon=msec(50))
        tracer = Tracer(world.sim, prefixes=("dds.",))
        world.publish_frames(5)
        world.run(until=msec(800))
        latencies = segment_latencies_from_trace(tracer, world.segment)
        assert len(latencies) == 5
        for latency in latencies:
            assert msec(5) <= latency <= msec(6)

    def test_endpoint_events_filter_by_process(self):
        world = PipelineWorld(worker_time=lambda i: msec(1))
        tracer = Tracer(world.sim, prefixes=("dds.",))
        world.publish_frames(3)
        world.run(until=msec(500))
        point = EventPoint("a", EventKind.RECEIVE, "ecu1", "worker")
        events = endpoint_events(tracer, point)
        assert len(events) == 3
        # A different process on the same ECU sees nothing.
        other = EventPoint("a", EventKind.RECEIVE, "ecu1", "sink")
        assert endpoint_events(tracer, other) == []

    def test_publication_events_matched_by_writer(self):
        world = PipelineWorld(worker_time=lambda i: msec(1))
        tracer = Tracer(world.sim, prefixes=("dds.",))
        world.publish_frames(4)
        world.run(until=msec(600))
        point = EventPoint("b", EventKind.PUBLICATION, "ecu1", "worker")
        assert len(endpoint_events(tracer, point)) == 4
