"""Benchmark harness smoke tests: schema, persistence, regression compare.

The full suites run in CI's dedicated bench job; here we keep runtime
low by exercising the kernel suite in quick mode and driving the
comparison logic (both the pass and the fail direction) on synthetic
suite files and on a tiny stubbed suite through the real CLI.
"""

import json

import pytest

from repro.bench import cli as bench_cli
from repro.bench.harness import (
    SCHEMA,
    compare_suites,
    load_suite,
    run_bench,
    suite_to_json,
    validate_suite,
    write_suite,
)
from repro.bench.suites import SUITES, run_suite


def synthetic_suite(medians):
    """A valid suite dict with the given name -> median_ns mapping."""
    return {
        "schema": SCHEMA,
        "suite": "kernel",
        "python": "3.x",
        "benchmarks": {
            name: {
                "layer": "kernel",
                "iterations": 3,
                "units": 100,
                "unit": "events",
                "median_ns": median,
                "p95_ns": median,
                "min_ns": median,
                "units_per_s": 100 / (median / 1e9),
            }
            for name, median in medians.items()
        },
    }


class TestRunBench:
    def test_statistics_are_consistent(self):
        result = run_bench(
            "noop", lambda: 50, layer="kernel", unit="events",
            iterations=5, warmup=0,
        )
        assert result.units == 50
        assert result.min_ns <= result.median_ns <= result.p95_ns
        assert result.units_per_s > 0
        assert result.iterations == 5

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError):
            run_bench("x", lambda: 1, layer="kernel", unit="u", iterations=0)


class TestQuickSuites:
    def test_kernel_suite_quick(self):
        results = run_suite("kernel", quick=True)
        assert [r.name for r in results] == [
            entry[0] for entry in SUITES["kernel"]
        ]
        for result in results:
            assert result.median_ns > 0, result.name
            assert result.units > 0, result.name

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            run_suite("nope")


class TestSchema:
    def test_write_load_round_trip(self, tmp_path):
        results = [
            run_bench("noop", lambda: 10, layer="kernel", unit="events",
                      iterations=2, warmup=0)
        ]
        path = write_suite(tmp_path / "BENCH_kernel.json", "kernel", results)
        data = load_suite(path)
        assert data["schema"] == SCHEMA
        assert data["suite"] == "kernel"
        assert set(data["benchmarks"]) == {"noop"}
        entry = data["benchmarks"]["noop"]
        assert entry["units"] == 10
        assert entry["median_ns"] > 0

    def test_validate_rejects_bad_schema(self):
        suite = synthetic_suite({"a": 100})
        suite["schema"] = "other/9"
        with pytest.raises(ValueError, match="schema"):
            validate_suite(suite)

    def test_validate_rejects_missing_fields(self):
        suite = synthetic_suite({"a": 100})
        del suite["benchmarks"]["a"]["median_ns"]
        with pytest.raises(ValueError, match="median_ns"):
            validate_suite(suite)

    def test_committed_baselines_validate(self):
        # The repo-level BENCH_*.json baselines must stay schema-valid.
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        for name in ("BENCH_kernel.json", "BENCH_e2e.json"):
            path = repo_root / name
            assert path.exists(), f"{name} baseline missing"
            data = load_suite(path)
            assert data["benchmarks"], f"{name} is empty"


class TestCompare:
    def test_equal_suites_pass(self):
        base = synthetic_suite({"a": 100, "b": 2000})
        report = compare_suites(base, base, threshold=0.3)
        assert report.passed
        assert all(c.ratio == 1.0 for c in report.comparisons)

    def test_regression_fails(self):
        base = synthetic_suite({"a": 100})
        current = synthetic_suite({"a": 140})  # +40% > 30% threshold
        report = compare_suites(current, base, threshold=0.3)
        assert not report.passed
        assert report.comparisons[0].regressed
        assert "REGRESSED" in report.render()

    def test_speedup_passes(self):
        base = synthetic_suite({"a": 140})
        current = synthetic_suite({"a": 100})
        assert compare_suites(current, base, threshold=0.3).passed

    def test_within_threshold_passes(self):
        base = synthetic_suite({"a": 100})
        current = synthetic_suite({"a": 125})  # +25% < 30%
        assert compare_suites(current, base, threshold=0.3).passed

    def test_missing_benchmark_fails(self):
        base = synthetic_suite({"a": 100, "gone": 100})
        current = synthetic_suite({"a": 100})
        report = compare_suites(current, base)
        assert not report.passed
        assert report.missing == ["gone"]

    def test_new_benchmark_ignored(self):
        base = synthetic_suite({"a": 100})
        current = synthetic_suite({"a": 100, "new": 50})
        assert compare_suites(current, base).passed


@pytest.fixture
def tiny_suite(monkeypatch):
    """Replace both suites with single near-instant benchmarks."""
    monkeypatch.setitem(
        SUITES, "kernel", [("noop", "kernel", "events", lambda: 10)]
    )
    monkeypatch.setitem(
        SUITES, "e2e", [("noop2", "e2e", "frames", lambda: 5)]
    )


class TestCli:
    def test_run_and_write(self, tiny_suite, tmp_path, capsys):
        code = bench_cli.main(
            ["--suite", "kernel", "--quick", "--out", str(tmp_path)]
        )
        assert code == 0
        data = load_suite(tmp_path / "BENCH_kernel.json")
        assert set(data["benchmarks"]) == {"noop"}
        assert "noop" in capsys.readouterr().out

    def test_compare_pass_and_fail(self, tiny_suite, tmp_path, capsys):
        baseline = tmp_path / "BENCH_kernel.json"
        code = bench_cli.main(
            ["--suite", "kernel", "--quick", "--out", str(tmp_path)]
        )
        assert code == 0
        # Comparing against the just-written baseline passes (threshold
        # is generous enough for timer noise on a no-op benchmark).
        code = bench_cli.main(
            ["--suite", "kernel", "--quick",
             "--compare", str(baseline), "--threshold", "1000"]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out
        # A baseline with an impossibly fast median must fail.
        data = json.loads(baseline.read_text())
        data["benchmarks"]["noop"]["median_ns"] = 1
        baseline.write_text(json.dumps(data))
        code = bench_cli.main(
            ["--suite", "kernel", "--quick", "--compare", str(baseline)]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_compare_directory_baseline(self, tiny_suite, tmp_path):
        code = bench_cli.main(["--suite", "all", "--quick",
                               "--out", str(tmp_path)])
        assert code == 0
        code = bench_cli.main(
            ["--suite", "all", "--quick",
             "--compare", str(tmp_path), "--threshold", "1000"]
        )
        assert code == 0

    def test_compare_missing_baseline_fails(self, tiny_suite, tmp_path):
        code = bench_cli.main(
            ["--suite", "kernel", "--quick",
             "--compare", str(tmp_path / "absent.json")]
        )
        assert code == 1

    def test_repro_cli_dispatches_bench(self, tiny_suite, capsys):
        from repro.experiments.runner import main as repro_main

        code = repro_main(["bench", "--suite", "kernel", "--quick"])
        assert code == 0
        assert "noop" in capsys.readouterr().out


class TestOnlyFilter:
    """The --only selector: validation, floor expansion, compare scope."""

    @pytest.fixture
    def paired_suite(self, monkeypatch):
        """Two benches where "fast" is floor-gated against "slow"."""
        import repro.bench.harness as harness

        monkeypatch.setitem(
            SUITES,
            "kernel",
            [
                ("fast", "kernel", "events", lambda: 10),
                ("slow", "kernel", "events", lambda: 10),
                ("other", "kernel", "events", lambda: 10),
            ],
        )
        monkeypatch.setitem(SUITES, "e2e", [])
        # A floor that any timing satisfies: the point is reference
        # expansion, not the ratio.
        monkeypatch.setitem(
            harness.THROUGHPUT_FLOORS, "fast", ("slow", 1e-9)
        )

    def test_runs_only_selected(self, paired_suite, capsys):
        code = bench_cli.main(["--quick", "--only", "other"])
        assert code == 0
        out = capsys.readouterr().out
        assert "other" in out
        assert "fast" not in out

    def test_floor_reference_pulled_in(self, paired_suite, capsys):
        results = run_suite("kernel", quick=True, only=["fast"])
        assert {r.name for r in results} == {"fast", "slow"}
        code = bench_cli.main(["--quick", "--only", "fast"])
        assert code == 0
        out = capsys.readouterr().out
        assert "slow" in out  # reference ran alongside
        assert "floor fast" in out  # and the gate was checked

    def test_unknown_name_rejected(self, paired_suite, capsys):
        code = bench_cli.main(["--quick", "--only", "nonsense"])
        assert code == 2
        assert "unknown benchmark" in capsys.readouterr().out
        with pytest.raises(ValueError):
            run_suite("kernel", only=["nonsense"])

    def test_only_with_out_refused(self, paired_suite, tmp_path, capsys):
        code = bench_cli.main(
            ["--quick", "--only", "other", "--out", str(tmp_path)]
        )
        assert code == 2
        assert "partial baseline" in capsys.readouterr().out
        assert not (tmp_path / "BENCH_kernel.json").exists()

    def test_compare_restricted_to_ran_benches(
        self, paired_suite, tmp_path, capsys
    ):
        baseline = tmp_path / "BENCH_kernel.json"
        code = bench_cli.main(
            ["--suite", "kernel", "--quick", "--out", str(tmp_path)]
        )
        assert code == 0
        capsys.readouterr()
        # Full baseline on disk, filtered run: the benches that did not
        # run must not be reported MISSING.
        code = bench_cli.main(
            ["--quick", "--only", "other",
             "--compare", str(baseline), "--threshold", "1000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MISSING" not in out

    def test_comma_and_repeat_forms(self, paired_suite, capsys):
        code = bench_cli.main(
            ["--quick", "--only", "other,slow", "--only", "fast"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "other" in out and "slow" in out and "fast" in out
