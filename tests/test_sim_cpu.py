"""Unit tests for ECUs and frequency governors."""

import pytest

from repro.sim import (
    BurstyGovernor,
    Compute,
    ConstantGovernor,
    Ecu,
    OndemandGovernor,
    Simulator,
    Sleep,
    msec,
    sec,
)


class TestConstantGovernor:
    def test_sets_speed_on_attach(self):
        sim = Simulator()
        ecu = Ecu(sim, "e", n_cores=1, governor_factory=lambda: ConstantGovernor(0.5))
        assert ecu.scheduler.cores[0].speed == 0.5

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            ConstantGovernor(0)


class TestOndemandGovernor:
    def test_starts_at_low_speed(self):
        sim = Simulator()
        ecu = Ecu(
            sim,
            "e",
            n_cores=1,
            governor_factory=lambda: OndemandGovernor(low=0.4, high=1.0),
        )
        assert ecu.scheduler.cores[0].speed == 0.4

    def test_ramps_up_after_delay_while_busy(self):
        sim = Simulator()
        ecu = Ecu(
            sim,
            "e",
            n_cores=1,
            governor_factory=lambda: OndemandGovernor(
                low=0.5, high=1.0, ramp_delay=msec(2), idle_delay=msec(5)
            ),
        )
        marks = []

        def body(_):
            yield Compute(msec(4))
            marks.append(sim.now)

        ecu.spawn("t", body)
        sim.run()
        # 2ms at speed 0.5 completes 1ms of work; the remaining 3ms of
        # work at speed 1.0 takes 3ms: total 5ms wall time.
        assert marks == [msec(5)]

    def test_drops_back_after_idle(self):
        sim = Simulator()
        ecu = Ecu(
            sim,
            "e",
            n_cores=1,
            governor_factory=lambda: OndemandGovernor(
                low=0.5, high=1.0, ramp_delay=msec(1), idle_delay=msec(3)
            ),
        )

        def body(_):
            yield Compute(msec(4))
            yield Sleep(msec(10))

        ecu.spawn("t", body)
        sim.run()
        assert ecu.scheduler.cores[0].speed == 0.5

    def test_work_after_idle_gap_is_slow_at_first(self):
        """Race-to-idle effect: periodic work landing on a slowed-down
        core sees inflated latency -- a source of the paper's tail."""
        sim = Simulator()
        ecu = Ecu(
            sim,
            "e",
            n_cores=1,
            governor_factory=lambda: OndemandGovernor(
                low=0.25, high=1.0, ramp_delay=msec(2), idle_delay=msec(1)
            ),
        )
        latencies = []

        def body(_):
            for _i in range(3):
                start = sim.now
                yield Compute(msec(1))
                latencies.append(sim.now - start)
                yield Sleep(msec(20))

        ecu.spawn("t", body)
        sim.run()
        # Each burst starts at low speed: 2ms at 0.25 does 0.5ms of work,
        # remaining 0.5ms at 1.0 -> 2.5ms per burst, never the nominal 1ms.
        assert all(lat > msec(1) for lat in latencies)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            OndemandGovernor(low=1.2, high=1.0)


class TestBurstyGovernor:
    def test_speed_excursions_slow_down_work(self):
        sim = Simulator(seed=7)
        ecu = Ecu(
            sim,
            "e",
            n_cores=1,
            governor_factory=lambda: BurstyGovernor(
                nominal=1.0,
                slow_min=0.1,
                slow_max=0.2,
                mean_interval=msec(5),
                mean_dwell=msec(5),
            ),
        )
        latencies = []

        def body(_):
            for _i in range(200):
                start = sim.now
                yield Compute(msec(1))
                latencies.append(sim.now - start)

        ecu.spawn("t", body)
        # The governor keeps scheduling excursions forever, so bound the run.
        sim.run(until=sec(10))
        assert len(latencies) == 200
        # Some executions hit an excursion and took noticeably longer.
        assert max(latencies) > 2 * min(latencies)
        assert min(latencies) == msec(1)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            BurstyGovernor(nominal=1.0, slow_min=0.5, slow_max=0.4)


class TestEcuComposition:
    def test_each_core_gets_its_own_governor(self):
        sim = Simulator()
        governors = []

        def factory():
            governor = ConstantGovernor(0.8)
            governors.append(governor)
            return governor

        Ecu(sim, "e", n_cores=4, governor_factory=factory)
        assert len(governors) == 4
        assert len(set(id(g) for g in governors)) == 4
