"""Online (m,k) supervision and health reporting on the running stack."""

import pytest

from repro.core import MKConstraint, Outcome
from repro.core.diagnostics import Health, HealthPolicy, HealthSupervisor
from repro.experiments.common import interference_governor
from repro.perception import PerceptionStack, StackConfig
from repro.sim import msec

#: Whole module exercises multi-second stack/campaign runs.
pytestmark = pytest.mark.slow


class TestOnlineSupervision:
    def test_violation_callback_fires_during_run(self):
        """Wiring the chain runtime's online window to the application:
        with a hard (0,1) constraint, any miss triggers the callback."""
        violations = []
        stack = PerceptionStack(StackConfig(
            seed=3,
            mk=MKConstraint(0, 1),
            ecu2_governor=interference_governor(),
        ))
        runtime = stack.chain_runtimes["front_objects"]
        runtime.on_violation = lambda n, misses: violations.append(n)
        stack.run(n_frames=60)
        runtime.advance_window(through_activation=55)
        report = runtime.finalize(through_activation=55)
        if report.miss_count > 0:
            assert violations
            assert all(0 <= n <= 55 for n in violations)

    def test_health_supervisor_on_live_stack(self):
        stack = PerceptionStack(StackConfig(
            seed=3,
            ecu2_governor=interference_governor(),
        ))
        supervisor = HealthSupervisor(
            HealthPolicy(window=30, degraded_ratio=0.15, failed_consecutive=5)
        )
        for runtime in stack.local_runtimes.values():
            supervisor.attach(runtime)
        for monitor in stack.remote_monitors.values():
            supervisor.attach(monitor)
        stack.run(n_frames=60)
        report = supervisor.report()
        assert "system health" in report
        # Interference causes occasional objects-segment exceptions but
        # the segment never hard-fails (no 5 consecutive misses).
        assert supervisor.state_of("s3_objects") in (Health.OK, Health.DEGRADED)

    def test_mk_window_consistency_between_online_and_offline(self):
        stack = PerceptionStack(StackConfig(
            seed=3,
            ecu2_governor=interference_governor(),
        ))
        stack.run(n_frames=50)
        runtime = stack.chain_runtimes["front_objects"]
        runtime.advance_window(through_activation=49)
        report = runtime.finalize(through_activation=49)
        assert runtime.window.violated == (not report.mk_satisfied)
        assert runtime.window.total == 50
