"""Unit tests for the link model (latency, jitter, FIFO, loss)."""

import pytest

from repro.network import Frame, JitterModel, Link
from repro.sim import Simulator, msec, usec


def frame(size=1000):
    return Frame(payload="data", size_bytes=size, src="ecu1", dst="ecu2")


class TestDelay:
    def test_base_latency_only(self):
        sim = Simulator()
        link = Link(sim, "l", base_latency=usec(100), bandwidth_bps=1e12)
        arrivals = []
        link.transmit(frame(size=0), lambda f: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [usec(100)]

    def test_serialization_delay_scales_with_size(self):
        sim = Simulator()
        # 1 Gbit/s: 1250 bytes = 10000 bits -> 10us.
        link = Link(sim, "l", base_latency=0, bandwidth_bps=1e9)
        arrivals = []
        link.transmit(frame(size=1250), lambda f: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [usec(10)]

    def test_uniform_jitter_bounded(self):
        sim = Simulator(seed=5)
        link = Link(
            sim,
            "l",
            base_latency=usec(50),
            jitter=JitterModel("uniform", usec(20)),
            bandwidth_bps=1e12,
        )
        arrivals = []
        for _ in range(100):
            sim_send = sim.now
            link.transmit(frame(size=0), lambda f, t0=sim_send: arrivals.append(sim.now - t0))
            sim.run()
        assert all(usec(50) <= d <= usec(70) + 100 for d in arrivals)
        assert len(set(arrivals)) > 3

    def test_lognormal_jitter_clipped(self):
        sim = Simulator(seed=5)
        model = JitterModel("lognormal", usec(100))
        rng = sim.rng("j")
        samples = [model.sample(rng) for _ in range(5000)]
        assert all(0 <= s <= 20 * usec(100) for s in samples)

    def test_unknown_jitter_kind_rejected(self):
        with pytest.raises(ValueError):
            JitterModel("gamma", 10)


class TestFifo:
    def test_frames_never_reorder(self):
        sim = Simulator(seed=11)
        link = Link(
            sim,
            "l",
            base_latency=usec(10),
            jitter=JitterModel("uniform", usec(500)),
            bandwidth_bps=1e12,
        )
        received = []
        for i in range(50):
            sim.schedule_at(
                i * usec(20),
                lambda i=i: link.transmit(
                    Frame(payload=i, size_bytes=100, src="a", dst="b"),
                    lambda f: received.append(f.payload),
                ),
            )
        sim.run()
        assert received == sorted(received)
        assert len(received) == 50


class TestLoss:
    def test_zero_loss_delivers_everything(self):
        sim = Simulator()
        link = Link(sim, "l", loss_prob=0.0)
        count = []
        for _ in range(20):
            link.transmit(frame(), lambda f: count.append(1))
        sim.run()
        assert len(count) == 20
        assert link.stats.lost == 0

    def test_loss_rate_approximated(self):
        sim = Simulator(seed=2)
        link = Link(sim, "l", loss_prob=0.3)
        delivered = []
        for _ in range(2000):
            link.transmit(frame(), lambda f: delivered.append(1))
        sim.run()
        rate = 1 - len(delivered) / 2000
        assert 0.25 < rate < 0.35
        assert link.stats.lost + link.stats.delivered == link.stats.sent

    def test_loss_hook_called(self):
        sim = Simulator(seed=2)
        link = Link(sim, "l", loss_prob=0.999)
        lost = []
        link.on_loss = lambda f: lost.append(f.seq)
        for _ in range(10):
            link.transmit(frame(), lambda f: None)
        sim.run()
        assert len(lost) >= 9

    def test_transmit_returns_false_on_loss(self):
        sim = Simulator(seed=1)
        link = Link(sim, "l", loss_prob=0.999)
        results = [link.transmit(frame(), lambda f: None) for _ in range(20)]
        assert False in results

    def test_invalid_loss_prob_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, "l", loss_prob=1.0)


class TestStats:
    def test_bytes_counted(self):
        sim = Simulator()
        link = Link(sim, "l")
        link.transmit(frame(size=500), lambda f: None)
        link.transmit(frame(size=700), lambda f: None)
        sim.run()
        assert link.stats.bytes_sent == 1200

    def test_sequence_numbers_increment(self):
        sim = Simulator()
        link = Link(sim, "l")
        seqs = []
        for _ in range(3):
            f = frame()
            link.transmit(f, lambda f: None)
            seqs.append(f.seq)
        assert seqs == [0, 1, 2]
