"""Warehouse determinism, append-only discipline, and reconciliation.

The contracts under test (ISSUE acceptance criteria):

- re-ingesting an identical run is a no-op and leaves the warehouse
  digest unchanged; a run_id collision with *different* content is
  refused without touching stored state;
- the store digest and all query output are independent of ingest
  order;
- every version guard (warehouse meta, run manifest, span JSONL
  header) raises ``SchemaVersionError`` before state changes, and
  unknown extra fields warn instead of failing;
- single-run warehouse cohorts reconcile **exactly** (snapshot
  equality, not approximate quantiles) with a live
  ``attribute_chain`` of the same spans, integer-ns telescoping
  included.
"""

import io
import json
import sqlite3

import pytest

from repro.perception.stack import PerceptionStack, StackConfig
from repro.telemetry.records import SchemaVersionError
from repro.tracing.critical_path import CriticalPathAnalyzer, attribute_chain
from repro.tracing.export import parse_jsonl_lines, to_jsonl
from repro.warehouse import (
    RunKey,
    RunManifest,
    RunSelector,
    SpanWarehouse,
    aggregate,
    content_digest,
)

FRAMES = 8


@pytest.fixture(scope="module")
def base_stack():
    stack = PerceptionStack(StackConfig(seed=1, spans=True))
    stack.run(n_frames=FRAMES)
    return stack


@pytest.fixture(scope="module")
def head_stack():
    stack = PerceptionStack(StackConfig(seed=7, link_loss=0.08, spans=True))
    stack.run(n_frames=FRAMES)
    return stack


def manifest_of(stack, run_id, commit, scenario):
    return RunManifest.for_run(
        RunKey(run_id=run_id, commit=commit, suite="trace",
               scenario=scenario, vehicle="veh0"),
        stack.chains,
        FRAMES,
    )


@pytest.fixture(scope="module")
def base_payload(base_stack):
    return manifest_of(base_stack, "base", "cA", "benign"), \
        list(base_stack.spans.spans)


@pytest.fixture(scope="module")
def head_payload(head_stack):
    return manifest_of(head_stack, "head", "cB", "lossy_link"), \
        list(head_stack.spans.spans)


@pytest.fixture(scope="module")
def store(base_payload, head_payload):
    wh = SpanWarehouse(":memory:")
    wh.ingest_run(*base_payload)
    wh.ingest_run(*head_payload)
    yield wh
    wh.close()


class TestIngestion:
    def test_ingest_counts(self, store, base_stack):
        runs = {run["run_id"]: run for run in store.runs()}
        assert set(runs) == {"base", "head"}
        # Benign run: all 4 chains complete every frame.
        assert runs["base"]["n_instances"] == 4 * FRAMES
        assert runs["base"]["n_spans"] == len(base_stack.spans.spans)
        # Lossy run: some instances drop, none are invented.
        assert 0 < runs["head"]["n_instances"] <= 4 * FRAMES

    def test_double_ingest_is_idempotent(self, store, base_payload):
        before = store.digest()
        result = store.ingest_run(*base_payload)
        assert result.skipped
        assert result.digest == content_digest(*base_payload)
        assert store.digest() == before

    def test_run_id_collision_refused(self, store, base_payload, head_payload):
        manifest, _ = base_payload
        _, other_spans = head_payload
        before = store.digest()
        with pytest.raises(ValueError, match="append-only"):
            store.ingest_run(manifest, other_spans)
        # The refused ingest must not leave partial state behind.
        assert store.digest() == before

    def test_ingest_order_never_changes_the_digest(
        self, store, base_payload, head_payload
    ):
        with SpanWarehouse(":memory:") as reversed_store:
            reversed_store.ingest_run(*head_payload)
            reversed_store.ingest_run(*base_payload)
            assert reversed_store.digest() == store.digest()

    def test_edges_telescope_in_sql(self, store):
        # Stored edge durations must sum exactly (integer ns) to the
        # stored instance e2e, per (run, chain, frame).
        rows = store._conn.execute(
            "SELECT i.run_id, i.chain, i.frame, i.e2e_ns, "
            "  SUM(e.end_ns - e.start_ns) "
            "FROM instances i JOIN edges e "
            "  ON e.run_id = i.run_id AND e.chain = i.chain "
            "  AND e.frame = i.frame "
            "GROUP BY i.run_id, i.chain, i.frame"
        ).fetchall()
        assert rows
        for run_id, chain, frame, e2e, edge_sum in rows:
            assert edge_sum == e2e, (run_id, chain, frame)

    def test_indexed_drilldowns(self, store):
        assert store.span_count() > 0
        assert store.edge_count() > 0
        assert store.edge_count(run_id="base") > 0
        assert store.edge_count(run_id="base", category="compute") > 0
        assert store.edge_count(run_id="nope") == 0


class TestSchemaGuards:
    def test_unknown_warehouse_schema_refused(self, tmp_path):
        path = tmp_path / "wh.db"
        SpanWarehouse(path).close()
        conn = sqlite3.connect(str(path))
        conn.execute(
            "UPDATE meta SET value = 'repro-warehouse/99' "
            "WHERE key = 'schema'"
        )
        conn.commit()
        conn.close()
        with pytest.raises(SchemaVersionError):
            SpanWarehouse(path)

    def test_unknown_manifest_schema_refused(self, base_payload):
        data = base_payload[0].to_json()
        data["schema"] = "repro-warehouse-manifest/99"
        with pytest.raises(SchemaVersionError):
            RunManifest.from_json(data)

    def test_unknown_manifest_field_warns(self, base_payload):
        data = base_payload[0].to_json()
        data["fleet_epoch"] = 7
        with pytest.warns(UserWarning, match="fleet_epoch"):
            manifest = RunManifest.from_json(data)
        assert manifest.key == base_payload[0].key

    def test_manifest_round_trip(self, base_payload):
        manifest = base_payload[0]
        restored = RunManifest.from_json(
            json.loads(json.dumps(manifest.to_json()))
        )
        assert restored.key == manifest.key
        assert restored.chains == manifest.chains
        rebuilt = restored.build_chains()
        assert set(rebuilt) == {m["name"] for m in manifest.chains}
        for name, chain in rebuilt.items():
            assert chain.budget_e2e is not None, name

    def test_missing_span_header_refused(self, base_stack):
        lines = list(to_jsonl(base_stack.spans))[1:]  # drop the header
        with pytest.raises(SchemaVersionError):
            parse_jsonl_lines(iter(lines), require_header=True)
        # The tolerant reader (legacy files) still loads them.
        spans = parse_jsonl_lines(iter(lines), require_header=False)
        assert len(spans) == len(base_stack.spans.spans)

    def test_unknown_span_schema_refused(self, base_stack):
        lines = list(to_jsonl(base_stack.spans))
        lines[0] = json.dumps({"schema": "repro-spans/99"})
        with pytest.raises(SchemaVersionError) as excinfo:
            parse_jsonl_lines(iter(lines), require_header=True)
        assert "repro-spans/99" in str(excinfo.value)

    def test_unknown_span_field_warns_once(self, base_stack):
        lines = list(to_jsonl(base_stack.spans))
        for i in (1, 2):
            record = json.loads(lines[i])
            record["gpu_ns"] = 5
            lines[i] = json.dumps(record)
        with pytest.warns(UserWarning, match="gpu_ns") as caught:
            spans = parse_jsonl_lines(iter(lines), require_header=True)
        assert len(spans) == len(base_stack.spans.spans)
        assert len([w for w in caught
                    if "gpu_ns" in str(w.message)]) == 1

    def test_empty_run_id_rejected(self):
        with pytest.raises(ValueError):
            RunKey(run_id="")


class TestReconciliation:
    """Warehouse cohort aggregates == live per-run attribution, exactly."""

    def exact_match(self, store, stack, run_id):
        analyzer = CriticalPathAnalyzer(stack.spans)
        agg = aggregate(store, RunSelector(run_id=run_id))
        assert agg.run_ids == [run_id]
        assert set(agg.chains) == set(stack.chains)
        for name in stack.chains:
            live = attribute_chain(analyzer, stack.chains[name],
                                   range(FRAMES))
            cohort = agg.chains[name]
            assert cohort.n_instances == live.n_instances
            assert cohort.budget_e2e == live.budget_e2e
            # Snapshot equality is exact reconciliation: same bucket
            # counts, same totals, hence identical p50/p95/p99.
            assert cohort.e2e.snapshot() == live.e2e_histogram.snapshot()
            assert set(cohort.categories) == set(live.category_histograms)
            for key, hist in live.category_histograms.items():
                assert cohort.categories[key].snapshot() == hist.snapshot()
            for key, hist in live.edge_histograms.items():
                assert cohort.edges[key].snapshot() == hist.snapshot()
            assert set(cohort.segments) == set(live.segment_burn)
            for key, (hist, d_mon) in live.segment_burn.items():
                got_hist, got_budget = cohort.segments[key]
                assert got_hist.snapshot() == hist.snapshot()
                assert got_budget == d_mon
            assert cohort.telescoping_ok()

    def test_base_run_reconciles_exactly(self, store, base_stack):
        self.exact_match(store, base_stack, "base")

    def test_head_run_reconciles_exactly(self, store, head_stack):
        self.exact_match(store, head_stack, "head")
