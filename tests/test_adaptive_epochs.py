"""Budget epochs: content identity, JSON round-trip, ledger state machine."""

import pytest

from repro.adaptive import (
    EPOCH_SCHEMA,
    BudgetEpoch,
    EpochLedger,
    EpochLedgerError,
    EpochStatus,
)
from repro.telemetry.records import SchemaVersionError
from repro.telemetry.uplink.wal import encode_entry

_MS = 1_000_000

BUDGETS = {"pipeline": {"seg0": 8 * _MS, "seg1": 10 * _MS, "seg2": 12 * _MS}}


def make_epoch(epoch_id=0, budgets=None, **kwargs):
    return BudgetEpoch(
        epoch_id=epoch_id, budgets=budgets or BUDGETS, **kwargs
    )


class TestBudgetEpoch:
    def test_identity_is_the_content_digest(self):
        # A rollback re-publishes the same budgets under a fresh id; the
        # digest must say "same budgets" regardless of id/basis/parent.
        original = make_epoch(1)
        rollback = make_epoch(3, parent_id=1, rollback_of=2,
                              basis={"rollback_of": 2})
        assert original.digest() == rollback.digest()
        changed = make_epoch(
            1, {"pipeline": {**BUDGETS["pipeline"], "seg0": 9 * _MS}}
        )
        assert changed.digest() != original.digest()

    def test_json_round_trip(self):
        epoch = make_epoch(4, parent_id=1, rollback_of=3,
                           basis={"window_records": 512})
        doc = epoch.to_json()
        assert doc["schema"] == EPOCH_SCHEMA
        again = BudgetEpoch.from_json(doc)
        assert again == epoch
        assert again.digest() == epoch.digest()

    def test_from_json_rejects_wrong_schema(self):
        doc = make_epoch().to_json()
        doc["schema"] = "repro-adaptive-epoch/999"
        with pytest.raises(SchemaVersionError):
            BudgetEpoch.from_json(doc)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_epoch(-1)
        with pytest.raises(ValueError):
            BudgetEpoch(epoch_id=0, budgets={})
        with pytest.raises(ValueError):
            make_epoch(0, {"pipeline": {}})
        with pytest.raises(ValueError):
            make_epoch(0, {"pipeline": {"seg0": 0}})
        with pytest.raises(ValueError):
            make_epoch(0, {"pipeline": {"seg0": 1.5}})

    def test_flat_budgets_min_wins_on_shared_segments(self):
        epoch = make_epoch(0, {
            "a": {"shared": 5 * _MS, "only_a": 7 * _MS},
            "b": {"shared": 3 * _MS},
        })
        assert epoch.flat_budgets() == {
            "shared": 3 * _MS, "only_a": 7 * _MS
        }


class TestEpochLedger:
    def test_publish_requires_validation(self, tmp_path):
        # THE invariant: a fleet never runs an epoch that did not pass
        # shadow validation -- the ledger refuses the append outright.
        ledger = EpochLedger(tmp_path / "epochs.log")
        epoch = make_epoch(0)
        ledger.record_epoch(epoch)
        with pytest.raises(EpochLedgerError, match="no shadow"):
            ledger.record_published(0, "canary", ("veh00",))
        ledger.record_validated(0, {"ok": True})
        ledger.record_published(0, "canary", ("veh00",))
        ledger.record_published(0, "fleet", ("veh00", "veh01"))
        assert ledger.last_published("fleet") == 0

    def test_validated_and_rejected_are_exclusive(self, tmp_path):
        ledger = EpochLedger(tmp_path / "epochs.log")
        ledger.record_epoch(make_epoch(0))
        ledger.record_epoch(make_epoch(1))
        ledger.record_validated(0, {})
        with pytest.raises(EpochLedgerError):
            ledger.record_rejected(0, "late change of heart")
        ledger.record_rejected(1, "(m,k) regression")
        with pytest.raises(EpochLedgerError):
            ledger.record_validated(1, {})
        with pytest.raises(EpochLedgerError):
            ledger.record_published(1, "fleet", ())

    def test_status_lifecycle_and_next_id(self, tmp_path):
        ledger = EpochLedger(tmp_path / "epochs.log")
        assert ledger.next_epoch_id == 0
        ledger.record_epoch(make_epoch(0))
        assert ledger.status_of(0) is EpochStatus.DRAFT
        ledger.record_validated(0, {})
        assert ledger.status_of(0) is EpochStatus.VALIDATED
        ledger.record_published(0, "canary", ("veh00",))
        assert ledger.status_of(0) is EpochStatus.CANARY
        ledger.record_published(0, "fleet", ("veh00",))
        assert ledger.status_of(0) is EpochStatus.FLEET
        ledger.record_rollback(0, 1)
        assert ledger.status_of(0) is EpochStatus.ROLLED_BACK
        assert ledger.next_epoch_id == 1

    def test_recover_round_trips_state(self, tmp_path):
        path = tmp_path / "epochs.log"
        ledger = EpochLedger(path)
        ledger.record_epoch(make_epoch(0))
        ledger.record_validated(0, {})
        ledger.record_published(0, "fleet", ("veh00", "veh01"))
        ledger.record_ack("veh00", 0, "applied")
        ledger.record_ack("veh01", 0, "deferred")
        live = ledger.to_json()
        ledger.close()
        recovered, report = EpochLedger.recover(path)
        assert recovered.to_json() == live
        assert not report.truncated_tail
        assert recovered.acks["veh01"] == (0, "deferred")
        recovered.close()

    def test_recover_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "epochs.log"
        ledger = EpochLedger(path)
        ledger.record_epoch(make_epoch(0))
        ledger.record_validated(0, {})
        ledger.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(encode_entry('["ack","veh00",0,"applied"]')[:9])
        recovered, report = EpochLedger.recover(path)
        assert report.truncated_tail
        assert recovered.acks == {}
        # The repaired file appends cleanly.
        recovered.record_ack("veh00", 0, "applied")
        recovered.close()
        again, report2 = EpochLedger.recover(path)
        assert not report2.truncated_tail
        assert again.acks["veh00"] == (0, "applied")
        again.close()

    def test_recover_rejects_mid_file_corruption(self, tmp_path):
        path = tmp_path / "epochs.log"
        ledger = EpochLedger(path)
        ledger.record_epoch(make_epoch(0))
        ledger.record_validated(0, {})
        ledger.close()
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # not the tail
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(EpochLedgerError, match="mid-file"):
            EpochLedger.recover(path)

    def test_recover_refuses_unvalidated_publication(self, tmp_path):
        # A ledger claiming a publication with no validation on record
        # is corruption, not a crash: replay must refuse to accept it.
        path = tmp_path / "epochs.log"
        ledger = EpochLedger(path)
        ledger.record_epoch(make_epoch(0))
        ledger.close()
        import json

        body = json.dumps(["published", 0, "fleet", ["veh00"]],
                          separators=(",", ":"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(encode_entry(body) + "\n")
        with pytest.raises(EpochLedgerError, match="unvalidated"):
            EpochLedger.recover(path)
