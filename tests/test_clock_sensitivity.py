"""Clock-synchronization sensitivity of the sync-based remote monitor.

The paper's premise: the receiver interprets sender timestamps, valid
because PTP bounds the clock error to epsilon which is folded into
``d_mon`` (d_mon = BCRT + JR + Ja + epsilon).  These tests verify both
directions:

- with a sync error well inside the budgeted epsilon, no false
  positives occur;
- with a clock offset exceeding d_mon, the monitor (correctly, from its
  local view) flags on-time traffic -- quantifying why bounded sync is a
  prerequisite;
- the paper's asymmetry note: a *late* activation tightens the next
  deadline (safe), an *early* activation loosens it (may leave slack
  undetected, never causes false alarms).
"""

import pytest

from _harness import Message, activation_of, message_topic, two_ecu_world

from repro.core import (
    MKConstraint,
    MonitorThread,
    SyncRemoteMonitor,
    TimeoutContext,
)
from repro.core.segments import remote_segment
from repro.network import DriftingClock
from repro.ros import Node
from repro.sim import msec, usec


def clocked_setup(sender_offset=0, receiver_offset=0, d_mon=msec(5), seed=1):
    sim, ecu1, ecu2, domain = two_ecu_world(seed=seed)
    ecu1.clock = DriftingClock(sim, offset_ns=sender_offset, name="tx")
    ecu2.clock = DriftingClock(sim, offset_ns=receiver_offset, name="rx")
    sender = Node(domain, ecu1, "sender", priority=40)
    receiver = Node(domain, ecu2, "receiver", priority=30)
    topic = message_topic("stream")
    sub = receiver.create_subscription(topic, lambda s: None)
    pub = sender.create_publisher(topic)
    segment = remote_segment("seg", "stream", "ecu1", "ecu2", d_mon=d_mon)
    monitor = SyncRemoteMonitor(
        segment, sub.reader, period=msec(100),
        mk=MKConstraint(2, 10),
        context=TimeoutContext.MONITOR_THREAD,
        monitor_thread=MonitorThread(ecu2, priority=99),
        activation_fn=activation_of,
    )
    return sim, pub, monitor


def drive(sim, pub, monitor, n=10, period=msec(100)):
    for i in range(n):
        sim.schedule_at(msec(1) + i * period, pub.publish, Message(frame_index=i))
    sim.run(until=msec(1) + (n - 1) * period + msec(20))
    monitor.stop()


class TestBoundedSyncError:
    def test_small_offsets_cause_no_false_positives(self):
        # 50 us of clock disagreement, 5 ms of d_mon: plenty of margin.
        sim, pub, monitor = clocked_setup(
            sender_offset=usec(30), receiver_offset=-usec(20)
        )
        drive(sim, pub, monitor)
        assert monitor.exceptions == []

    def test_latency_measurement_includes_clock_error(self):
        # Receiver clock 1 ms ahead: measured latencies shift by ~1 ms.
        sim, pub, monitor = clocked_setup(receiver_offset=msec(1))
        drive(sim, pub, monitor)
        for _n, latency, _o in monitor.latencies:
            assert msec(1) <= latency <= msec(1) + usec(400)


class TestExcessiveSyncError:
    def test_receiver_clock_far_ahead_causes_false_positives(self):
        """If the receiver's clock leads the sender by more than d_mon,
        on-time samples appear late: without PTP the approach breaks."""
        sim, pub, monitor = clocked_setup(receiver_offset=msec(8), d_mon=msec(5))
        drive(sim, pub, monitor)
        assert len(monitor.exceptions) > 0
        assert monitor.late_discarded > 0

    def test_receiver_clock_behind_hides_lateness(self):
        """Receiver lagging by 8 ms: samples 6 ms late still appear
        in-time -- the undetected-slack direction the paper notes."""
        sim, pub, monitor = clocked_setup(receiver_offset=-msec(8), d_mon=msec(5))
        period = msec(100)
        for i in range(8):
            # Every sample published 6 ms past its nominal instant but
            # stamped at the nominal time.
            sim.schedule_at(
                msec(1) + i * period + msec(6),
                lambda i=i: pub.writer.write(
                    Message(frame_index=i),
                    source_timestamp=msec(1) + i * period,
                ),
            )
        sim.run(until=msec(800))
        monitor.stop()
        assert monitor.exceptions == []  # lateness hidden by clock skew


class TestDeadlineAsymmetry:
    def test_late_activation_tightens_next_deadline(self):
        """The n-th deadline is programmed from the (n-1)-th *timestamp*:
        if activation n-1 ran late, activation n faces a closer deadline
        -- the safe direction of the paper's argument."""
        sim, pub, monitor = clocked_setup(d_mon=msec(5))
        period = msec(100)
        # Frame 0 on time (stamped at its nominal time), frame 1
        # published 3 ms late with a late timestamp too.
        sim.schedule_at(msec(1), pub.publish, Message(frame_index=0))
        sim.schedule_at(msec(104), pub.publish, Message(frame_index=1))
        sim.run(until=msec(150))
        # Deadline for frame 2 derives from frame 1's (late) timestamp:
        # 104 + 100 + 5 = 209 ms -- but had frame 1 been punctual it
        # would be 206 ms; the *relative* slack for frame 2's own
        # execution is unchanged (timestamp-based, not schedule-based).
        assert monitor.deadline_local == msec(209)
        monitor.stop()
