"""DAG event-chain model: validation, path enumeration, degeneracy.

Covers :mod:`repro.core.dag` (structure + linear round-trip) and
:mod:`repro.core.dag_runtime` (per-path (m,k) supervision).
"""

import pytest

from repro.core import DagChain, DagChainRuntime, DagPath, MKConstraint, Outcome
from repro.core.chains import ChainValidationError, EventChain
from repro.core.segments import local_segment, remote_segment
from repro.faults.dag_stack import DagStackConfig, build_perception_dag
from repro.perception.stack import PerceptionStack, StackConfig


def diamond_segments():
    """a -> {b, c} -> d with gap-free stitching."""
    a = remote_segment("a", "t0", "ecuA", "ecuB")
    b = local_segment("b", "ecuB", "t0", "t1")
    c = local_segment("c", "ecuB", "t0", "t1")
    d = remote_segment("d", "t1", "ecuB", "ecuC")
    b.start = a.end
    c.start = a.end
    c.end = b.end
    d.start = b.end
    return [a, b, c, d]


def diamond(**kwargs):
    defaults = dict(
        name="diamond",
        segments=diamond_segments(),
        edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
        period=100,
        budget_e2e=300,
    )
    defaults.update(kwargs)
    return DagChain(**defaults)


class TestValidation:
    def test_duplicate_segment_rejected(self):
        segs = diamond_segments()
        with pytest.raises(ChainValidationError, match="duplicate segment"):
            DagChain("x", segs + [segs[0]], [], 100, 300)

    def test_empty_rejected(self):
        with pytest.raises(ChainValidationError, match=">= 1 segment"):
            DagChain("x", [], [], 100, 300)

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ChainValidationError, match="period"):
            diamond(period=0)

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(ChainValidationError, match="unknown segment"):
            diamond(edges=[("a", "nope")])

    def test_self_loop_rejected(self):
        with pytest.raises(ChainValidationError, match="self-loop"):
            diamond(edges=[("a", "a")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ChainValidationError, match="duplicate edge"):
            diamond(edges=[("a", "b"), ("a", "b")])

    def test_cycle_rejected(self):
        x = local_segment("x", "ecuB", "t0", "t1")
        y = local_segment("y", "ecuB", "t1", "t0")
        # Stitch both directions so each edge is gap-free and only the
        # cycle itself is the defect.
        y.start = x.end
        x.start = y.end
        with pytest.raises(ChainValidationError, match="cycle"):
            DagChain("loop", [x, y], [("x", "y"), ("y", "x")], 100, 300)

    def test_gap_rejected(self):
        segs = diamond_segments()
        # Break the stitch: d now starts at an unrelated event.
        segs[3].start = segs[0].start
        with pytest.raises(ChainValidationError, match="unmonitored gap"):
            DagChain("x", segs,
                     [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
                     100, 300)

    def test_missing_sink_budget_rejected(self):
        with pytest.raises(ChainValidationError, match="no end-to-end budget"):
            diamond(budget_e2e={"not_d": 300})

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ChainValidationError, match="positive"):
            diamond(budget_e2e=0)


class TestStructure:
    def test_roots_sinks_diamond(self):
        dag = diamond()
        assert dag.roots() == ["a"]
        assert dag.sinks() == ["d"]
        assert dag.successors("a") == ["b", "c"]
        assert dag.predecessors("d") == ["b", "c"]

    def test_diamond_paths(self):
        paths = diamond().paths()
        assert [p.path_id for p in paths] == ["a>b>d", "a>c>d"]
        assert paths[0].root == "a" and paths[0].sink == "d"
        assert len(paths[0]) == 3

    def test_perception_dag_has_four_paths(self):
        dag = build_perception_dag(DagStackConfig())
        assert len(dag) == 7
        assert dag.roots() == ["s_cam", "s_lid"]
        assert dag.sinks() == ["s_plan", "s_viz"]
        ids = [p.path_id for p in dag.paths()]
        assert ids == [
            "s_cam>s_fuse_cam>s_xfer>s_plan",
            "s_cam>s_fuse_cam>s_xfer>s_viz",
            "s_lid>s_fuse_lid>s_xfer>s_plan",
            "s_lid>s_fuse_lid>s_xfer>s_viz",
        ]

    def test_path_by_id(self):
        dag = diamond()
        assert dag.path_by_id("a>c>d").segment_names == ("a", "c", "d")
        with pytest.raises(KeyError):
            dag.path_by_id("a>z>d")

    def test_per_sink_budget_and_mk(self):
        dag = build_perception_dag(DagStackConfig())
        assert dag.budget_e2e["s_plan"] > dag.budget_e2e["s_viz"]
        for path in dag.paths():
            chain = dag.path_chain(path)
            assert isinstance(chain, EventChain)
            assert chain.budget_e2e == dag.budget_e2e[path.sink]
            assert chain.mk == dag.mk[path.sink]
            assert chain.name == f"{dag.name}:{path.path_id}"

    def test_path_chains_keyed_by_id(self):
        dag = diamond()
        chains = dag.path_chains()
        assert set(chains) == {"a>b>d", "a>c>d"}

    def test_with_deadlines_and_check_budgets(self):
        dag = diamond()
        assert not dag.deadlines_assigned
        assigned = dag.with_deadlines({"a": 50, "b": 60, "c": 70, "d": 80})
        assert assigned.deadlines_assigned
        assert not dag.deadlines_assigned  # original untouched
        assigned.check_budgets()  # worst path a>c>d sums to 200 <= 300
        # Shrinking one sink's budget below that path sum must raise --
        # the per-path Eq. (3) check, not the (satisfied) linear one.
        tight = diamond(budget_e2e=150).with_deadlines(
            {"a": 50, "b": 60, "c": 70, "d": 80}
        )
        with pytest.raises(ChainValidationError, match="exceeds budget"):
            tight.check_budgets()

    def test_with_deadlines_missing_segment_rejected(self):
        with pytest.raises(ValueError, match="no deadline"):
            diamond().with_deadlines({"a": 50})


class TestLinearDegeneracy:
    def test_round_trip_equals_original_for_stack_chains(self):
        stack = PerceptionStack(StackConfig(seed=1))
        for name, chain in stack.chains.items():
            round_tripped = DagChain.from_linear(chain).to_linear()
            assert round_tripped == chain, name

    def test_from_linear_is_single_path(self):
        stack = PerceptionStack(StackConfig(seed=1))
        chain = stack.chains["front_objects"]
        dag = DagChain.from_linear(chain)
        assert len(dag.paths()) == 1
        assert dag.paths()[0].segment_names == tuple(
            s.name for s in chain.segments
        )

    def test_to_linear_rejects_forking_dag(self):
        with pytest.raises(ChainValidationError, match="single-path"):
            diamond().to_linear()


class TestDagChainRuntime:
    def mk_diamond(self, m=1, k=4):
        return diamond(mk=MKConstraint(m, k))

    def test_segment_report_routes_to_containing_paths(self):
        runtime = DagChainRuntime(self.mk_diamond())
        runtime.report("b", 0, Outcome.MISS, latency=120)
        runtime.report("c", 0, Outcome.OK, latency=40)
        reports = runtime.finalize(0)
        assert reports["a>b>d"].miss_count == 1
        assert reports["a>b>d"].misses == [True]
        assert reports["a>c>d"].miss_count == 0
        assert reports["a>c>d"].misses == [False]

    def test_shared_segment_report_hits_all_paths(self):
        runtime = DagChainRuntime(self.mk_diamond())
        runtime.report("a", 0, Outcome.MISS)
        reports = runtime.finalize(0)
        assert reports["a>b>d"].misses == [True]
        assert reports["a>c>d"].misses == [True]

    def test_report_unknown_segment_raises(self):
        # A misspelled monitor segment name must fail loudly, not
        # silently drop every outcome (mirrors report_path's KeyError).
        runtime = DagChainRuntime(self.mk_diamond())
        with pytest.raises(KeyError, match="unknown segment"):
            runtime.report("b_typo", 0, Outcome.MISS)

    def test_report_path_targets_one_path(self):
        runtime = DagChainRuntime(self.mk_diamond())
        runtime.report_path("a>b>d", 0, Outcome.MISS)
        reports = runtime.finalize(0)
        assert reports["a>b>d"].misses == [True]
        assert reports["a>c>d"].misses == [False]

    def test_advance_window_fires_on_violation(self):
        fired = []
        runtime = DagChainRuntime(
            self.mk_diamond(m=1, k=4),
            on_violation=lambda pid, n, misses: fired.append((pid, n, misses)),
        )
        for n in range(4):
            runtime.report_path("a>b>d", n, Outcome.MISS)
        runtime.advance_window(3)
        assert fired and fired[0][0] == "a>b>d"
        assert runtime.violated_paths == ["a>b>d"]

    def test_finalize_mk_verdict_matches_constraint(self):
        runtime = DagChainRuntime(self.mk_diamond(m=1, k=4))
        # 2 misses in a 4-window on a>b>d: violated; a>c>d clean.
        for n in range(4):
            outcome = Outcome.MISS if n < 2 else Outcome.OK
            runtime.report_path("a>b>d", n, outcome)
            runtime.report_path("a>c>d", n, Outcome.OK)
        reports = runtime.finalize(3)
        assert not reports["a>b>d"].mk_satisfied
        assert reports["a>b>d"].max_window_misses == 2
        assert reports["a>c>d"].mk_satisfied

    def test_unreported_activations_count_as_ok(self):
        runtime = DagChainRuntime(self.mk_diamond())
        runtime.report_path("a>b>d", 2, Outcome.MISS)
        reports = runtime.finalize(2)
        assert reports["a>b>d"].misses == [False, False, True]
