"""Cross-process reproducibility regression tests.

RNG stream seeding must not depend on the interpreter's salted string
hash (PYTHONHASHSEED): identical seeds must yield identical simulations
in different processes, or no experiment is reproducible.
"""

import os
import subprocess
import sys

SNIPPET = """
from repro.sim import Simulator
sim = Simulator(seed=42)
values = list(sim.rng("classifier").integers(0, 1 << 30, 5))
values += list(sim.rng("link:eth").integers(0, 1 << 30, 5))
print(values)
"""

STACK_SNIPPET = """
from repro.perception import PerceptionStack, StackConfig
stack = PerceptionStack(StackConfig(seed=5))
stack.run(n_frames=8)
print(sorted(stack.monitored_latencies("s3_objects")))
"""


def run_with_hashseed(snippet: str, hashseed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    result = subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


class TestCrossProcessDeterminism:
    def test_rng_streams_independent_of_hash_salt(self):
        a = run_with_hashseed(SNIPPET, "1")
        b = run_with_hashseed(SNIPPET, "9999")
        assert a == b

    def test_full_stack_run_reproducible_across_processes(self):
        a = run_with_hashseed(STACK_SNIPPET, "3")
        b = run_with_hashseed(STACK_SNIPPET, "12345")
        assert a == b
        assert a  # non-empty latency list


class TestInProcessDeterminism:
    def test_same_seed_same_stack_results(self):
        from repro.perception import PerceptionStack, StackConfig

        def once():
            stack = PerceptionStack(StackConfig(seed=5))
            stack.run(n_frames=8)
            return stack.monitored_latencies("s3_objects")

        assert once() == once()

    def test_different_seed_different_results(self):
        from repro.perception import PerceptionStack, StackConfig

        def once(seed):
            stack = PerceptionStack(StackConfig(seed=seed))
            stack.run(n_frames=8)
            return stack.monitored_latencies("s3_objects")

        assert once(1) != once(2)
