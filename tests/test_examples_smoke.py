"""The examples must stay runnable: execute them as subprocesses.

Marked slow-ish; each example is bounded to a few minutes.  The
perception/budgeting walkthroughs are exercised indirectly through the
experiment tests, so only the faster examples run here.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "(2,10) satisfied: True" in out
        assert "RRRRR" in out  # the slowed frames recovered

    def test_real_ipc_monitor(self):
        out = run_example("real_ipc_monitor.py")
        assert "exceptions: [50, 51, 120]" in out
        assert "monitor latency" in out

    def test_telemetry_uplink(self):
        out = run_example("telemetry_uplink.py")
        assert "truncated_lines=1" in out
        assert "store digest matches the fault-free reference" in out
        assert "VIOLATED" not in out

    def test_adaptive_budgeting(self):
        out = run_example("adaptive_budgeting.py")
        assert "ledger refused the publish" in out
        assert "rollback digest == factory digest" in out
        assert "applied exactly once" in out

    def test_trace_attribution(self):
        out = run_example("trace_attribution.py")
        assert "well-formed spans" in out
        assert "edges sum exactly to the end-to-end latency (residual = 0ns)" in out
        assert "budget burn" in out
        assert "chrome trace events" in out

    def test_fleet_gateway(self):
        out = run_example("fleet_gateway.py")
        assert "episode PASS" in out
        assert "alerts shed: 0 (never)" in out
        assert "ledger balanced for all 50 vehicles" in out
        assert "ladder returned to NORMAL" in out

    def test_trace_warehouse(self):
        out = run_example("trace_warehouse.py")
        assert "re-ingest skipped; warehouse digest unchanged" in out
        assert "reverse-order ingest produces the identical digest" in out
        assert "telescoping OK" in out
        assert "diff document is byte-stable" in out

    def test_examples_exist_and_have_docstrings(self):
        expected = {
            "quickstart.py",
            "perception_pipeline.py",
            "budgeting_workflow.py",
            "remote_monitoring_comparison.py",
            "real_ipc_monitor.py",
            "fault_campaign.py",
            "parallel_campaign.py",
            "telemetry_fleet.py",
            "telemetry_uplink.py",
            "fleet_gateway.py",
            "trace_attribution.py",
            "trace_warehouse.py",
            "adaptive_budgeting.py",
        }
        found = {p.name for p in EXAMPLES.glob("*.py")}
        assert expected <= found
        for name in expected:
            text = (EXAMPLES / name).read_text()
            assert text.lstrip().startswith(("#!", '"""')), name
