"""Unit tests for the fault injectors (mechanics, not oracles)."""

import pytest

from repro.core.chain_runtime import Outcome
from repro.faults import (
    ClockDrift,
    ClockStep,
    ExecutorStall,
    GroundTruthRecorder,
    LatencySpike,
    LinkPartition,
    LossBurst,
    PtpHoldover,
    SilentSensor,
    StuckSensor,
    frame_window_ns,
)
from repro.perception import PerceptionStack, StackConfig
from repro.sim import msec


def build_stack(seed=11):
    return PerceptionStack(StackConfig(seed=seed))


def monitor_outcomes(stack, segment, first=0, last=10**9):
    monitor = stack.remote_monitors[segment]
    return [o for n, _lat, o in monitor.latencies if first <= n < last]


class TestBasics:
    def test_frame_window_ns(self):
        stack = build_stack()
        period = stack.config.period
        assert frame_window_ns(stack, 3, 5) == (3 * period, 6 * period)

    def test_arm_twice_raises(self):
        stack = build_stack()
        burst = LossBurst("link_12", 2, 4)
        burst.arm(stack)
        with pytest.raises(RuntimeError):
            burst.arm(stack)

    def test_unknown_targets_raise(self):
        stack = build_stack()
        with pytest.raises(ValueError):
            LossBurst("link_nope", 2, 4).arm(stack)
        with pytest.raises(ValueError):
            ClockStep("ecu9", 2, msec(1)).arm(stack)
        with pytest.raises(ValueError):
            ExecutorStall("nonsense_node", 2, msec(1)).arm(stack)
        with pytest.raises(ValueError):
            SilentSensor("left", 2, 4).arm(stack)

    def test_latency_spike_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LatencySpike("link_front", 2, 4, 0)


class TestNetworkFaults:
    def test_loss_burst_drops_and_causes_misses(self):
        stack = build_stack()
        burst = LossBurst("link_front", 6, 12)
        burst.arm(stack)
        stack.run(n_frames=20)
        assert burst.dropped >= 6
        assert burst.injections[0].kind == "loss_burst"
        outcomes = monitor_outcomes(stack, "s0_front", 6, 13)
        assert Outcome.MISS in outcomes

    def test_latency_spike_restores_base_latency(self):
        stack = build_stack()
        link = stack.link_front
        before = link.base_latency
        spike = LatencySpike("link_front", 6, 12, msec(15))
        spike.arm(stack)
        stack.run(n_frames=20)
        assert link.base_latency == before
        assert Outcome.MISS in monitor_outcomes(stack, "s0_front", 6, 13)

    def test_partition_covers_all_links(self):
        stack = build_stack()
        partition = LinkPartition(["link_front", "link_rear"], 6, 10)
        partition.arm(stack)
        stack.run(n_frames=16)
        assert partition.dropped >= 8
        assert len(partition.injections) == 2
        assert all(i.kind == "partition" for i in partition.injections)
        assert Outcome.MISS in monitor_outcomes(stack, "s0_front", 6, 11)
        assert Outcome.MISS in monitor_outcomes(stack, "s0_rear", 6, 11)


class TestClockFaults:
    def test_clock_drift_restores_rate_and_bounds_error(self):
        stack = build_stack()
        ecu1 = next(e for e in stack.ecus if e.name == "ecu1")
        original = ecu1.clock.drift_ppm
        drift = ClockDrift("ecu1", 4, 10, 15000.0)
        drift.arm(stack)
        assert drift.clock_error_bound() > stack.ptp.residual_error
        stack.run(n_frames=16)
        assert ecu1.clock.drift_ppm == original

    def test_clock_drift_never_steps_reading_backwards(self):
        """The rebase rule: changing the rate must not step the clock."""
        stack = build_stack()
        ecu1 = next(e for e in stack.ecus if e.name == "ecu1")
        readings = []
        period = stack.config.period

        def sample():
            readings.append(ecu1.now())
            if stack.sim.now < 14 * period:
                stack.sim.schedule_at(stack.sim.now + period // 4, sample)

        stack.sim.schedule_at(0, sample)
        ClockDrift("ecu1", 4, 10, -15000.0).arm(stack)
        stack.run(n_frames=16)
        assert readings == sorted(readings)

    def test_clock_step_moves_offset(self):
        stack = build_stack()
        step = ClockStep("ecu2", 4, msec(20))
        assert step.clock_error_bound() == msec(20)
        step.arm(stack)
        ecu2 = next(e for e in stack.ecus if e.name == "ecu2")
        offsets = {}
        period = stack.config.period
        stack.sim.schedule_at(
            3 * period, lambda: offsets.setdefault("before", ecu2.clock.offset)
        )
        stack.sim.schedule_at(
            4 * period + 1,
            lambda: offsets.setdefault("after", ecu2.clock.offset),
        )
        stack.run(n_frames=6)
        assert offsets["after"] - offsets["before"] == pytest.approx(
            msec(20), abs=msec(1)
        )

    def test_ptp_holdover_stops_and_resumes_sync(self):
        stack = build_stack()
        holdover = PtpHoldover(4, 14)
        holdover.arm(stack)
        assert holdover.clock_error_bound() >= stack.ptp.residual_error
        period = stack.config.period
        rounds = {}
        stack.sim.schedule_at(
            4 * period + 1, lambda: rounds.setdefault("at_start", stack.ptp.rounds)
        )
        stack.sim.schedule_at(
            15 * period - 1, lambda: rounds.setdefault("at_end", stack.ptp.rounds)
        )
        stack.run(n_frames=30)
        assert rounds["at_end"] == rounds["at_start"]  # no rounds in holdover
        assert stack.ptp.rounds > rounds["at_end"]  # sync resumed after


class TestComputeAndSensorFaults:
    def test_executor_stall_delays_s3(self):
        stack = build_stack()
        ExecutorStall("classifier", 6, msec(300)).arm(stack)
        stack.run(n_frames=16)
        local = stack.local_runtimes["s3_objects"]
        affected = [
            o for n, _lat, o in local.latencies
            if 6 <= n <= 10 and o is not Outcome.OK
        ]
        assert affected, "a 300 ms stall must blow the 100 ms s3 budget"

    def test_silent_sensor_suppresses_publications(self):
        stack = build_stack()
        truth = GroundTruthRecorder(stack)
        silent = SilentSensor("front", 6, 12)
        silent.arm(stack)
        stack.run(n_frames=18)
        assert silent.suppressed == list(range(6, 13))
        for n in range(6, 13):
            assert truth.segment_start("s0_front", n) is None
        assert truth.segment_start("s0_front", 5) is not None
        assert truth.segment_start("s0_front", 13) is not None

    def test_stuck_sensor_publishes_stale_frames(self):
        stack = build_stack()
        truth = GroundTruthRecorder(stack)
        stuck = StuckSensor("rear", 6, 12)
        stuck.arm(stack)
        stack.run(n_frames=18)
        assert stuck.held_frames == list(range(6, 13))
        # Stale republications carry the held frame's old index, so no
        # fresh activation starts in the window...
        for n in range(7, 13):
            assert truth.segment_start("s0_rear", n) is None
        # ...and the monitor times out just like silence.
        assert Outcome.MISS in monitor_outcomes(stack, "s0_rear", 7, 13)
