"""Property-based differential testing of the two uplink protocols.

The pipelined windowed-ARQ client must be *observationally identical*
to the stop-and-wait baseline: under any mix of drops, duplicates,
reordering, corruption, and partitions, both converge to the exact
same fleet store content (byte-identical digest) as a fault-free
direct ingest.  Window invariants ride along on every step: at most
``window_frames`` frames in flight, and the cumulative ack mark never
moves backwards.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import ServiceConfig, TelemetryService
from repro.telemetry.records import RecordKind, TelemetryRecord
from repro.telemetry.uplink import (
    AdversarialChannel,
    ChannelFaultPlan,
    RetryingUplinkClient,
    UplinkClientConfig,
    UplinkIngestor,
    WalConfig,
    WalSpooler,
    WindowedClientConfig,
    WindowedUplinkClient,
    decode_envelope,
)

N_RECORDS = 48
MAX_STEPS = 4000


def _records():
    return [
        TelemetryRecord(
            kind=RecordKind.SEGMENT, source="veh00", chain="c",
            segment="c/s0", activation=seq, latency_ns=10 + seq,
            verdict="ok", timestamp_ns=(seq + 1) * 1000, seq=seq,
        )
        for seq in range(N_RECORDS)
    ]


def _run_protocol(windowed: bool, plan: ChannelFaultPlan, seed: int) -> str:
    """Records -> spool -> faulty channel -> ingest; returns the digest."""
    from repro.telemetry.uplink.ingest import store_digest

    records = _records()
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        ingestor = UplinkIngestor(
            TelemetryService(ServiceConfig()),
            root / "fleet", fsync="never", checkpoint_every=None,
        )
        spooler = WalSpooler.open_fresh(
            WalConfig(root / "veh00", fsync="never"), "veh00"
        )
        spooler.append_many(records)
        client = None
        down = AdversarialChannel(
            "down",
            lambda frame, now: client.on_ack(
                decode_envelope(frame.payload), now
            ),
            plan=plan, seed=seed,
        )

        def deliver_up(frame, now):
            ack = ingestor.handle_payload(frame.payload, now)
            if ack:  # corrupt payloads produce no ack
                down.send(ack, "fleet", frame.src, now)

        up = AdversarialChannel("up", deliver_up, plan=plan, seed=seed + 1)
        send = lambda payload, now: up.send(payload, "veh00", "fleet", now)
        if windowed:
            config = WindowedClientConfig(
                frame_records=8, window_frames=4, ack_timeout=8, seed=seed
            )
            client = WindowedUplinkClient(spooler, send, config)
        else:
            client = RetryingUplinkClient(
                spooler, send,
                UplinkClientConfig(batch_records=8, ack_timeout=8, seed=seed),
            )
        ack_marks = [spooler.ack_mark]
        for now in range(MAX_STEPS):
            client.tick(now)
            up.step(now)
            down.step(now)
            if windowed:
                assert len(client._flight) <= config.window_frames, \
                    "window overrun"
            ack_marks.append(spooler.ack_mark)
            if client.idle():
                break
        assert client.idle(), "protocol failed to converge under faults"
        assert ack_marks == sorted(ack_marks), \
            "cumulative ack mark went backwards"
        assert spooler.pending == 0
        ingestor.service.drain()
        return store_digest(ingestor.service)


@st.composite
def fault_plans(draw):
    partitions = ()
    if draw(st.booleans()):
        start = draw(st.integers(min_value=0, max_value=60))
        length = draw(st.integers(min_value=1, max_value=80))
        partitions = ((start, start + length),)
    return ChannelFaultPlan(
        drop_prob=draw(st.floats(0.0, 0.35)),
        dup_prob=draw(st.floats(0.0, 0.3)),
        reorder_prob=draw(st.floats(0.0, 0.3)),
        corrupt_prob=draw(st.floats(0.0, 0.2)),
        jitter_steps=draw(st.integers(0, 3)),
        partitions=partitions,
    )


class TestProtocolEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(plan=fault_plans(), seed=st.integers(0, 2**16))
    def test_windowed_equals_stop_and_wait_byte_identical(self, plan, seed):
        reference = TelemetryService(ServiceConfig())
        reference.ingest_many(_records())
        reference.drain()
        from repro.telemetry.uplink.ingest import store_digest

        expected = store_digest(reference)
        assert _run_protocol(True, plan, seed) == expected
        assert _run_protocol(False, plan, seed) == expected

    def test_clean_channel_smoke(self):
        plan = ChannelFaultPlan()
        assert _run_protocol(True, plan, 7) == _run_protocol(False, plan, 7)
