"""Property-based tests of simulator invariants.

Random task sets are executed and global invariants checked:
- priority inversion freedom: no ready thread ever outranks a running one
  at a scheduling quiescence point;
- work conservation: total CPU time charged equals the busy time cores
  accumulated;
- determinism: identical seeds yield identical schedules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    Compute,
    MulticoreScheduler,
    Simulator,
    Sleep,
    msec,
    usec,
)
from repro.sim.threads import ThreadState


task_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=10),      # priority
        st.integers(min_value=1, max_value=5),       # number of jobs
        st.integers(min_value=100, max_value=5000),  # compute us per job
        st.integers(min_value=0, max_value=3000),    # sleep us between jobs
    ),
    min_size=1,
    max_size=6,
)


def build(sim, sched, tasks):
    threads = []
    for prio, jobs, compute_us, sleep_us in tasks:
        def body(_, jobs=jobs, compute_us=compute_us, sleep_us=sleep_us):
            for _j in range(jobs):
                yield Compute(usec(compute_us))
                if sleep_us:
                    yield Sleep(usec(sleep_us))

        threads.append(sched.spawn(f"t{len(threads)}", body, priority=prio))
    return threads


class TestSchedulerProperties:
    @given(task_strategy, st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_all_work_completes(self, tasks, n_cores):
        sim = Simulator(seed=1)
        sched = MulticoreScheduler(sim, n_cores=n_cores)
        threads = build(sim, sched, tasks)
        sim.run()
        assert all(t.state is ThreadState.DONE for t in threads)
        for thread, (prio, jobs, compute_us, _s) in zip(threads, tasks):
            assert thread.total_cpu_time == jobs * usec(compute_us)

    @given(task_strategy, st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_work_conservation(self, tasks, n_cores):
        sim = Simulator(seed=1)
        sched = MulticoreScheduler(sim, n_cores=n_cores)
        threads = build(sim, sched, tasks)
        sim.run()
        charged = sum(t.total_cpu_time for t in threads)
        busy = sum(core.busy_time for core in sched.cores)
        assert charged == busy

    @given(task_strategy, st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_no_ready_thread_outranks_running(self, tasks, n_cores):
        sim = Simulator(seed=1)
        sched = MulticoreScheduler(sim, n_cores=n_cores)
        build(sim, sched, tasks)
        violations = []

        def check():
            running = [c.thread for c in sched.cores if c.thread is not None]
            ready = [t for t in sched._ready if t.state is ThreadState.READY]
            if running and ready and len(running) == len(sched.cores):
                if max(t.priority for t in ready) > min(
                    t.priority for t in running
                ):
                    violations.append(sim.now)

        # Sample the invariant at quiescence points (after each event).
        for t_us in range(0, 50_000, 500):
            sim.schedule_at(usec(t_us), check, priority=10**6)
        sim.run()
        assert violations == []

    @given(task_strategy)
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, tasks):
        def run_once():
            sim = Simulator(seed=7)
            sched = MulticoreScheduler(sim, n_cores=2)
            threads = build(sim, sched, tasks)
            trace = []
            sched.observers.append(
                lambda kind, t: trace.append((sim.now, kind, t.name))
            )
            sim.run()
            return trace, sim.now

        first = run_once()
        second = run_once()
        assert first == second

    @given(
        st.lists(st.integers(min_value=1, max_value=100), min_size=2, max_size=8)
    )
    @settings(max_examples=50, deadline=None)
    def test_single_core_priority_completion_order(self, priorities):
        """On one core with simultaneous release and no sleeping,
        strictly higher-priority threads finish no later than lower."""
        sim = Simulator(seed=1)
        sched = MulticoreScheduler(sim, n_cores=1)
        finish = {}

        def make(name, prio):
            def body(_):
                yield Compute(usec(100))
                finish[name] = (sim.now, prio)
            return body

        # Release all at t=1ms (so spawn order does not pre-run anyone).
        threads = []
        for i, prio in enumerate(priorities):
            def starter(name=f"t{i}", prio=prio):
                sched.spawn(name, make(name, prio), priority=prio)
            sim.schedule_at(msec(1), starter)
        sim.run()
        for (t_a, p_a) in finish.values():
            for (t_b, p_b) in finish.values():
                if p_a > p_b:
                    assert t_a <= t_b
