"""Unit tests for the simulation kernel (event queue, time, RNG streams)."""

import pytest

from repro.sim import Simulator, msec, nsec, sec, usec
from repro.sim.kernel import SimulationError, fmt_time


class TestTimeHelpers:
    def test_usec(self):
        assert usec(1) == 1_000
        assert usec(2.5) == 2_500

    def test_msec(self):
        assert msec(1) == 1_000_000
        assert msec(0.001) == 1_000

    def test_sec(self):
        assert sec(1) == 1_000_000_000
        assert sec(0.25) == 250_000_000

    def test_nsec_rounds(self):
        assert nsec(1.6) == 2

    def test_fmt_time_units(self):
        assert fmt_time(5) == "5ns"
        assert fmt_time(usec(3)) == "3.000us"
        assert fmt_time(msec(7)) == "7.000ms"
        assert fmt_time(sec(2)) == "2.000000s"


class TestScheduling:
    def test_event_fires_at_scheduled_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(msec(10), lambda: fired.append(sim.now))
        sim.run()
        assert fired == [msec(10)]
        assert sim.now == msec(10)

    def test_schedule_after_is_relative(self):
        sim = Simulator()
        times = []
        sim.schedule_at(msec(5), lambda: sim.schedule_after(msec(3), lambda: times.append(sim.now)))
        sim.run()
        assert times == [msec(8)]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(msec(3), order.append, "c")
        sim.schedule_at(msec(1), order.append, "a")
        sim.schedule_at(msec(2), order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_ties_broken_by_priority_then_insertion(self):
        sim = Simulator()
        order = []
        sim.schedule_at(msec(1), order.append, "late", priority=5)
        sim.schedule_at(msec(1), order.append, "first", priority=0)
        sim.schedule_at(msec(1), order.append, "second", priority=0)
        sim.run()
        assert order == ["first", "second", "late"]

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_at(msec(1), fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        sim.schedule_at(msec(5), lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(msec(1), lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_after(-1, lambda: None)

    def test_run_until_stops_but_preserves_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(msec(1), fired.append, 1)
        sim.schedule_at(msec(10), fired.append, 2)
        sim.run(until=msec(5))
        assert fired == [1]
        assert sim.now == msec(5)
        sim.run()
        assert fired == [1, 2]

    def test_run_until_advances_time_even_with_no_events(self):
        sim = Simulator()
        sim.run(until=msec(100))
        assert sim.now == msec(100)

    def test_event_at_exactly_until_still_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(msec(5), fired.append, "edge")
        sim.run(until=msec(5))
        assert fired == ["edge"]

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule_after(1, loop)

        sim.schedule_after(1, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_pending_events_counts_uncancelled(self):
        sim = Simulator()
        a = sim.schedule_at(1, lambda: None)
        sim.schedule_at(2, lambda: None)
        a.cancel()
        assert sim.pending_events == 1


class TestRngStreams:
    def test_streams_are_deterministic_across_runs(self):
        a = Simulator(seed=42).rng("x").integers(0, 1 << 30, 10)
        b = Simulator(seed=42).rng("x").integers(0, 1 << 30, 10)
        assert list(a) == list(b)

    def test_streams_differ_by_name(self):
        sim = Simulator(seed=42)
        a = sim.rng("x").integers(0, 1 << 30, 10)
        b = sim.rng("y").integers(0, 1 << 30, 10)
        assert list(a) != list(b)

    def test_streams_differ_by_seed(self):
        a = Simulator(seed=1).rng("x").integers(0, 1 << 30, 10)
        b = Simulator(seed=2).rng("x").integers(0, 1 << 30, 10)
        assert list(a) != list(b)

    def test_same_stream_object_is_cached(self):
        sim = Simulator()
        assert sim.rng("x") is sim.rng("x")


class TestTraceHooks:
    def test_hooks_receive_name_time_fields(self):
        sim = Simulator()
        seen = []
        sim.add_trace_hook(lambda name, t, fields: seen.append((name, t, fields)))
        sim.schedule_at(msec(2), lambda: sim.emit_trace("tick", value=7))
        sim.run()
        assert seen == [("tick", msec(2), {"value": 7})]
