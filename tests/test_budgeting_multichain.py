"""Tests for joint budgeting of chains with shared segments."""

import pytest

from repro.budgeting import (
    BudgetingProblem,
    ChainTrace,
    SegmentTrace,
    reconcile_independent,
    solve_independent,
    solve_joint,
)
from repro.core import EventChain, MKConstraint
from repro.core.segments import local_segment, remote_segment


def make_two_chains(budget_a=200, budget_b=200, m=1, k=4):
    """Two chains sharing their last segment ('shared'):

    chain A: a0 -> shared     chain B: b0 -> shared
    """
    a0 = remote_segment("a0", "ta", "ecuA", "ecuC")
    b0 = remote_segment("b0", "tb", "ecuB", "ecuC")
    shared_a = local_segment("shared", "ecuC", "ta", "out")
    shared_a.start = a0.end
    shared_b = local_segment("shared", "ecuC", "tb", "out")
    shared_b.start = b0.end
    chain_a = EventChain(
        name="A", segments=[a0, shared_a], period=1000,
        budget_e2e=budget_a, budget_seg=150, mk=MKConstraint(m, k),
    )
    chain_b = EventChain(
        name="B", segments=[b0, shared_b], period=1000,
        budget_e2e=budget_b, budget_seg=150, mk=MKConstraint(m, k),
    )
    return chain_a, chain_b


def make_problems(lat_a0, lat_b0, lat_shared_a, lat_shared_b=None,
                  propagation=(1, 1), **kw):
    chain_a, chain_b = make_two_chains(**kw)
    trace_a = ChainTrace("A")
    trace_a.add(SegmentTrace("a0", lat_a0))
    trace_a.add(SegmentTrace("shared", lat_shared_a))
    trace_b = ChainTrace("B")
    trace_b.add(SegmentTrace("b0", lat_b0))
    trace_b.add(SegmentTrace("shared", lat_shared_b or lat_shared_a))
    return (
        BudgetingProblem(chain_a, trace_a, propagation=list(propagation)),
        BudgetingProblem(chain_b, trace_b, propagation=list(propagation)),
    )


class TestReconcileIndependent:
    def test_non_conflicting_solutions_merge(self):
        # p=0 problems so solve_independent's model matches the check.
        problems = make_problems(
            lat_a0=[10, 12, 11, 10],
            lat_b0=[20, 22, 21, 20],
            lat_shared_a=[30, 31, 30, 32],
            propagation=(0, 0),
        )
        solutions = [solve_independent(p) for p in problems]
        merged = reconcile_independent(problems, solutions)
        assert merged.schedulable
        assert set(merged.deadlines) == {"a0", "b0", "shared"}
        # Merged deadline of the shared segment covers both chains.
        for problem in problems:
            assignment = [merged.deadlines[n] for n in problem.order]
            assert problem.check(assignment).feasible

    def test_unschedulable_chain_propagates(self):
        problems = make_problems(
            lat_a0=[500] * 4,  # beyond B_seg=150 always
            lat_b0=[20] * 4,
            lat_shared_a=[30] * 4,
            m=0,
        )
        solutions = [solve_independent(p) for p in problems]
        merged = reconcile_independent(problems, solutions)
        assert not merged.schedulable
        assert "unschedulable alone" in merged.reason

    def test_budget_conflict_detected(self):
        """Each chain is schedulable alone, but the merged maximum of
        the shared segment blows chain A's tighter budget."""
        problems = make_problems(
            lat_a0=[100, 100, 100, 100],
            lat_b0=[60, 60, 60, 60],
            lat_shared_a=[40, 40, 40, 40],
            lat_shared_b=[140, 140, 140, 140],  # B observed slower shared runs
            budget_a=180,  # A alone: 100 + 40 = 140 <= 180
            budget_b=250,  # B alone: 60 + 140 = 200 <= 250
            m=0,
            propagation=(0, 0),
        )
        solutions = [solve_independent(p) for p in problems]
        assert all(s.schedulable for s in solutions)
        merged = reconcile_independent(problems, solutions)
        # Merged shared = max(40, 140) = 140 -> A: 100 + 140 > 180.
        assert not merged.schedulable
        assert "solve_joint" in merged.reason


class TestSolveJoint:
    def test_matches_reconcile_when_no_conflict(self):
        problems = make_problems(
            lat_a0=[10, 12, 11, 10],
            lat_b0=[20, 22, 21, 20],
            lat_shared_a=[30, 31, 30, 32],
            propagation=(0, 0),
        )
        solutions = [solve_independent(p) for p in problems]
        merged = reconcile_independent(problems, solutions)
        joint = solve_joint(problems)
        assert joint.schedulable
        assert joint.total <= merged.total

    def test_joint_finds_tradeoff_reconcile_misses(self):
        """With m=1, the shared segment can stay small by letting some
        activations miss; the joint search balances both budgets."""
        problems = make_problems(
            lat_a0=[10, 10, 80, 10, 10, 10],
            lat_b0=[10, 10, 10, 80, 10, 10],
            lat_shared_a=[30, 90, 30, 30, 30, 30],
            m=1,
            k=6,
            budget_a=120,
            budget_b=120,
        )
        joint = solve_joint(problems)
        assert joint.schedulable
        for problem in problems:
            assignment = [joint.deadlines[n] for n in problem.order]
            assert problem.check(assignment).feasible
        assert joint.total <= 120 + 120  # sanity

    def test_infeasible_joint_reported(self):
        problems = make_problems(
            lat_a0=[100] * 4,
            lat_b0=[100] * 4,
            lat_shared_a=[100] * 4,
            budget_a=120,  # 100 + 100 > 120 under m=0
            budget_b=120,
            m=0,
        )
        joint = solve_joint(problems)
        assert not joint.schedulable

    def test_shared_deadline_is_single_valued(self):
        problems = make_problems(
            lat_a0=[10] * 4,
            lat_b0=[20] * 4,
            lat_shared_a=[30, 40, 35, 30],
            lat_shared_b=[50, 45, 55, 50],
            m=0,
        )
        joint = solve_joint(problems)
        assert joint.schedulable
        # The shared segment has one deadline covering both traces:
        # >= max of both traces' requirements under m=0.
        assert joint.deadlines["shared"] >= 55

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            solve_joint([])

    def test_joint_optimality_vs_bruteforce(self):
        import itertools

        problems = make_problems(
            lat_a0=[10, 30, 10, 10],
            lat_b0=[15, 15, 35, 15],
            lat_shared_a=[20, 20, 20, 45],
            m=1,
            k=3,
            budget_a=100,
            budget_b=100,
        )
        joint = solve_joint(problems)
        # Brute force over unioned candidates.
        names = ["a0", "shared", "b0"]
        cand = {
            "a0": problems[0].candidates(0),
            "b0": problems[1].candidates(0),
            "shared": sorted(
                set(problems[0].candidates(1)) | set(problems[1].candidates(1))
            ),
        }
        best = None
        for combo in itertools.product(*(cand[n] for n in names)):
            deadlines = dict(zip(names, combo))
            ok = all(
                p.check([deadlines[n] for n in p.order]).feasible
                for p in problems
            )
            if ok and (best is None or sum(combo) < best):
                best = sum(combo)
        if best is None:
            assert not joint.schedulable
        else:
            assert joint.schedulable
            assert joint.total == best
