"""Unit + property tests for the budgeting CSP and its solvers."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.budgeting import (
    BudgetingProblem,
    ChainTrace,
    SegmentTrace,
    distribute_slack,
    minimal_deadline,
    miss_series,
    propagated_window_misses,
    solve_branch_and_bound,
    solve_greedy_propagated,
    solve_independent,
    window_miss_profile,
)
from repro.core import MKConstraint, EventChain
from repro.core.segments import local_segment, remote_segment
from repro.core.weakly_hard import max_window_misses


def make_chain(n_segments=3, period=100, budget_e2e=250, budget_seg=100, m=1, k=5):
    """A gap-free alternating remote/local chain for budgeting tests."""
    segments = []
    for i in range(n_segments):
        if i % 2 == 0:
            seg = remote_segment(f"s{i}", f"t{i}", "ecuA", "ecuB")
        else:
            seg = local_segment(f"s{i}", "ecuB", f"t{i-1}", f"t{i}")
        segments.append(seg)
    # Stitch boundaries so consecutive segments share their event point.
    for earlier, later in zip(segments, segments[1:]):
        later.start = earlier.end
    return EventChain(
        name="chain",
        segments=segments,
        period=period,
        budget_e2e=budget_e2e,
        budget_seg=budget_seg,
        mk=MKConstraint(m, k),
    )


def make_problem(latencies_by_segment, d_ex=0, propagation=None, **chain_kw):
    chain = make_chain(n_segments=len(latencies_by_segment), **chain_kw)
    trace = ChainTrace("chain")
    for seg, lats in zip(chain.segments, latencies_by_segment):
        trace.add(SegmentTrace(seg.name, list(lats), d_ex=d_ex))
    return BudgetingProblem(chain, trace, propagation=propagation)


class TestSegmentTrace:
    def test_extended_adds_dex(self):
        trace = SegmentTrace("s", [10, 20, 30], d_ex=5)
        assert trace.extended == [15, 25, 35]
        assert trace.maximum == 30
        assert trace.maximum_extended == 35

    def test_percentile(self):
        trace = SegmentTrace("s", list(range(101)))
        assert trace.percentile(50) == 50

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SegmentTrace("s", [-1])
        with pytest.raises(ValueError):
            SegmentTrace("s", [1], d_ex=-1)


class TestChainTrace:
    def test_aligned_truncates_to_shortest(self):
        trace = ChainTrace("c")
        trace.add(SegmentTrace("a", [1, 2, 3, 4]))
        trace.add(SegmentTrace("b", [5, 6]))
        aligned = trace.aligned()
        assert len(aligned["a"]) == 2
        assert aligned["a"].latencies == [1, 2]

    def test_duplicate_rejected(self):
        trace = ChainTrace("c")
        trace.add(SegmentTrace("a", [1]))
        with pytest.raises(ValueError):
            trace.add(SegmentTrace("a", [2]))

    def test_matrix_order(self):
        trace = ChainTrace("c")
        trace.add(SegmentTrace("a", [1], d_ex=1))
        trace.add(SegmentTrace("b", [2], d_ex=1))
        assert trace.extended_matrix(["b", "a"]) == [[3], [2]]

    def test_matrix_missing_segment(self):
        trace = ChainTrace("c")
        with pytest.raises(KeyError):
            trace.extended_matrix(["zzz"])


class TestWindows:
    def test_miss_series(self):
        assert miss_series([5, 15, 25], 10) == [False, True, True]

    def test_window_profile(self):
        misses = [True, False, True, True, False]
        assert window_miss_profile(misses, 2) == [1, 1, 2, 1]
        assert window_miss_profile(misses, 5) == [3]
        assert window_miss_profile(misses, 10) == [3]

    def test_profile_empty(self):
        assert window_miss_profile([], 3) == [0]

    def test_propagated_last_dominates_with_full_propagation(self):
        matrix = [
            [True, False, False, False],
            [False, True, False, False],
            [False, False, True, False],
        ]
        worst = propagated_window_misses(matrix, k=4, propagation=[1, 1, 1])
        assert worst == [1, 2, 3]

    def test_no_propagation_counts_only_own(self):
        matrix = [
            [True, True, True, True],
            [False, False, False, True],
        ]
        worst = propagated_window_misses(matrix, k=2, propagation=[0, 0])
        assert worst == [2, 1]

    def test_invalid_propagation_factor(self):
        with pytest.raises(ValueError):
            propagated_window_misses([[True]], 1, [2])

    @given(
        st.lists(
            st.lists(st.booleans(), min_size=6, max_size=6),
            min_size=1,
            max_size=4,
        ),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=100)
    def test_propagated_matches_naive(self, matrix, k):
        propagation = [1] * len(matrix)
        worst = propagated_window_misses(matrix, k, propagation)
        n = len(matrix[0])
        starts = range(max(1, n - k + 1))
        for i in range(len(matrix)):
            naive = 0
            for s in starts:
                total = sum(matrix[i][s : s + k])
                for l in range(i):
                    total += sum(matrix[l][s : s + k])
                naive = max(naive, total)
            assert worst[i] == naive


class TestMinimalDeadline:
    def test_hard_constraint_takes_max(self):
        assert minimal_deadline([10, 40, 20], k=3, m_allowed=0) == 40

    def test_m_allows_skipping_outliers(self):
        # One outlier per window of 5 tolerable with m=1.
        lats = [10, 10, 10, 10, 90] * 4
        assert minimal_deadline(lats, k=5, m_allowed=1) == 10

    def test_clustered_outliers_force_higher_deadline(self):
        lats = [10, 90, 90, 10, 10, 10, 10, 10, 10, 10]
        # Two adjacent outliers: with m=1, k=5 the deadline must cover them.
        assert minimal_deadline(lats, k=5, m_allowed=1) == 90

    def test_upper_bound_infeasible_returns_none(self):
        assert minimal_deadline([100, 100, 100], k=3, m_allowed=0, upper=50) is None

    def test_all_missing_allowed_when_m_equals_k(self):
        assert minimal_deadline([100, 200], k=2, m_allowed=2) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            minimal_deadline([], 1, 0)

    @given(
        st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=150)
    def test_minimality_property(self, lats, k, m):
        m = min(m, k)
        d = minimal_deadline(lats, k, m)
        assert d is not None  # no upper bound -> max(lats) always works
        # Feasible at d.
        assert max_window_misses(miss_series(lats, d), k) <= m
        # Infeasible at any smaller candidate (check d-1).
        if d > 1:
            assert max_window_misses(miss_series(lats, d - 1), k) > m


class TestSolveIndependent:
    def test_simple_instance(self):
        problem = make_problem(
            [[10, 10, 80, 10, 10], [20, 20, 20, 20, 90]],
            budget_e2e=60, budget_seg=100, m=1, k=5,
        )
        result = solve_independent(problem)
        assert result.schedulable
        assert result.deadlines == [10, 20]
        assert problem.check(result.deadlines).feasible is False or True

    def test_unschedulable_when_budget_too_tight(self):
        problem = make_problem(
            [[50, 50, 50], [60, 60, 60]],
            budget_e2e=100, budget_seg=100, m=0, k=3,
        )
        result = solve_independent(problem)
        assert not result.schedulable
        assert "exceeds" in result.reason

    def test_unschedulable_when_bseg_too_tight(self):
        problem = make_problem(
            [[150, 150, 150]], budget_e2e=1000, budget_seg=100, m=0, k=3
        )
        result = solve_independent(problem)
        assert not result.schedulable
        assert "B_seg" in result.reason

    def test_independent_result_feasible_with_p0(self):
        problem = make_problem(
            [[10, 80, 10, 10, 10], [90, 20, 20, 20, 20]],
            budget_e2e=150, budget_seg=100, m=1, k=5,
            propagation=[0, 0],
        )
        result = solve_independent(problem)
        assert result.schedulable
        assert problem.check(result.deadlines).feasible


class TestSolvePropagated:
    def test_propagation_forces_larger_deadlines_than_independent(self):
        """With p=1, misses of different segments in one window couple:
        independent minima may violate Eq. (5)."""
        lats_a = [10, 10, 80, 10, 10, 10]
        lats_b = [20, 20, 20, 90, 20, 20]
        problem_p1 = make_problem(
            [lats_a, lats_b], budget_e2e=1000, budget_seg=200, m=1, k=5,
            propagation=[1, 1],
        )
        independent = solve_independent(problem_p1)
        # Independent minima: [10, 20] -> two misses in one window of 5.
        assert not problem_p1.check(independent.deadlines).feasible
        exact = solve_branch_and_bound(problem_p1)
        assert exact.schedulable
        assert problem_p1.check(exact.deadlines).feasible
        assert exact.total > independent.total

    def test_greedy_finds_feasible_solution(self):
        lats_a = [10, 10, 80, 10, 10, 10]
        lats_b = [20, 20, 20, 90, 20, 20]
        problem = make_problem(
            [lats_a, lats_b], budget_e2e=120, budget_seg=100, m=1, k=5,
            propagation=[1, 1],
        )
        result = solve_greedy_propagated(problem)
        assert result.schedulable
        assert problem.check(result.deadlines).feasible
        assert result.total <= 120

    def test_branch_and_bound_matches_bruteforce(self):
        lats = [
            [10, 35, 10, 22, 10, 10],
            [15, 15, 40, 15, 28, 15],
        ]
        problem = make_problem(
            lats, budget_e2e=60, budget_seg=50, m=1, k=4, propagation=[1, 1]
        )
        exact = solve_branch_and_bound(problem)
        # Brute force over all candidate combinations.
        best = None
        for combo in itertools.product(
            problem.candidates(0), problem.candidates(1)
        ):
            report = problem.check(list(combo))
            if report.feasible and (best is None or sum(combo) < best):
                best = sum(combo)
        if best is None:
            assert not exact.schedulable
        else:
            assert exact.schedulable
            assert exact.total == best

    @given(
        st.lists(
            st.lists(st.integers(min_value=1, max_value=30), min_size=5, max_size=8),
            min_size=2,
            max_size=3,
        ),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_bnb_optimality_property(self, lats, m, k):
        m = min(m, k)
        lengths = {len(l) for l in lats}
        n = min(lengths)
        lats = [l[:n] for l in lats]
        budget_seg = 40
        budget_e2e = 40 * len(lats)
        problem = make_problem(
            lats, budget_e2e=budget_e2e, budget_seg=budget_seg, m=m, k=k,
            propagation=[1] * len(lats),
        )
        exact = solve_branch_and_bound(problem)
        best = None
        for combo in itertools.product(*[problem.candidates(i) for i in range(len(lats))]):
            report = problem.check(list(combo))
            if report.feasible and (best is None or sum(combo) < best):
                best = sum(combo)
        if best is None:
            assert not exact.schedulable
        else:
            assert exact.schedulable and exact.total == best

    def test_greedy_never_beats_exact(self):
        lats = [
            [10, 35, 10, 22, 10, 10, 18, 10],
            [15, 15, 40, 15, 28, 15, 15, 24],
        ]
        problem = make_problem(
            lats, budget_e2e=70, budget_seg=60, m=1, k=4, propagation=[1, 1]
        )
        greedy = solve_greedy_propagated(problem)
        exact = solve_branch_and_bound(problem)
        if greedy.schedulable and exact.schedulable:
            assert exact.total <= greedy.total


class TestMonitoredSplit:
    def test_dmon_is_d_minus_dex(self):
        problem = make_problem([[10, 20], [30, 40]], d_ex=5, m=0, k=2,
                               budget_e2e=200, budget_seg=100)
        result = solve_independent(problem)
        monitored = result.as_monitored(problem)
        # d = max extended = raw max + 5; d_mon = d - 5 = raw max.
        assert monitored == {"s0": 20, "s1": 40}

    def test_zero_monitored_budget_rejected(self):
        problem = make_problem([[1]], d_ex=100, m=1, k=1,
                               budget_e2e=500, budget_seg=200)
        with pytest.raises(ValueError):
            problem.monitored_deadlines([100])


class TestDistribution:
    def test_none_keeps_minimal(self):
        assert distribute_slack([10, 20], 100, 50, strategy="none") == [10, 20]

    def test_equal_splits_evenly(self):
        result = distribute_slack([10, 20], 50, 100, strategy="equal")
        assert sum(result) == 50
        assert result == [20, 30]

    def test_proportional(self):
        result = distribute_slack([10, 30], 80, 100, strategy="proportional")
        assert sum(result) == 80
        assert result[1] - 30 == 3 * (result[0] - 10)

    def test_bseg_cap_respected(self):
        result = distribute_slack([40, 10], 100, 45, strategy="equal")
        assert all(d <= 45 for d in result)
        assert sum(result) <= 100

    def test_weighted(self):
        result = distribute_slack([10, 10], 40, 100, strategy="weighted", weights=[1, 3])
        assert sum(result) == 40
        assert result == [15, 25]

    def test_overbudget_rejected(self):
        with pytest.raises(ValueError):
            distribute_slack([60, 60], 100, 100)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            distribute_slack([1], 10, 10, strategy="magic")

    @given(
        st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=5),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=100)
    def test_distribution_invariants(self, deadlines, extra):
        budget_seg = 60
        budget_e2e = sum(deadlines) + extra
        for strategy in ("none", "equal", "proportional"):
            result = distribute_slack(
                deadlines, budget_e2e, budget_seg, strategy=strategy
            )
            assert len(result) == len(deadlines)
            assert sum(result) <= budget_e2e
            assert all(r >= d for r, d in zip(result, deadlines))
            assert all(r <= max(budget_seg, d) for r, d in zip(result, deadlines))
