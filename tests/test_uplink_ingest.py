"""Fleet-side ingestion: dedup watermark exactly-once property,
append-before-ack durability, checkpoint + WAL-replay recovery."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.records import (
    RecordKind,
    SchemaVersionError,
    TelemetryRecord,
)
from repro.telemetry.service import ServiceConfig, TelemetryService
from repro.telemetry.store import StoreConfig
from repro.telemetry.uplink.ingest import (
    CHECKPOINT_SCHEMA,
    DedupWatermark,
    UplinkIngestor,
    store_digest,
)
from repro.telemetry.uplink.transport import (
    decode_envelope,
    encode_batch,
    encode_envelope,
)


def _rec(source, seq, miss=False):
    return TelemetryRecord(
        kind=RecordKind.CHAIN, source=source, chain="c",
        activation=seq, verdict="miss" if miss else "ok",
        timestamp_ns=(seq + 1) * 100, seq=seq,
    )


def _service():
    return TelemetryService(ServiceConfig(
        store=StoreConfig(mk_by_chain={"c": (2, 10)})
    ))


class TestDedupWatermark:
    def test_admits_once_then_duplicates(self):
        dedup = DedupWatermark()
        assert dedup.admit(0) is True
        assert dedup.admit(0) is False
        assert dedup.watermark == 0
        assert dedup.admitted == 1
        assert dedup.duplicates == 1

    def test_watermark_sweeps_contiguous_prefix(self):
        dedup = DedupWatermark()
        for seq in (2, 0, 3):
            dedup.admit(seq)
        assert dedup.watermark == 0
        assert dedup.seen == {2, 3}
        dedup.admit(1)
        assert dedup.watermark == 3
        assert dedup.seen == set()

    def test_advance_to_settles_the_window(self):
        dedup = DedupWatermark()
        dedup.admit(5)
        dedup.advance_to(5)
        assert dedup.watermark == 5
        assert dedup.seen == set()
        # Everything at or below the watermark is a duplicate now.
        assert dedup.admit(3) is False
        # A stale advance is a no-op.
        dedup.advance_to(2)
        assert dedup.watermark == 5

    def test_advance_to_sweeps_through_settled_seqs_above(self):
        # Regression: seqs settled out of order above a hole must fold
        # into the watermark when advance_to jumps to the hole's edge,
        # or a windowed client whose remaining records were all
        # shed-announced (never re-offered) deadlocks forever.
        dedup = DedupWatermark()
        for seq in (28, 29, 30, 31):
            dedup.admit(seq)
        assert dedup.watermark == -1
        dedup.advance_to(27)  # floor probe: seqs <= 27 will never come
        assert dedup.watermark == 31
        assert dedup.seen == set()

    def test_from_json_normalizes_pre_sweep_state(self):
        restored = DedupWatermark.from_json(
            {"watermark": 27, "seen": [28, 29, 31]}
        )
        assert restored.watermark == 29
        assert restored.seen == {31}

    def test_snapshot_round_trip(self):
        dedup = DedupWatermark()
        for seq in (0, 1, 5, 9):
            dedup.admit(seq)
        dedup.admit(5)
        restored = DedupWatermark.from_json(
            json.loads(json.dumps(dedup.to_json()))
        )
        assert restored.watermark == dedup.watermark
        assert restored.seen == dedup.seen
        assert restored.admitted == dedup.admitted
        assert restored.duplicates == dedup.duplicates
        assert restored.admit(5) is False
        assert restored.admit(6) is True

    # ------------------------------------------------------------------
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("offer"), st.integers(0, 25)),
                st.tuples(st.just("advance"), st.integers(0, 25)),
            ),
            max_size=150,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_exactly_once_under_any_interleaving(self, ops):
        """Any interleaving of drops / duplicates / reorders (modelled
        as arbitrary offer sequences) admits each seq at most once, and
        never after a settle covered it -- so duplicates can never
        double-count downstream (m,k) misses."""
        dedup = DedupWatermark()
        admitted = []
        model_admitted = set()
        model_settled = -1
        for op, value in ops:
            if op == "offer":
                expect = value > model_settled and value not in model_admitted
                got = dedup.admit(value)
                assert got is expect
                if got:
                    model_admitted.add(value)
                    admitted.append(value)
            else:
                dedup.advance_to(value)
                model_settled = max(model_settled, value)
        assert len(admitted) == len(set(admitted))
        assert dedup.admitted == len(admitted)
        offered = [v for op, v in ops if op == "offer"]
        assert dedup.admitted + dedup.duplicates == len(offered)


class TestIngestor:
    def test_batch_applied_once_and_acked(self, tmp_path):
        ingestor = UplinkIngestor(_service(), tmp_path, fsync="never")
        payload = encode_batch("v0", 0, [_rec("v0", i) for i in range(4)])
        ack = decode_envelope(ingestor.handle_payload(payload))
        assert ack["ack_through"] == 3
        assert ingestor.service.store.applied == 4
        # The exact same batch again: all duplicates, same ack, no
        # double-application (this is what keeps (m,k) counts honest).
        before = store_digest(ingestor.service)
        ack2 = decode_envelope(ingestor.handle_payload(payload))
        assert ack2["ack_through"] == 3
        assert ingestor.records_duplicate == 4
        assert store_digest(ingestor.service) == before

    def test_corrupt_and_foreign_payloads_counted_not_acked(self, tmp_path):
        ingestor = UplinkIngestor(_service(), tmp_path, fsync="never")
        assert ingestor.handle_payload("garbage") is None
        assert ingestor.handle_payload(
            encode_envelope({"schema": "other/1", "source": "v0"})
        ) is None
        payload = encode_batch("v0", 0, [_rec("v0", 0)])
        assert ingestor.handle_payload(payload[:-3] + "###") is None
        assert ingestor.corrupt_payloads == 2
        assert ingestor.foreign_payloads == 1
        assert ingestor.service.store.applied == 0

    def test_durable_before_ack_without_checkpoint(self, tmp_path):
        """A crash immediately after the ack must not lose the batch:
        the WAL carries it even when no checkpoint ever ran."""
        ingestor = UplinkIngestor(
            _service(), tmp_path, fsync="never", checkpoint_every=None
        )
        ingestor.handle_payload(
            encode_batch("v0", 0, [_rec("v0", i, miss=i == 2)
                                   for i in range(5)])
        )
        live = store_digest(ingestor.service)
        ingestor.close()  # crash: no checkpoint was written
        recovered, report = UplinkIngestor.recover(
            tmp_path, ServiceConfig(
                store=StoreConfig(mk_by_chain={"c": (2, 10)})
            ), fsync="never",
        )
        assert not report.checkpoint_loaded
        assert report.replayed_fresh == 5
        assert store_digest(recovered.service) == live
        assert recovered.dedup["v0"].watermark == 4

    def test_checkpoint_plus_replay_recovery(self, tmp_path):
        ingestor = UplinkIngestor(
            _service(), tmp_path, fsync="never", checkpoint_every=2
        )
        for batch_no in range(5):
            lo = batch_no * 3
            ingestor.handle_payload(encode_batch(
                "v0", batch_no,
                [_rec("v0", seq, miss=seq % 4 == 0)
                 for seq in range(lo, lo + 3)],
            ))
        assert ingestor.checkpoints == 2
        live = store_digest(ingestor.service)
        ingestor.close()

        recovered, report = UplinkIngestor.recover(
            tmp_path, ServiceConfig(
                store=StoreConfig(mk_by_chain={"c": (2, 10)})
            ), fsync="never",
        )
        assert report.checkpoint_loaded
        # Only the post-checkpoint suffix is replayed from the WAL.
        assert report.replayed_fresh == 3
        assert store_digest(recovered.service) == live
        # The recovered ingestor keeps deduplicating correctly.
        stale = encode_batch("v0", 9, [_rec("v0", 2)])
        ack = decode_envelope(recovered.handle_payload(stale))
        assert ack["ack_through"] == 14
        assert store_digest(recovered.service) == live

    def test_unknown_checkpoint_schema_refused(self, tmp_path):
        ingestor = UplinkIngestor(
            _service(), tmp_path, fsync="never", checkpoint_every=1
        )
        ingestor.handle_payload(encode_batch("v0", 0, [_rec("v0", 0)]))
        ingestor.close()
        path = tmp_path / "checkpoint.json"
        doc = json.loads(path.read_text())
        assert doc["schema"] == CHECKPOINT_SCHEMA
        doc["schema"] = "repro-uplink-checkpoint/9"
        path.write_text(json.dumps(doc))
        with pytest.raises(SchemaVersionError) as err:
            UplinkIngestor.recover(tmp_path, fsync="never")
        assert "repro-uplink-checkpoint/9" in str(err.value)

    def test_digest_invariant_to_cross_source_interleaving(self, tmp_path):
        batches = {
            source: [_rec(source, seq, miss=seq == 1) for seq in range(6)]
            for source in ("v0", "v1", "v2")
        }
        first = UplinkIngestor(
            _service(), tmp_path / "a", fsync="never"
        )
        for source, records in sorted(batches.items()):
            first.handle_payload(encode_batch(source, 0, records))
        second = UplinkIngestor(
            _service(), tmp_path / "b", fsync="never"
        )
        for source, records in sorted(batches.items(), reverse=True):
            for i, record in enumerate(records):
                second.handle_payload(encode_batch(source, i, [record]))
        assert store_digest(first.service) == store_digest(second.service)
