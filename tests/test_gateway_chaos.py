"""Gateway chaos scenarios end to end, the chaos report's protocol
counters, and the TCP adapter round trip."""

import json

import pytest

from repro.telemetry.gateway import gateway_scenarios
from repro.telemetry.uplink.chaos import (
    ChaosConfig,
    KNOWN_PROTOCOL_COUNTERS,
    load_report,
)

QUICK = ChaosConfig(vehicles=3, frames=10, seed=2025)


def _run(name):
    scenario = {s.name: s for s in gateway_scenarios()}[name]
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        return scenario.make_driver(QUICK, Path(tmp)).run()


class TestGatewayScenarios:
    @pytest.mark.parametrize(
        "name", [s.name for s in gateway_scenarios()]
    )
    def test_scenario_passes_all_checks(self, name):
        result = _run(name)
        failed = [c for c in result.checks if not c["ok"]]
        assert result.ok, f"{name}: {failed}"

    def test_rate_flood_counts_rejections(self):
        result = _run("gw_rate_flood")
        assert result.protocol["gateway_rate_rejects"] > 0
        assert result.protocol["rate_rejects"] > 0  # client saw them too

    def test_window_stall_counts_backpressure(self):
        result = _run("gw_window_stall")
        assert result.protocol["window_stalls"] > 0

    def test_overload_sheds_but_never_alerts(self):
        result = _run("gw_overload_shed")
        shed = result.protocol["shed_by_class"]
        assert shed["alert"] == 0
        assert shed["dashboard"] + shed["telemetry"] > 0
        assert result.protocol["shed_records"] == (
            shed["dashboard"] + shed["telemetry"]
        )

    def test_auth_reject_isolates_the_bad_vehicle(self):
        result = _run("gw_auth_reject")
        assert result.protocol["auth_rejects"] > 0

    def test_crash_midwindow_heals_through_rehandshake(self):
        result = _run("gw_crash_midwindow")
        assert result.protocol["hello_rejects"] > 0
        assert result.protocol["hellos"] >= QUICK.vehicles + 1


class TestChaosReport:
    def _report(self, counters):
        return {
            "schema": "repro-chaos-report/1",
            "scenarios": [{"name": "s", "ok": True, "protocol": counters}],
        }

    def test_known_counters_load_silently(self, recwarn):
        report = load_report(self._report(
            {"frames_sent": 3, "retransmits": 1, "shed_by_class": {}}
        ))
        assert report["scenarios"][0]["protocol"]["frames_sent"] == 3
        assert not recwarn.list

    def test_unknown_counters_warn_but_load(self):
        with pytest.warns(UserWarning, match="flux_capacitors"):
            report = load_report(self._report(
                {"frames_sent": 3, "flux_capacitors": 88}
            ))
        assert report["scenarios"][0]["protocol"]["flux_capacitors"] == 88

    def test_wrong_schema_is_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            load_report({"schema": "something-else/9", "scenarios": []})

    def test_report_round_trips_through_json(self, tmp_path):
        result = _run("gw_window_stall")
        path = tmp_path / "report.json"
        path.write_text(json.dumps({
            "schema": "repro-chaos-report/1",
            "scenarios": [result.to_json()],
        }))
        report = load_report(path)
        counters = report["scenarios"][0]["protocol"]
        assert set(counters) <= KNOWN_PROTOCOL_COUNTERS


class TestSocketAdapter:
    def test_tcp_round_trip_matches_in_process(self, tmp_path):
        import socket

        from repro.telemetry import ServiceConfig, TelemetryService
        from repro.telemetry.gateway import FleetGateway, GatewayConfig
        from repro.telemetry.gateway.socket_server import (
            GatewaySocketServer,
            recv_payload,
            send_payload,
        )
        from repro.telemetry.uplink.transport import (
            WELCOME_SCHEMA,
            decode_envelope,
            encode_hello,
        )

        gateway = FleetGateway(
            TelemetryService(ServiceConfig()),
            tmp_path / "fleet",
            GatewayConfig(token="tcp-secret", fsync="never",
                          checkpoint_every=None),
        )
        server = GatewaySocketServer(gateway, ("127.0.0.1", 0))
        thread = server.serve_background()
        try:
            with socket.create_connection(server.server_address) as sock:
                reader = sock.makefile("rb")
                send_payload(sock, encode_hello("veh00", "tcp-secret", 0))
                doc = decode_envelope(recv_payload(reader))
                assert doc["schema"] == WELCOME_SCHEMA
                assert doc["source"] == "veh00"
                reader.close()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            gateway.ingestor.close()
