"""Hypothesis: the batched telemetry engine is the scalar engine, bit for bit.

Two layers of the columnar hot path are property-tested against their
scalar references over arbitrary inputs *and* arbitrary chunkings:

* :meth:`MKAutomaton.record_many` vs a loop of :meth:`record` -- same
  per-step violation flags, same per-step margins, same bit-packed
  window state afterwards.  Chunk sizes straddle ``_VECTOR_MIN`` so
  both the numpy path and the scalar fallback are exercised, and
  chunk boundaries land mid-window (the regression-prone case: the
  vectorized update must reconstruct the partially-filled window
  exactly).
* :meth:`ChainStateStore.apply_batch` vs a loop of :meth:`apply` --
  byte-identical store snapshots and byte-identical alert logs after
  feeding both outcome streams through an :class:`AlertEngine`.
  Streams mix every record kind across several (source, chain) keys on
  a small shard count, so batches routinely cross shards, repeat seqs
  (duplicates), skip seqs (gaps), and roll latency windows over chunk
  boundaries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.alerts import AlertEngine
from repro.telemetry.automata import _VECTOR_MIN, MKAutomaton
from repro.telemetry.batch import RecordBatch
from repro.telemetry.records import RecordKind, TelemetryRecord
from repro.telemetry.store import ChainStateStore, StoreConfig

# ----------------------------------------------------------------------
# (m,k) automaton: record_many == looped record
# ----------------------------------------------------------------------
MISSES = st.lists(st.booleans(), max_size=4 * _VECTOR_MIN)


def chunkings(draw, n):
    """Random split points for a length-*n* stream (possibly none)."""
    if n == 0:
        return []
    cuts = draw(
        st.lists(
            st.integers(min_value=1, max_value=n), unique=True, max_size=6
        )
    )
    bounds = [0] + sorted(cuts) + [n]
    return [
        (bounds[i], bounds[i + 1])
        for i in range(len(bounds) - 1)
        if bounds[i] < bounds[i + 1]
    ]


@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=11),
    MISSES,
    st.data(),
)
@settings(max_examples=150, deadline=None)
def test_record_many_equals_looped_record(k, m_offset, misses, data):
    m = 1 + m_offset % k  # 1 <= m <= k
    scalar = MKAutomaton((m, k))
    batched = MKAutomaton((m, k))

    scalar_flags, scalar_margins = [], []
    for miss in misses:
        scalar_flags.append(scalar.record(miss))
        scalar_margins.append(m - scalar.misses_in_window)

    batched_flags, batched_margins = [], []
    for lo, hi in chunkings(data.draw, len(misses)):
        flags, margins = batched.record_many(misses[lo:hi])
        batched_flags.extend(flags)
        batched_margins.extend(margins)

    assert batched_flags == scalar_flags
    assert batched_margins == scalar_margins
    # Identical bit-packed window state, counters, and snapshot.
    assert batched.snapshot() == scalar.snapshot()
    assert batched.window_bits() == scalar.window_bits()
    assert batched.margin == scalar.margin
    assert batched.violated == scalar.violated


# ----------------------------------------------------------------------
# Store: apply_batch == looped apply
# ----------------------------------------------------------------------
SOURCES = ("v0", "v1")
CHAINS = ("alpha", "beta")
SEGMENTS = ("s0", "s1")
LEVELS = ("nominal", "degraded", "safe")
KINDS = (
    RecordKind.SEGMENT,
    RecordKind.CHAIN,
    RecordKind.MODE,
    RecordKind.HEARTBEAT,
    RecordKind.EXCEPTION,
)

#: Tight windows + budgets so short generated streams reach the margin-
#: exhaustion, window-rollover, and streak rules; two shards so multi-
#: key batches cross shards essentially always.
STORE_CONFIG = dict(
    n_shards=2,
    default_mk=(1, 4),
    mk_by_chain={"beta": (2, 5)},
    default_budget_ns=500,
    window_records=4,
    latency_windows=2,
)

RAW_EVENTS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),  # source
        st.integers(min_value=0, max_value=4),  # kind
        st.integers(min_value=0, max_value=1),  # chain
        st.integers(min_value=0, max_value=1),  # segment
        st.booleans(),                          # miss / over budget
        st.integers(min_value=0, max_value=2),  # seq step (0 = duplicate)
        st.integers(min_value=0, max_value=2),  # level
    ),
    max_size=3 * _VECTOR_MIN,
)


def materialize(events):
    """Deterministic record stream from symbolic event tuples."""
    records = []
    seq = {source: -1 for source in SOURCES}
    for i, (s, kind_i, c, g, flag, step, lvl) in enumerate(events):
        source = SOURCES[s]
        seq[source] += step
        kind = KINDS[kind_i]
        records.append(
            TelemetryRecord(
                kind=kind,
                source=source,
                chain=CHAINS[c] if kind in (RecordKind.SEGMENT, RecordKind.CHAIN) else "",
                segment=SEGMENTS[g] if kind is RecordKind.SEGMENT else "",
                activation=i,
                latency_ns=(900 if flag else 100)
                if kind is RecordKind.SEGMENT else None,
                verdict=("miss" if flag else "ok")
                if kind in (RecordKind.SEGMENT, RecordKind.CHAIN) else "",
                level=LEVELS[lvl] if kind is RecordKind.MODE else "",
                timestamp_ns=1_000 * (i + 1),
                seq=max(seq[source], 0),
            )
        )
    return records


def drain_alerts(engine):
    return engine.log.to_jsonl()


@given(RAW_EVENTS, st.data())
@settings(max_examples=80, deadline=None)
def test_apply_batch_equals_looped_apply(events, data):
    records = materialize(events)

    scalar_store = ChainStateStore(StoreConfig(**STORE_CONFIG))
    scalar_alerts = AlertEngine()
    for record in records:
        scalar_alerts.observe(scalar_store.apply(record))

    batched_store = ChainStateStore(StoreConfig(**STORE_CONFIG))
    batched_alerts = AlertEngine()
    for lo, hi in chunkings(data.draw, len(records)):
        batch = RecordBatch.from_records(records[lo:hi])
        for outcome in batched_store.apply_batch(batch):
            batched_alerts.observe(outcome)

    assert batched_store.snapshot() == scalar_store.snapshot()
    assert drain_alerts(batched_alerts) == drain_alerts(scalar_alerts)
    assert batched_store.applied == scalar_store.applied
    assert len(batched_store) == len(scalar_store)


@given(RAW_EVENTS)
@settings(max_examples=40, deadline=None)
def test_single_batch_round_trip(events):
    """Whole stream as one batch (the columnar ingest path's shape)."""
    records = materialize(events)
    batch = RecordBatch.from_records(records)
    assert batch.to_records() == records

    scalar_store = ChainStateStore(StoreConfig(**STORE_CONFIG))
    for record in records:
        scalar_store.apply(record)
    batched_store = ChainStateStore(StoreConfig(**STORE_CONFIG))
    if len(batch):
        batched_store.apply_batch(batch)
    assert batched_store.snapshot() == scalar_store.snapshot()
