"""Tests for the system-level health supervisor."""

import pytest

from repro.core.chain_runtime import Outcome
from repro.core.diagnostics import Health, HealthPolicy, HealthSupervisor


def feed(supervisor, name, outcomes):
    for outcome in outcomes:
        supervisor.observe(name, outcome)


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"degraded_ratio": 0},
            {"degraded_ratio": 1.5},
            {"failed_consecutive": 0},
            {"recover_clean": 0},
        ],
    )
    def test_invalid_policy(self, kwargs):
        with pytest.raises(ValueError):
            HealthPolicy(**kwargs)


class TestTransitions:
    def test_starts_ok(self):
        supervisor = HealthSupervisor()
        assert supervisor.state_of("seg") is Health.OK
        assert supervisor.system_health is Health.OK

    def test_stays_ok_on_clean_stream(self):
        supervisor = HealthSupervisor()
        feed(supervisor, "seg", [Outcome.OK] * 50)
        assert supervisor.state_of("seg") is Health.OK

    def test_recovered_counts_as_clean(self):
        supervisor = HealthSupervisor(HealthPolicy(failed_consecutive=2))
        feed(supervisor, "seg", [Outcome.RECOVERED] * 10)
        assert supervisor.state_of("seg") is Health.OK

    def test_degrades_on_high_miss_ratio(self):
        supervisor = HealthSupervisor(
            HealthPolicy(window=10, degraded_ratio=0.2, failed_consecutive=99)
        )
        # 3 misses in the 10-window, interleaved (no long runs).
        pattern = [Outcome.MISS, Outcome.OK, Outcome.OK] * 4
        feed(supervisor, "seg", pattern)
        assert supervisor.state_of("seg") is Health.DEGRADED

    def test_fails_on_consecutive_misses(self):
        supervisor = HealthSupervisor(HealthPolicy(failed_consecutive=3))
        feed(supervisor, "seg", [Outcome.OK, Outcome.MISS, Outcome.MISS, Outcome.MISS])
        assert supervisor.state_of("seg") is Health.FAILED

    def test_skipped_counts_as_miss(self):
        supervisor = HealthSupervisor(HealthPolicy(failed_consecutive=2))
        feed(supervisor, "seg", [Outcome.SKIPPED, Outcome.SKIPPED])
        assert supervisor.state_of("seg") is Health.FAILED

    def test_recovery_hysteresis(self):
        policy = HealthPolicy(failed_consecutive=2, recover_clean=5, window=10)
        supervisor = HealthSupervisor(policy)
        feed(supervisor, "seg", [Outcome.MISS, Outcome.MISS])
        assert supervisor.state_of("seg") is Health.FAILED
        # 4 clean outcomes: not yet recovered.
        feed(supervisor, "seg", [Outcome.OK] * 4)
        assert supervisor.state_of("seg") is Health.FAILED
        # 5th clean outcome: back to OK (misses also left the window
        # ratio low enough by then).
        feed(supervisor, "seg", [Outcome.OK] * 8)
        assert supervisor.state_of("seg") is Health.OK

    def test_state_change_callback(self):
        changes = []
        supervisor = HealthSupervisor(
            HealthPolicy(failed_consecutive=2),
            on_state_change=lambda name, old, new: changes.append((name, old, new)),
        )
        feed(supervisor, "seg", [Outcome.MISS, Outcome.MISS])
        # First miss: window ratio 1/1 -> DEGRADED; second: FAILED.
        assert changes == [
            ("seg", Health.OK, Health.DEGRADED),
            ("seg", Health.DEGRADED, Health.FAILED),
        ]


class TestSystemHealth:
    def test_worst_segment_dominates(self):
        supervisor = HealthSupervisor(HealthPolicy(failed_consecutive=2))
        feed(supervisor, "a", [Outcome.OK] * 5)
        feed(supervisor, "b", [Outcome.MISS, Outcome.MISS])
        assert supervisor.system_health is Health.FAILED

    def test_report_renders_all_segments(self):
        supervisor = HealthSupervisor()
        feed(supervisor, "a", [Outcome.OK])
        feed(supervisor, "b", [Outcome.MISS])
        report = supervisor.report()
        assert "system health" in report
        assert "a" in report and "b" in report


class TestAttachToRuntime:
    def test_shim_receives_monitor_reports(self):
        from _harness import PipelineWorld
        from repro.sim import msec

        world = PipelineWorld(worker_time=lambda i: msec(50), d_mon=msec(20))
        supervisor = HealthSupervisor(HealthPolicy(failed_consecutive=2))
        supervisor.attach(world.runtime)
        world.publish_frames(4)
        world.run(until=msec(800))
        # Every activation missed -> the segment failed.
        assert supervisor.state_of("seg_worker") is Health.FAILED
