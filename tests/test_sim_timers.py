"""Unit tests for one-shot and periodic timers."""

import pytest

from repro.sim import PeriodicTimer, Simulator, Timer, msec


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(msec(5))
        sim.run()
        assert fired == [msec(5)]
        assert timer.fired_count == 1

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(msec(5))
        timer.cancel()
        sim.run()
        assert fired == []
        assert not timer.armed

    def test_restart_rearms(self):
        """Re-arming an armed timer replaces the pending expiry -- the
        pattern used by synchronization-based remote monitoring."""
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(msec(5))
        sim.schedule_at(msec(3), lambda: timer.start(msec(10)))
        sim.run()
        assert fired == [msec(13)]
        assert timer.fired_count == 1

    def test_start_at_absolute_time(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start_at(msec(9))
        sim.run()
        assert fired == [msec(9)]

    def test_expires_at_reports_pending_time(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert timer.expires_at is None
        timer.start(msec(4))
        assert timer.expires_at == msec(4)

    def test_timer_restart_from_callback(self):
        sim = Simulator()
        fired = []

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(msec(2))

        timer = Timer(sim, on_fire)
        timer.start(msec(2))
        sim.run()
        assert fired == [msec(2), msec(4), msec(6)]


class TestPeriodicTimer:
    def test_fires_periodically_without_drift(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, msec(10), lambda i: fired.append((i, sim.now)))
        timer.start()
        sim.run(until=msec(45))
        timer.stop()
        assert fired == [
            (0, 0),
            (1, msec(10)),
            (2, msec(20)),
            (3, msec(30)),
            (4, msec(40)),
        ]

    def test_offset_shifts_first_expiry(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, msec(10), lambda i: fired.append(sim.now), offset=msec(3))
        timer.start()
        sim.run(until=msec(25))
        timer.stop()
        assert fired == [msec(3), msec(13), msec(23)]

    def test_stop_halts_firing(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, msec(10), lambda i: fired.append(sim.now))
        timer.start()
        sim.schedule_at(msec(25), timer.stop)
        sim.run(until=msec(100))
        assert fired == [0, msec(10), msec(20)]

    def test_jitter_stays_within_bound(self):
        sim = Simulator(seed=3)
        fired = []
        timer = PeriodicTimer(
            sim, msec(10), lambda i: fired.append(sim.now), jitter_ns=msec(2)
        )
        timer.start()
        sim.run(until=msec(200))
        timer.stop()
        assert len(fired) >= 18
        for i, t in enumerate(fired):
            nominal = i * msec(10)
            assert nominal <= t <= nominal + msec(2)

    def test_double_start_rejected(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, msec(10), lambda i: None)
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0, lambda i: None)
