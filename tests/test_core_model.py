"""Unit tests for events, segments and chain validation."""

import pytest

from repro.core import EventChain, EventKind, EventPoint, MKConstraint, Segment, SegmentKind
from repro.core.chains import ChainValidationError
from repro.core.segments import local_segment, remote_segment
from repro.sim import msec


def sample_chain():
    """The paper's front-lidar chain: remote(front) -> local(fusion) ->
    remote(fused) -> local(classify+detect)."""
    s0 = remote_segment("s0_front", "points_front", "lidar_front", "ecu1")
    s1 = local_segment(
        "s1_fusion", "ecu1", "points_front", "points_fused", end_process=""
    )
    s2 = remote_segment("s2_fused", "points_fused", "ecu1", "ecu2")
    s3 = local_segment(
        "s3_perception", "ecu2", "points_fused", "objects",
        end_kind=EventKind.RECEIVE,
    )
    return [s0, s1, s2, s3]


class TestEventPoint:
    def test_equality_is_gapfree_check(self):
        a = EventPoint("t", EventKind.PUBLICATION, "ecu1")
        b = EventPoint("t", EventKind.PUBLICATION, "ecu1")
        assert a == b

    def test_error_propagation_not_a_boundary(self):
        with pytest.raises(ValueError):
            EventPoint("t", EventKind.ERROR_PROPAGATION, "ecu1")

    def test_str(self):
        point = EventPoint("t", EventKind.RECEIVE, "ecu1", "fusion")
        assert str(point) == "receive(t)@ecu1:fusion"


class TestSegmentValidation:
    def test_local_segment_same_ecu_required(self):
        with pytest.raises(ValueError):
            Segment(
                name="bad",
                kind=SegmentKind.LOCAL,
                start=EventPoint("a", EventKind.RECEIVE, "ecu1"),
                end=EventPoint("b", EventKind.PUBLICATION, "ecu2"),
            )

    def test_local_segment_must_start_with_receive(self):
        with pytest.raises(ValueError):
            Segment(
                name="bad",
                kind=SegmentKind.LOCAL,
                start=EventPoint("a", EventKind.PUBLICATION, "ecu1"),
                end=EventPoint("b", EventKind.PUBLICATION, "ecu1"),
            )

    def test_remote_segment_must_cross_ecus(self):
        with pytest.raises(ValueError):
            remote_segment("bad", "t", "ecu1", "ecu1")

    def test_remote_segment_single_topic(self):
        with pytest.raises(ValueError):
            Segment(
                name="bad",
                kind=SegmentKind.REMOTE,
                start=EventPoint("a", EventKind.PUBLICATION, "ecu1"),
                end=EventPoint("b", EventKind.RECEIVE, "ecu2"),
            )

    def test_local_segment_may_end_with_receive(self):
        seg = local_segment("rviz", "ecu2", "points", "objects", end_kind=EventKind.RECEIVE)
        assert seg.end.kind is EventKind.RECEIVE

    def test_deadline_property(self):
        seg = remote_segment("s", "t", "a", "b", d_mon=msec(10), d_ex=msec(1))
        assert seg.deadline == msec(11)

    def test_deadline_none_until_assigned(self):
        seg = remote_segment("s", "t", "a", "b")
        assert seg.deadline is None

    def test_with_deadline_returns_copy(self):
        seg = remote_segment("s", "t", "a", "b", d_ex=msec(1))
        assigned = seg.with_deadline(msec(5))
        assert assigned.d_mon == msec(5)
        assert assigned.d_ex == msec(1)
        assert seg.d_mon is None

    def test_invalid_deadlines_rejected(self):
        with pytest.raises(ValueError):
            remote_segment("s", "t", "a", "b", d_mon=0)
        with pytest.raises(ValueError):
            remote_segment("s", "t", "a", "b", d_ex=-1)


class TestChainValidation:
    def test_valid_chain_constructs(self):
        chain = EventChain(
            name="front",
            segments=sample_chain(),
            period=msec(100),
            budget_e2e=msec(220),
            mk=MKConstraint(2, 10),
        )
        assert len(chain) == 4
        assert chain.budget_seg == msec(100)

    def test_gap_detected(self):
        segments = sample_chain()
        # Break contiguity: s2 now starts from a different topic.
        segments[2] = remote_segment("s2_fused", "points_other", "ecu1", "ecu2")
        with pytest.raises(ChainValidationError, match="unmonitored gap"):
            EventChain(
                name="front",
                segments=segments,
                period=msec(100),
                budget_e2e=msec(220),
            )

    def test_empty_chain_rejected(self):
        with pytest.raises(ChainValidationError):
            EventChain(name="x", segments=[], period=msec(100), budget_e2e=msec(100))

    def test_segment_lookup(self):
        chain = EventChain(
            name="front", segments=sample_chain(), period=msec(100), budget_e2e=msec(220)
        )
        assert chain.segment("s1_fusion").kind is SegmentKind.LOCAL
        assert chain.index_of("s2_fused") == 2
        with pytest.raises(KeyError):
            chain.segment("nope")

    def test_with_deadlines(self):
        chain = EventChain(
            name="front", segments=sample_chain(), period=msec(100), budget_e2e=msec(400)
        )
        assigned = chain.with_deadlines([msec(10), msec(50), msec(10), msec(90)])
        assert assigned.deadlines_assigned
        assert assigned.deadline_sum() == msec(160)
        assert not chain.deadlines_assigned

    def test_budget_check_enforces_eq1(self):
        chain = EventChain(
            name="front", segments=sample_chain(), period=msec(100), budget_e2e=msec(100)
        )
        assigned = chain.with_deadlines([msec(40), msec(40), msec(40), msec(40)])
        with pytest.raises(ChainValidationError, match="exceeds budget"):
            assigned.check_budget()

    def test_budget_check_enforces_bseg(self):
        chain = EventChain(
            name="front",
            segments=sample_chain(),
            period=msec(100),
            budget_e2e=msec(1000),
            budget_seg=msec(50),
        )
        assigned = chain.with_deadlines([msec(10), msec(60), msec(10), msec(10)])
        with pytest.raises(ChainValidationError, match="exceeds B_seg"):
            assigned.check_budget()

    def test_budget_check_passes_for_feasible_assignment(self):
        chain = EventChain(
            name="front", segments=sample_chain(), period=msec(100), budget_e2e=msec(300)
        )
        assigned = chain.with_deadlines([msec(10), msec(80), msec(10), msec(90)])
        assigned.check_budget()  # no raise

    def test_deadline_sum_requires_assignment(self):
        chain = EventChain(
            name="front", segments=sample_chain(), period=msec(100), budget_e2e=msec(300)
        )
        with pytest.raises(ChainValidationError):
            chain.deadline_sum()

    def test_wrong_deadline_count_rejected(self):
        chain = EventChain(
            name="front", segments=sample_chain(), period=msec(100), budget_e2e=msec(300)
        )
        with pytest.raises(ValueError):
            chain.with_deadlines([msec(10)])
