"""Tests for the liveliness QoS (lease-based writer supervision)."""

import pytest

from repro.dds import DdsDomain, QosProfile, ReaderListener, Topic
from repro.network import Link, NetworkStack
from repro.sim import Ecu, Simulator, msec, usec


class LivelinessLog(ReaderListener):
    def __init__(self, sim):
        self.sim = sim
        self.events = []

    def on_liveliness_changed(self, reader, writer_id, alive):
        self.events.append((writer_id, alive, self.sim.now))


def local_world():
    sim = Simulator(seed=1)
    ecu = Ecu(sim, "ecu1", n_cores=2)
    domain = DdsDomain(sim, local_latency=usec(10))
    return sim, ecu, domain


class TestLivelinessLocal:
    def test_data_asserts_liveliness(self):
        sim, ecu, domain = local_world()
        part = domain.create_participant(ecu, "sub")
        pub_part = domain.create_participant(ecu, "pub")
        topic = Topic("t")
        log = LivelinessLog(sim)
        reader = part.create_reader(
            topic, qos=QosProfile(liveliness_lease=msec(50)), listener=log
        )
        writer = pub_part.create_writer(topic)
        sim.schedule_at(msec(1), writer.write, "x")
        sim.run(until=msec(20))
        alive_events = [(w, a) for w, a, _t in log.events]
        assert (writer.guid, True) in alive_events
        assert reader.writer_alive[writer.guid] is True

    def test_lease_expiry_reports_dead(self):
        sim, ecu, domain = local_world()
        part = domain.create_participant(ecu, "sub")
        pub_part = domain.create_participant(ecu, "pub")
        topic = Topic("t")
        log = LivelinessLog(sim)
        reader = part.create_reader(
            topic, qos=QosProfile(liveliness_lease=msec(50)), listener=log
        )
        writer = pub_part.create_writer(topic)
        sim.schedule_at(msec(1), writer.write, "x")
        sim.run(until=msec(200))
        reader.cancel_liveliness()
        assert (writer.guid, False) in [(w, a) for w, a, _t in log.events]
        assert reader.writer_alive[writer.guid] is False
        # Lost roughly one lease after the last assertion.
        lost_time = next(t for w, a, t in log.events if not a)
        assert msec(50) <= lost_time <= msec(60)

    def test_regular_traffic_keeps_writer_alive(self):
        sim, ecu, domain = local_world()
        part = domain.create_participant(ecu, "sub")
        pub_part = domain.create_participant(ecu, "pub")
        topic = Topic("t")
        log = LivelinessLog(sim)
        reader = part.create_reader(
            topic, qos=QosProfile(liveliness_lease=msec(50)), listener=log
        )
        writer = pub_part.create_writer(topic)
        for i in range(10):
            sim.schedule_at(msec(1 + 20 * i), writer.write, i)
        sim.run(until=msec(195))
        reader.cancel_liveliness()
        assert not any(a is False for _w, a, _t in log.events)

    def test_manual_assertion_without_data(self):
        sim, ecu, domain = local_world()
        part = domain.create_participant(ecu, "sub")
        pub_part = domain.create_participant(ecu, "pub")
        topic = Topic("t")
        log = LivelinessLog(sim)
        reader = part.create_reader(
            topic, qos=QosProfile(liveliness_lease=msec(50)), listener=log
        )
        writer = pub_part.create_writer(topic)
        for i in range(6):
            sim.schedule_at(msec(1 + 30 * i), writer.assert_liveliness)
        sim.run(until=msec(160))
        reader.cancel_liveliness()
        assert (writer.guid, True) in [(w, a) for w, a, _t in log.events]
        assert not any(a is False for _w, a, _t in log.events)
        # No data was ever delivered.
        assert reader.received == 0

    def test_liveliness_regained_after_silence(self):
        sim, ecu, domain = local_world()
        part = domain.create_participant(ecu, "sub")
        pub_part = domain.create_participant(ecu, "pub")
        topic = Topic("t")
        log = LivelinessLog(sim)
        reader = part.create_reader(
            topic, qos=QosProfile(liveliness_lease=msec(30)), listener=log
        )
        writer = pub_part.create_writer(topic)
        sim.schedule_at(msec(1), writer.write, 1)
        # silence until 100ms, then traffic resumes
        sim.schedule_at(msec(100), writer.write, 2)
        sim.run(until=msec(120))
        reader.cancel_liveliness()
        flags = [a for _w, a, _t in log.events]
        assert flags == [True, False, True]

    def test_disabled_without_lease(self):
        sim, ecu, domain = local_world()
        part = domain.create_participant(ecu, "sub")
        pub_part = domain.create_participant(ecu, "pub")
        topic = Topic("t")
        log = LivelinessLog(sim)
        reader = part.create_reader(topic, listener=log)
        writer = pub_part.create_writer(topic)
        sim.schedule_at(msec(1), writer.write, "x")
        sim.run(until=msec(100))
        assert log.events == []
        assert reader.writer_alive == {}

    def test_invalid_lease_rejected(self):
        with pytest.raises(ValueError):
            QosProfile(liveliness_lease=0)


class TestLivelinessRemote:
    def test_assertion_travels_over_the_link(self):
        sim = Simulator(seed=1)
        ecu1 = Ecu(sim, "ecu1", n_cores=1)
        ecu2 = Ecu(sim, "ecu2", n_cores=2)
        domain = DdsDomain(sim)
        domain.register_stack(ecu2, NetworkStack(ecu2))
        domain.add_link(ecu1, ecu2, Link(sim, "l", base_latency=usec(100)))
        pub_part = domain.create_participant(ecu1, "pub")
        sub_part = domain.create_participant(ecu2, "sub")
        topic = Topic("t")
        log = LivelinessLog(sim)
        reader = sub_part.create_reader(
            topic, qos=QosProfile(liveliness_lease=msec(50)), listener=log
        )
        writer = pub_part.create_writer(topic)
        sim.schedule_at(msec(1), writer.assert_liveliness)
        sim.run(until=msec(20))
        reader.cancel_liveliness()
        assert (writer.guid, True) in [(w, a) for w, a, _t in log.events]
