"""Regression: the monitor's timeout queue must not leak stale entries.

Before the eager-cancel rework, every completed segment left its
timeout entry resident in the monitor's heap until the deadline
surfaced at the root -- a run of N frames kept O(N) dead tuples alive
and paid O(log N) per lazy pop.  Now `_complete` / `_raise_exception` /
re-arm all cancel the entry's :class:`~repro.sim.calendar.CancelToken`
eagerly, and the queue compacts once enough entries die, so physical
size stays bounded by the compaction threshold regardless of how many
cycles ran.  This module pins that bound under both kernel engines.
"""

import pytest

from _differential import engine_env
from _harness import PipelineWorld

from repro.sim import msec
from repro.sim.calendar import CalendarQueue, EagerHeapQueue, _MIN_COMPACT

#: Physical-size ceiling: live entries plus at most one compaction
#: window of dead ones (the threshold is ``max(_MIN_COMPACT, live)``
#: and live is O(1) here, so 2x the floor is a generous pin).
SIZE_BOUND = 2 * _MIN_COMPACT

#: Far more arm/complete cycles than the bound -- the pre-fix heap
#: would hold ~N_FRAMES stale tuples at this point.
N_FRAMES = 300


def _run_world(frames=N_FRAMES):
    world = PipelineWorld(worker_time=lambda i: msec(5), d_mon=msec(20))
    world.publish_frames(frames)
    world.run(until=msec(100 * frames + 200))
    return world


class TestTimeoutQueueBound:
    @pytest.mark.slow
    @pytest.mark.parametrize("engine", ["calendar", "heap"])
    def test_size_bounded_after_many_cancel_cycles(self, engine):
        with engine_env(sim=engine):
            world = _run_world()
        queue = world.monitor._timeout_queue
        assert world.runtime.pending == {}, "all segments should complete"
        assert len(queue) <= SIZE_BOUND, (
            f"{engine}: {len(queue)} resident entries after "
            f"{N_FRAMES} cycles -- stale timeouts are leaking again"
        )
        assert queue.live == 0

    def test_engine_selects_queue_class(self):
        with engine_env(sim="calendar"):
            world = PipelineWorld()
            assert isinstance(world.monitor._timeout_queue, CalendarQueue)
        with engine_env(sim="heap"):
            world = PipelineWorld()
            assert isinstance(world.monitor._timeout_queue, EagerHeapQueue)


class TestEagerCancelHooks:
    """Each monitor path that retires a pending activation frees its
    timeout entry immediately (not merely at the deadline)."""

    def test_completion_cancels_token(self):
        world = PipelineWorld(worker_time=lambda i: msec(5), d_mon=msec(20))
        world.publish_frames(1)
        world.run(until=msec(150))
        # The frame completed well before its deadline, yet the entry
        # is already dead.
        assert world.runtime.pending == {}
        assert world.monitor._timeout_queue.live == 0

    def test_rearm_overwrite_cancels_previous_token(self):
        world = PipelineWorld(worker_time=lambda i: msec(5), d_mon=msec(20))
        runtime = world.runtime
        world.publish_frames(2)
        world.run(until=msec(2))
        # Force a second arm of an activation that is still pending:
        # the first token must die, leaving exactly one live entry.
        (n, entry) = next(iter(runtime.pending.items()))
        first_token = entry.token
        assert first_token is not None and not first_token.cancelled
        runtime._arm(n, world.sim.now, entry.data)
        assert first_token.cancelled
        second_token = runtime.pending[n].token
        assert second_token is not None
        assert second_token is not first_token
        assert not second_token.cancelled

    def test_timeout_path_still_fires(self):
        # Sanity: eager cancellation must not eat *live* deadlines.
        world = PipelineWorld(worker_time=lambda i: msec(50), d_mon=msec(20))
        world.publish_frames(1)
        world.run(until=msec(300))
        assert len(world.runtime.exceptions) == 1
