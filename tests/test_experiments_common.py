"""Tests for shared experiment configuration helpers."""

import pytest

from repro.experiments.common import default_frames, interference_governor
from repro.sim import Simulator
from repro.sim.cpu import Ecu


class TestDefaultFrames:
    def test_fallback_used_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FRAMES", raising=False)
        assert default_frames(123) == 123

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_FRAMES", "4700")
        assert default_frames(123) == 4700

    def test_env_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_FRAMES", "3")
        assert default_frames() == 10

    def test_empty_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_FRAMES", "")
        assert default_frames(77) == 77


class TestInterferenceGovernor:
    def test_factory_produces_independent_instances(self):
        factory = interference_governor()
        a, b = factory(), factory()
        assert a is not b

    def test_governor_attachable(self):
        sim = Simulator(seed=1)
        ecu = Ecu(sim, "e", n_cores=2, governor_factory=interference_governor())
        assert all(core.governor is not None for core in ecu.scheduler.cores)
        assert all(core.speed == 1.0 for core in ecu.scheduler.cores)

    def test_parameters_forwarded(self):
        factory = interference_governor(slow_min=0.2, slow_max=0.3)
        governor = factory()
        assert governor.slow_min == 0.2
        assert governor.slow_max == 0.3
