"""End-to-end telemetry service: campaign replay, load, alert rules.

The headline acceptance property lives here: replaying a fault-campaign
scenario through the service raises an ``mk_violation`` alert for every
ground-truth chain (m,k) violation -- no more, no fewer.
"""

import dataclasses
import os

import pytest

from repro.faults.campaign import CampaignConfig, FaultCampaign, default_scenarios
from repro.faults.degradation import GracefulDegradationManager
from repro.perception.stack import PerceptionStack, StackConfig
from repro.telemetry import (
    FleetConfig,
    FleetLoadGenerator,
    RULE_HEARTBEAT,
    RULE_LATENCY_BUDGET,
    RULE_MK_MARGIN,
    RULE_MK_VIOLATION,
    RULE_QUEUE_DROPS,
    RULE_QUEUE_SATURATION,
    RULE_SEQ_GAP,
    ServiceConfig,
    TelemetryEmitter,
    TelemetryService,
    attach_stack,
    replay_stack_records,
    run_load,
    stack_store_config,
)

#: Environment override for the throughput floor (records/s); the
#: acceptance criterion is 50k single-process on a developer machine.
MIN_RPS_ENV = "REPRO_TELEMETRY_MIN_RPS"


def _run_scenario_stack(name, n_frames=24):
    """Run one campaign scenario; return (stack, manager, config)."""
    cc = CampaignConfig(n_frames=n_frames)
    scenario = next(s for s in default_scenarios() if s.name == name)
    stack = PerceptionStack(dataclasses.replace(
        StackConfig(seed=cc.seed), **scenario.config_overrides
    ))
    injectors = scenario.build(cc.n_frames)
    for injector in injectors:
        injector.arm(stack)
    manager = GracefulDegradationManager(
        stack, policy=cc.policy, watchdog=cc.watchdog
    )
    manager.start(cc.n_frames)
    stack.run(n_frames=cc.n_frames)
    for runtime in stack.chain_runtimes.values():
        runtime.advance_window(cc.n_frames - 1)
    return stack, manager, cc


class TestCampaignReplay:
    def test_alert_for_every_ground_truth_violation(self):
        # executor_stall produces real chain (m,k) violations.
        stack, manager, cc = _run_scenario_stack("executor_stall")
        truth = sum(
            rt.window.violations for rt in stack.chain_runtimes.values()
        )
        assert truth > 0, "scenario no longer violates; pick another"
        counts, applied = FaultCampaign._replay_telemetry(
            stack, "executor_stall", cc.n_frames, manager
        )
        assert counts.get(RULE_MK_VIOLATION, 0) == truth
        assert applied > 0

    def test_no_spurious_violation_alerts(self):
        # loss_burst is fully masked by recovery: zero ground-truth
        # chain violations, so zero mk_violation alerts.
        stack, manager, cc = _run_scenario_stack("loss_burst")
        truth = sum(
            rt.window.violations for rt in stack.chain_runtimes.values()
        )
        assert truth == 0
        counts, _applied = FaultCampaign._replay_telemetry(
            stack, "loss_burst", cc.n_frames, manager
        )
        assert counts.get(RULE_MK_VIOLATION, 0) == 0

    def test_replay_is_deterministic(self):
        stack, manager, cc = _run_scenario_stack("loss_burst")
        streams = [
            list(replay_stack_records(stack, "s", cc.n_frames, manager))
            for _ in range(2)
        ]
        assert streams[0] == streams[1]

    def test_scenario_result_carries_alert_counts(self):
        cc = CampaignConfig(n_frames=24)
        scenario = next(
            s for s in default_scenarios() if s.name == "executor_stall"
        )
        result = FaultCampaign([scenario], cc).run()
        assert result.scenarios[0].alert_counts.get(RULE_MK_VIOLATION, 0) > 0
        assert result.scenarios[0].telemetry_records > 0
        assert "alerts" in result.render_report().splitlines()[0]


class TestLiveAttach:
    def test_monitors_publish_through_hooks(self):
        stack = PerceptionStack(StackConfig(seed=1))
        service = TelemetryService(
            ServiceConfig(store=stack_store_config(stack))
        )
        emitter = TelemetryEmitter("vehicle-under-test", service.ingest)
        attach_stack(stack, emitter)
        stack.run(n_frames=10)
        service.drain()
        assert emitter.emitted > 0
        assert service.applied == emitter.emitted
        assert service.accounting_ok()
        # Segment events resolved to their chains.
        sources = {source for source, _chain in service.store.keys()}
        assert sources == {"vehicle-under-test"}
        chains = {chain for _source, chain in service.store.keys()}
        assert chains & set(stack.chain_runtimes)


class TestLoadGenerator:
    def test_stream_digest_is_deterministic(self):
        config = FleetConfig(vehicles=3, frames=60)
        assert (
            FleetLoadGenerator(config).stream_digest()
            == FleetLoadGenerator(config).stream_digest()
        )

    def test_digest_depends_on_seed(self):
        assert (
            FleetLoadGenerator(FleetConfig(vehicles=3, frames=60, seed=1)).stream_digest()
            != FleetLoadGenerator(FleetConfig(vehicles=3, frames=60, seed=2)).stream_digest()
        )

    def test_load_run_sustains_throughput_with_zero_silent_drops(self):
        floor = float(os.environ.get(MIN_RPS_ENV, 50_000))
        generator = FleetLoadGenerator(FleetConfig(vehicles=4, frames=200))
        service = TelemetryService(
            ServiceConfig(store=generator.config.store_config())
        )
        report = run_load(service, generator)
        assert report.accounting_ok
        assert report.dropped == 0 and report.pending == 0
        assert report.applied == report.records
        assert report.records_per_s >= floor, (
            f"{report.records_per_s:,.0f} records/s under the "
            f"{floor:,.0f} floor (override via {MIN_RPS_ENV})"
        )

    def test_every_traffic_alert_rule_fires(self):
        # 4 vehicles x 400 frames: one faulty vehicle (fault window,
        # lossy transport, silent tail) gives every rule traffic.
        generator = FleetLoadGenerator(FleetConfig(vehicles=4, frames=400))
        service = TelemetryService(
            ServiceConfig(store=generator.config.store_config())
        )
        report = run_load(service, generator)
        for rule in (RULE_MK_VIOLATION, RULE_MK_MARGIN, RULE_LATENCY_BUDGET,
                     RULE_SEQ_GAP, RULE_HEARTBEAT):
            assert report.alerts_by_rule.get(rule, 0) > 0, rule
        assert generator.lost_in_transport > 0

    def test_service_snapshot_round_trip_after_load(self):
        generator = FleetLoadGenerator(FleetConfig(vehicles=2, frames=80))
        service = TelemetryService(
            ServiceConfig(store=generator.config.store_config())
        )
        run_load(service, generator)
        snapshot = service.snapshot()
        fresh = TelemetryService()
        fresh.restore(snapshot)
        assert fresh.snapshot() == snapshot


class TestQueueRules:
    def test_backpressure_raises_drop_and_saturation_alerts(self):
        service = TelemetryService(
            ServiceConfig(queue_capacity=16, auto_pump_batch=None)
        )
        generator = FleetLoadGenerator(FleetConfig(vehicles=1, frames=20))
        for record in generator.records():
            service.ingest(record)
        service.poll(0)
        counts = service.alert_log.counts_by_rule()
        assert counts.get(RULE_QUEUE_DROPS, 0) == 1  # episodic
        assert counts.get(RULE_QUEUE_SATURATION, 0) == 1
        assert service.accounting_ok()
