"""Run the doctests embedded in API docstrings."""

import doctest

import repro.sim.kernel


def test_kernel_doctests():
    results = doctest.testmod(repro.sim.kernel)
    assert results.failed == 0
    assert results.attempted >= 1
