"""Hypothesis: calendar-queue pop order == heap pop order, always.

The kernel swapped its binary heap for the bucketed
:class:`~repro.sim.calendar.CalendarQueue` on the strength of one
invariant: entries are the same ``(time, priority, seq)`` tuples, so
pop order is the identical total order.  This module drives both the
calendar queue and :class:`~repro.sim.calendar.EagerHeapQueue` through
arbitrary interleavings of schedule / cancel / rearm / pop /
pop-with-limit operations, generated under the kernel's monotonicity
contract (``push time >= last popped time``), and checks every pop
against a brute-force sorted-set oracle.

Buckets are ``1 << DEFAULT_SHIFT`` ns wide; time deltas are drawn well
past that so runs cross bucket boundaries, land inside the active
bucket (exercising the overflow heap), and pile up enough cancels to
trigger compaction sweeps.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.calendar import (
    CalendarQueue,
    CancelToken,
    DEFAULT_SHIFT,
    EagerHeapQueue,
)

BUCKET = 1 << DEFAULT_SHIFT

#: One symbolic operation per element; indices are taken modulo the
#: issued-timer count so every draw is valid whatever came before.
OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"),
            st.integers(min_value=0, max_value=3 * BUCKET),
            st.integers(min_value=0, max_value=3),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=255)),
        st.tuples(
            st.just("rearm"),
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=0, max_value=3 * BUCKET),
            st.integers(min_value=0, max_value=3),
        ),
        st.tuples(st.just("pop")),
        st.tuples(
            st.just("pop_limit"),
            st.integers(min_value=0, max_value=2 * BUCKET),
        ),
    ),
    max_size=120,
)


class _Driver:
    """One logical timer population mirrored into both queues + oracle."""

    def __init__(self):
        self.cal = CalendarQueue()
        self.heap = EagerHeapQueue()
        self.live = {}  # seq -> (time, priority)
        self.tokens = {}  # seq -> (calendar token, heap token)
        self.issued = []
        self.now = 0
        self.seq = 0

    def push(self, dt, priority):
        time = self.now + dt
        pair = (CancelToken(), CancelToken())
        self.cal.push(time, priority, self.seq, pair[0])
        self.heap.push(time, priority, self.seq, pair[1])
        self.live[self.seq] = (time, priority)
        self.tokens[self.seq] = pair
        self.issued.append(self.seq)
        self.seq += 1

    def cancel(self, pick):
        if not self.issued:
            return
        seq = self.issued[pick % len(self.issued)]
        if seq in self.live:
            del self.live[seq]
        for token in self.tokens[seq]:
            token.cancel()  # idempotent on already-popped entries

    def _oracle_min(self):
        if not self.live:
            return None
        return min(
            (time, priority, seq)
            for seq, (time, priority) in self.live.items()
        )

    def pop(self, limit=None):
        expected = self._oracle_min()
        if expected is not None and limit is not None and expected[0] > limit:
            expected = None
        got_cal = self.cal.pop(limit)
        got_heap = self.heap.pop(limit)
        if expected is None:
            assert got_cal is None and got_heap is None
            return
        assert got_cal is not None and got_heap is not None
        assert got_cal[:3] == expected, "calendar diverged from oracle"
        assert got_heap[:3] == expected, "heap diverged from oracle"
        assert got_cal[3].data == got_heap[3].data
        del self.live[expected[2]]
        self.now = expected[0]  # kernel time never runs backwards

    def check_liveness_counters(self):
        assert self.cal.live == len(self.live)
        assert self.heap.live == len(self.live)
        assert bool(self.cal) == bool(self.live)
        assert bool(self.heap) == bool(self.live)


@given(OPS)
@settings(max_examples=120, deadline=None)
def test_pop_order_matches_heap_and_oracle(ops):
    driver = _Driver()
    for op in ops:
        kind = op[0]
        if kind == "push":
            driver.push(op[1], op[2])
        elif kind == "cancel":
            driver.cancel(op[1])
        elif kind == "rearm":
            driver.cancel(op[1])
            driver.push(op[2], op[3])
        elif kind == "pop":
            driver.pop()
        else:  # pop_limit
            driver.pop(limit=driver.now + op[1])
    driver.check_liveness_counters()
    # Full drain: the tail must come out globally sorted too.
    while driver.live:
        driver.pop()
    assert driver.cal.pop() is None
    assert driver.heap.pop() is None
    driver.check_liveness_counters()


@given(OPS)
@settings(max_examples=60, deadline=None)
def test_peek_is_pop_without_consumption(ops):
    driver = _Driver()
    for op in ops:
        kind = op[0]
        if kind == "push":
            driver.push(op[1], op[2])
        elif kind in ("cancel", "rearm"):
            driver.cancel(op[1])
            if kind == "rearm":
                driver.push(op[2], op[3])
        else:
            expected = driver._oracle_min()
            peeked = driver.cal.peek()
            if expected is None:
                assert peeked is None
            else:
                assert peeked[:3] == expected
            driver.pop()


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50 * BUCKET),
            st.integers(min_value=0, max_value=3),
        ),
        max_size=200,
    )
)
@settings(max_examples=60, deadline=None)
def test_bulk_drain_is_sorted(pairs):
    cal = CalendarQueue()
    expected = []
    for seq, (time, priority) in enumerate(pairs):
        cal.push(time, priority, seq, CancelToken())
        expected.append((time, priority, seq))
    expected.sort()
    drained = []
    while True:
        entry = cal.pop()
        if entry is None:
            break
        drained.append(entry[:3])
    assert drained == expected
