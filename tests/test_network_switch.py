"""Tests for the store-and-forward switch and emergent queueing jitter."""

import numpy as np
import pytest

from repro.network import BackgroundTraffic, EthernetSwitch, Frame, SwitchedLink
from repro.sim import Simulator, msec, usec


def frame(dst="ecu1", size=1250):
    return Frame(payload=None, size_bytes=size, src="src", dst=dst)


class TestSwitchBasics:
    def test_forward_delivers_after_tx_and_propagation(self):
        sim = Simulator()
        switch = EthernetSwitch(sim, port_rate_bps=100e6, propagation_delay=usec(5))
        switch.attach("ecu1")
        arrivals = []
        # 1250 bytes at 100 Mbit/s = 100 us serialization + 5 us prop.
        switch.forward(frame(), lambda f: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [usec(105)]

    def test_unknown_destination_raises(self):
        sim = Simulator()
        switch = EthernetSwitch(sim)
        with pytest.raises(KeyError):
            switch.forward(frame(dst="nowhere"), lambda f: None)

    def test_duplicate_port_rejected(self):
        sim = Simulator()
        switch = EthernetSwitch(sim)
        switch.attach("a")
        with pytest.raises(ValueError):
            switch.attach("a")

    def test_queueing_serializes_frames(self):
        sim = Simulator()
        switch = EthernetSwitch(sim, port_rate_bps=100e6, propagation_delay=0)
        switch.attach("ecu1")
        arrivals = []
        for _ in range(3):
            switch.forward(frame(), lambda f: arrivals.append(sim.now))
        sim.run()
        # Each 1250B frame takes 100us on the wire; they queue.
        assert arrivals == [usec(100), usec(200), usec(300)]
        assert switch.port("ecu1").peak_queue == 3

    def test_tail_drop_when_queue_full(self):
        sim = Simulator()
        switch = EthernetSwitch(sim, queue_capacity=2)
        switch.attach("ecu1")
        results = [switch.forward(frame(), lambda f: None) for _ in range(4)]
        assert results == [True, True, False, False]
        assert switch.port("ecu1").dropped == 2

    def test_ports_are_independent(self):
        sim = Simulator()
        switch = EthernetSwitch(sim, port_rate_bps=100e6, propagation_delay=0)
        switch.attach("a")
        switch.attach("b")
        arrivals = {}
        switch.forward(frame(dst="a"), lambda f: arrivals.setdefault("a", sim.now))
        switch.forward(frame(dst="b"), lambda f: arrivals.setdefault("b", sim.now))
        sim.run()
        # No cross-port queueing: both arrive at 100us.
        assert arrivals == {"a": usec(100), "b": usec(100)}


class TestSwitchedLink:
    def test_transmit_routes_through_switch(self):
        sim = Simulator()
        switch = EthernetSwitch(sim, propagation_delay=0)
        switch.attach("ecu1")
        link = SwitchedLink(switch, "l")
        arrivals = []
        assert link.transmit(frame(), lambda f: arrivals.append(sim.now))
        sim.run()
        assert len(arrivals) == 1

    def test_loss_probability(self):
        sim = Simulator(seed=2)
        switch = EthernetSwitch(sim)
        switch.attach("ecu1")
        link = SwitchedLink(switch, "l", loss_prob=0.5)
        delivered = []
        # Spaced out so the egress queue never overflows.
        for i in range(200):
            sim.schedule_at(
                i * msec(1),
                lambda: link.transmit(frame(), lambda f: delivered.append(1)),
            )
        sim.run()
        assert 60 < len(delivered) < 140
        assert link.lost + len(delivered) == 200

    def test_loss_filter(self):
        sim = Simulator()
        switch = EthernetSwitch(sim)
        switch.attach("ecu1")
        link = SwitchedLink(switch, "l")
        link.loss_filter = lambda f: f.size_bytes > 1000
        assert not link.transmit(frame(size=1500), lambda f: None)
        assert link.transmit(frame(size=500), lambda f: None)

    def test_invalid_loss(self):
        sim = Simulator()
        switch = EthernetSwitch(sim)
        with pytest.raises(ValueError):
            SwitchedLink(switch, "l", loss_prob=1.0)


class TestBackgroundTraffic:
    def test_cross_traffic_inflates_queueing_delay(self):
        """Emergent J_R: the same periodic flow sees higher and more
        variable delay when background traffic loads its egress port."""

        def measure(utilization):
            sim = Simulator(seed=9)
            switch = EthernetSwitch(sim, port_rate_bps=100e6, propagation_delay=0)
            switch.attach("ecu1")
            link = SwitchedLink(switch, "flow")
            delays = []
            if utilization > 0:
                bg = BackgroundTraffic(switch, "ecu1", utilization=utilization)
                bg.start()
            for i in range(100):
                send_at = msec(1) + i * msec(10)
                sim.schedule_at(
                    send_at,
                    lambda t0=send_at: link.transmit(
                        frame(size=1250),
                        lambda f, t0=t0: delays.append(sim.now - t0),
                    ),
                )
            sim.run(until=msec(1200))
            if utilization > 0:
                bg.stop()
            return delays

        idle = measure(0)
        loaded = measure(0.8)
        assert len(idle) == len(loaded) == 100
        # Unloaded: constant serialization delay.
        assert max(idle) - min(idle) == 0
        # Loaded: queueing behind cross traffic -> jitter appears.
        assert np.mean(loaded) > np.mean(idle)
        assert max(loaded) - min(loaded) > usec(50)

    def test_invalid_utilization(self):
        sim = Simulator()
        switch = EthernetSwitch(sim)
        with pytest.raises(ValueError):
            BackgroundTraffic(switch, "x", utilization=1.5)
