"""Vehicle epoch agent: durable recv, deferral, exactly-once apply."""

import pytest

from repro.adaptive import BudgetEpoch, SimulatedApplyCrash, VehicleEpochAgent
from repro.faults.degradation import DegradationMode
from repro.telemetry.uplink.transport import (
    EPOCH_ACK_SCHEMA,
    decode_envelope,
    encode_epoch_frame,
)

_MS = 1_000_000


def make_epoch(epoch_id, seg0=8):
    return BudgetEpoch(epoch_id=epoch_id, budgets={
        "pipeline": {"seg0": seg0 * _MS, "seg1": 10 * _MS,
                     "seg2": 12 * _MS},
    })


def frame_for(epoch, vehicle="veh00"):
    return encode_epoch_frame(vehicle, epoch.to_json())


def ack_status(payload):
    doc = decode_envelope(payload)
    assert doc is not None and doc["schema"] == EPOCH_ACK_SCHEMA
    return doc["epoch_id"], doc["status"]


class TestHandleFrame:
    def test_fresh_frame_is_durable_then_applied(self, tmp_path):
        installs = []
        agent = VehicleEpochAgent("veh00", tmp_path, install=installs.append)
        ack = agent.handle_frame(frame_for(make_epoch(1)))
        assert ack_status(ack) == (1, "applied")
        assert agent.active.epoch_id == 1
        assert installs == [make_epoch(1)]
        assert (tmp_path / "epochs.log").exists()
        agent.close()

    def test_stale_and_duplicate_frames_reack_idempotently(self, tmp_path):
        installs = []
        agent = VehicleEpochAgent("veh00", tmp_path, install=installs.append)
        agent.handle_frame(frame_for(make_epoch(2)))
        # Duplicate of the active epoch and an older one both re-ack
        # without re-applying or re-logging.
        entries = (tmp_path / "epochs.log").read_text()
        assert ack_status(agent.handle_frame(frame_for(make_epoch(2)))) \
            == (2, "applied")
        assert ack_status(agent.handle_frame(frame_for(make_epoch(1)))) \
            == (1, "applied")
        assert (tmp_path / "epochs.log").read_text() == entries
        assert len(installs) == 1
        assert agent.stale_frames == 2
        agent.close()

    def test_foreign_and_malformed_frames_ignored(self, tmp_path):
        agent = VehicleEpochAgent("veh00", tmp_path)
        assert agent.handle_frame(frame_for(make_epoch(1), "veh99")) is None
        assert agent.handle_frame("not an envelope") is None
        assert agent.active is None
        agent.close()


class TestDeferredApply:
    def test_degraded_defers_then_applies_exactly_once(self, tmp_path):
        # The satellite scenario: an epoch arriving while the vehicle is
        # DEGRADED is durably parked (acked "deferred" so the server
        # stops resending) and applied exactly once on the transition
        # back to NORMAL.
        installs = []
        agent = VehicleEpochAgent("veh00", tmp_path, install=installs.append)
        agent.set_mode(DegradationMode.DEGRADED)
        ack = agent.handle_frame(frame_for(make_epoch(1)))
        assert ack_status(ack) == (1, "deferred")
        assert agent.active is None and agent.pending is not None
        assert installs == []
        # A resend while still degraded re-acks "deferred".
        assert ack_status(agent.handle_frame(frame_for(make_epoch(1)))) \
            == (1, "deferred")
        ack = agent.set_mode(DegradationMode.NORMAL)
        assert ack_status(ack) == (1, "applied")
        assert installs == [make_epoch(1)]
        assert agent.applies == 1
        # Staying NORMAL is idempotent: nothing left to apply.
        assert agent.set_mode(DegradationMode.NORMAL) is None
        assert agent.applies == 1
        agent.close()

    def test_safe_mode_also_defers(self, tmp_path):
        agent = VehicleEpochAgent("veh00", tmp_path)
        agent.set_mode(DegradationMode.SAFE)
        assert ack_status(agent.handle_frame(frame_for(make_epoch(1)))) \
            == (1, "deferred")
        assert agent.deferrals == 1
        agent.close()

    def test_newer_epoch_supersedes_parked_one(self, tmp_path):
        installs = []
        agent = VehicleEpochAgent("veh00", tmp_path, install=installs.append)
        agent.set_mode(DegradationMode.DEGRADED)
        agent.handle_frame(frame_for(make_epoch(1)))
        agent.handle_frame(frame_for(make_epoch(2)))
        ack = agent.set_mode(DegradationMode.NORMAL)
        assert ack_status(ack) == (2, "applied")
        assert [e.epoch_id for e in installs] == [2]
        assert agent.superseded == {1}
        assert agent.ledger_json()["balanced"]
        agent.close()

    def test_deferral_survives_a_crash(self, tmp_path):
        # Crash while parked: recovery rebuilds the pending epoch and
        # the NORMAL transition still applies it exactly once.
        agent = VehicleEpochAgent("veh00", tmp_path)
        agent.set_mode(DegradationMode.DEGRADED)
        agent.handle_frame(frame_for(make_epoch(1)))
        agent.kill()
        installs = []
        recovered, report = VehicleEpochAgent.recover(
            "veh00", tmp_path, install=installs.append
        )
        assert report.pending_apply
        recovered.mode = DegradationMode.DEGRADED
        assert recovered.apply_pending_if_normal() is None
        recovered.mode = DegradationMode.NORMAL
        ack = recovered.apply_pending_if_normal()
        assert ack_status(ack) == (1, "applied")
        assert [e.epoch_id for e in installs] == [1]
        assert recovered.applies == 1
        recovered.close()


class TestCrashRecovery:
    def test_torn_apply_window_applies_once_on_recovery(self, tmp_path):
        # Die after the durable recv but before the applied marker --
        # the frame was acked never, so the durable state must say
        # "received, pending" and recovery applies exactly once.
        agent = VehicleEpochAgent("veh00", tmp_path)
        agent.handle_frame(frame_for(make_epoch(1)))
        agent.fail_after_recv = True
        with pytest.raises(SimulatedApplyCrash):
            agent.handle_frame(frame_for(make_epoch(2)))
        agent.kill()
        installs = []
        recovered, report = VehicleEpochAgent.recover(
            "veh00", tmp_path, install=installs.append
        )
        assert report.pending_apply
        assert recovered.active.epoch_id == 1
        ack = recovered.apply_pending_if_normal()
        assert ack_status(ack) == (2, "applied")
        assert recovered.active.epoch_id == 2
        # Replayed active epoch installs once, pending epoch once.
        assert [e.epoch_id for e in installs] == [1, 2]
        assert recovered.ledger_json()["balanced"]
        recovered.close()

    def test_torn_tail_receive_never_happened(self, tmp_path):
        agent = VehicleEpochAgent("veh00", tmp_path)
        agent.handle_frame(frame_for(make_epoch(1)))
        agent.handle_frame(frame_for(make_epoch(2)))
        agent.kill(torn_tail=True)  # half-written "applied 2" line
        recovered, report = VehicleEpochAgent.recover("veh00", tmp_path)
        assert report.truncated_tail
        # Whatever the torn line was, state is consistent and the
        # server's retries will re-offer anything lost.
        assert recovered.ledger_json()["balanced"]
        recovered.close()

    def test_recovery_reinstalls_active_epoch(self, tmp_path):
        agent = VehicleEpochAgent("veh00", tmp_path)
        agent.handle_frame(frame_for(make_epoch(1)))
        agent.kill()
        installs = []
        recovered, report = VehicleEpochAgent.recover(
            "veh00", tmp_path, install=installs.append
        )
        assert not report.pending_apply
        assert recovered.active.epoch_id == 1
        assert [e.epoch_id for e in installs] == [1]
        # The monitors run the recovered budgets, not the factory ones.
        assert installs[0].budgets["pipeline"]["seg0"] == 8 * _MS
        recovered.close()
