"""Completeness of monitoring accounting under adverse conditions.

The paper's design goal is that the segmentation leaves *no unmonitored
gaps* -- temporally that means: every chain activation receives exactly
one verdict (OK / RECOVERED / MISS / SKIPPED) from every segment of the
chain, no matter what combination of platform interference and frame
loss occurs.  This test drives the full stack hard and checks that
invariant activation by activation.
"""

import pytest

from repro.core import Outcome
from repro.experiments.common import interference_governor
from repro.perception import PerceptionStack, StackConfig
from repro.sim import msec

#: Whole module exercises multi-second stack/campaign runs.
pytestmark = pytest.mark.slow

N_FRAMES = 120


@pytest.fixture(scope="module")
def adverse_stack():
    stack = PerceptionStack(StackConfig(
        seed=29,
        link_loss=0.03,  # all links lossy
        ecu2_governor=interference_governor(),
    ))
    stack.run(n_frames=N_FRAMES, settle=msec(2000))
    return stack


class TestAccountingCompleteness:
    def test_every_activation_has_one_verdict_per_segment(self, adverse_stack):
        stack = adverse_stack
        for chain_name, runtime in stack.chain_runtimes.items():
            chain_segments = [s.name for s in stack.chains[chain_name].segments]
            # Ignore the first activations before the monitors latched
            # on (remote monitoring starts at the first reception) and
            # the very last (tail truncation at run end).
            first = 2
            last = N_FRAMES - 2
            for n in range(first, last):
                records = runtime.records.get(n, {})
                for segment_name in chain_segments:
                    assert segment_name in records, (
                        f"{chain_name}: activation {n} has no verdict "
                        f"from {segment_name}"
                    )

    def test_outcomes_are_locally_consistent(self, adverse_stack):
        """A SKIPPED verdict implies an upstream MISS in the same
        activation; an OK chain activation has no MISS anywhere."""
        stack = adverse_stack
        for chain_name, runtime in stack.chain_runtimes.items():
            order = [s.name for s in stack.chains[chain_name].segments]
            for n, records in runtime.records.items():
                for i, name in enumerate(order):
                    record = records.get(name)
                    if record is None or record.outcome is not Outcome.SKIPPED:
                        continue
                    upstream = [
                        records.get(u) for u in order[:i]
                    ]
                    assert any(
                        r is not None
                        and r.outcome in (Outcome.MISS, Outcome.SKIPPED)
                        for r in upstream
                    ), f"{chain_name}@{n}: SKIPPED {name} without upstream miss"

    def test_monitored_latencies_never_exceed_deadline_plus_overshoot(
        self, adverse_stack
    ):
        stack = adverse_stack
        for name, segment in stack.segments.items():
            for latency in stack.monitored_latencies(name):
                assert latency <= segment.d_mon + msec(1), name

    def test_sink_frames_match_nonmiss_activations(self, adverse_stack):
        """Frames that reached the sink on the objects topic are exactly
        those whose front-objects chain had no unrecovered miss in the
        delivering path (modulo warm-up/tail)."""
        stack = adverse_stack
        runtime = stack.chain_runtimes["front_objects"]
        seen = set(stack.sink.frames_seen("objects"))
        for n in range(2, N_FRAMES - 2):
            records = runtime.records.get(n, {})
            missed = any(
                r.outcome in (Outcome.MISS, Outcome.SKIPPED)
                for r in records.values()
            )
            if not missed:
                assert n in seen, f"clean activation {n} missing at sink"
