"""Shadow-replica validation: regression + silent-violation oracles."""

import random

from repro.adaptive import BudgetEpoch, ShadowConfig, ShadowValidator
from repro.adaptive.chaos import fleet_chain
from test_adaptive_resolver import steady_rows, window_for

_MS = 1_000_000

FACTORY = {"pipeline": {"seg0": 8 * _MS, "seg1": 10 * _MS, "seg2": 12 * _MS}}


def validator():
    chain = fleet_chain()
    return ShadowValidator({chain.name: chain})


def baseline_epoch():
    return BudgetEpoch(epoch_id=0, budgets=FACTORY)


class TestShadowValidator:
    def test_accepts_equivalent_budgets(self):
        chain = fleet_chain()
        window = window_for(chain, steady_rows(chain, 16))
        candidate = BudgetEpoch(epoch_id=1, budgets=FACTORY)
        verdict = validator().validate(window, candidate, baseline_epoch())
        assert verdict.accepted
        assert verdict.activations == 16
        assert verdict.candidate_violations == verdict.baseline_violations

    def test_rejects_mk_regression(self):
        # 1 ms budget on a segment running at 4 ms: every activation
        # misses, so the candidate violates (3,8) where the baseline
        # never did.
        chain = fleet_chain()
        window = window_for(chain, steady_rows(chain, 16))
        tight = BudgetEpoch(epoch_id=1, budgets={
            "pipeline": {"seg0": 1 * _MS, "seg1": 10 * _MS,
                         "seg2": 12 * _MS},
        })
        verdict = validator().validate(window, tight, baseline_epoch())
        assert not verdict.accepted
        assert verdict.candidate_violations > verdict.baseline_violations
        assert any("(m,k) regression" in r for r in verdict.reasons)

    def test_rejects_silent_chain_violation(self):
        # Budgets wide enough that no segment deadline ever fires while
        # the summed e2e latency breaks B_e2e: the monitor is blind.
        # (Eq. 3 forbids such assignments; the oracle catches them if
        # they ever reach validation anyway.)
        chain = fleet_chain()
        rows = steady_rows(chain, 16, seg0=15 * _MS, seg1=15 * _MS,
                           seg2=15 * _MS)  # e2e 45 ms > B_e2e 40 ms
        window = window_for(chain, rows)
        blind = BudgetEpoch(epoch_id=1, budgets={
            "pipeline": {"seg0": 16 * _MS, "seg1": 16 * _MS,
                         "seg2": 16 * _MS},
        })
        verdict = validator().validate(window, blind, baseline_epoch())
        assert not verdict.accepted
        assert verdict.candidate_silent > 0
        assert any("silent" in r for r in verdict.reasons)

    def test_rejects_missing_budgets(self):
        chain = fleet_chain()
        window = window_for(chain, steady_rows(chain, 16))
        partial = BudgetEpoch(epoch_id=1, budgets={
            "pipeline": {"seg0": 8 * _MS, "seg1": 10 * _MS},
        })
        verdict = validator().validate(window, partial, baseline_epoch())
        assert not verdict.accepted
        assert any("seg2" in r for r in verdict.reasons)

    def test_rejects_thin_window(self):
        chain = fleet_chain()
        window = window_for(chain, steady_rows(chain, 3))
        candidate = BudgetEpoch(epoch_id=1, budgets=FACTORY)
        verdict = ShadowValidator(
            {chain.name: chain}, ShadowConfig(min_activations=8)
        ).validate(window, candidate, baseline_epoch())
        assert not verdict.accepted
        assert any("too thin" in r for r in verdict.reasons)

    def test_verdict_deterministic_under_record_shuffles(self):
        # The replay consumes sorted aligned rows, so any delivery
        # interleaving of the same records yields the same verdict --
        # acceptance and rejection alike.
        chain = fleet_chain()
        shadow = validator()
        base = baseline_epoch()
        rows = steady_rows(chain, 16)
        for activation in (3, 7, 11):  # a few bursts to score
            rows[activation] = {"seg0": 9 * _MS, "seg1": 6 * _MS,
                                "seg2": 8 * _MS}
        window = window_for(chain, rows)
        for candidate in (
            BudgetEpoch(epoch_id=1, budgets=FACTORY),
            BudgetEpoch(epoch_id=2, budgets={
                "pipeline": {"seg0": 5 * _MS, "seg1": 10 * _MS,
                             "seg2": 12 * _MS},
            }),
        ):
            reference = shadow.validate(window, candidate, base).to_json()
            for seed in range(4):
                shuffled = list(window)
                random.Random(seed).shuffle(shuffled)
                assert shadow.validate(
                    shuffled, candidate, base
                ).to_json() == reference
