"""Edge-case and robustness tests for the budgeting solvers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.budgeting import (
    BudgetingProblem,
    ChainTrace,
    SegmentTrace,
    solve_branch_and_bound,
    solve_greedy_propagated,
    solve_independent,
)
from repro.core import EventChain, MKConstraint
from repro.core.segments import local_segment, remote_segment
from repro.core.weakly_hard import (
    ConsecutiveMissConstraint,
    ConsecutiveMissWindow,
    max_consecutive_misses,
)


def build_problem(latencies, budget_e2e, budget_seg, m, k, propagation=None, d_ex=0):
    segments = []
    for i in range(len(latencies)):
        if i % 2 == 0:
            seg = remote_segment(f"s{i}", f"t{i}", "A", "B")
        else:
            seg = local_segment(f"s{i}", "B", f"t{i-1}", f"t{i}")
        segments.append(seg)
    for a, b in zip(segments, segments[1:]):
        b.start = a.end
    chain = EventChain(
        name="edge", segments=segments, period=10_000,
        budget_e2e=budget_e2e, budget_seg=budget_seg, mk=MKConstraint(m, k),
    )
    trace = ChainTrace("edge")
    for seg, series in zip(segments, latencies):
        trace.add(SegmentTrace(seg.name, list(series), d_ex=d_ex))
    return BudgetingProblem(chain, trace, propagation=propagation)


class TestProblemValidation:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            build_problem([[]], 100, 100, 0, 1)

    def test_wrong_propagation_length(self):
        with pytest.raises(ValueError):
            build_problem([[1], [2]], 100, 100, 0, 1, propagation=[1])

    def test_wrong_deadline_count_in_check(self):
        problem = build_problem([[1], [2]], 100, 100, 0, 1)
        with pytest.raises(ValueError):
            problem.check([10])

    def test_check_reports_each_violation(self):
        problem = build_problem([[50, 50], [60, 60]], budget_e2e=80,
                                budget_seg=55, m=0, k=2)
        report = problem.check([60, 70])
        assert not report.feasible
        kinds = "".join(report.violated_constraints)
        assert "Eq.3" in kinds  # sum 130 > 80
        assert "Eq.4" in kinds  # both above B_seg

    def test_nonpositive_deadline_flagged(self):
        problem = build_problem([[5]], 100, 100, 1, 1)
        report = problem.check([0])
        assert any("Eq.2" in v for v in report.violated_constraints)

    def test_candidates_clipped_to_bseg(self):
        problem = build_problem([[10, 200, 40]], budget_e2e=500,
                                budget_seg=100, m=1, k=2)
        candidates = problem.candidates(0)
        assert candidates[-1] == 100  # B_seg replaces out-of-range values
        assert all(c <= 100 for c in candidates)


class TestGreedyEdges:
    def test_greedy_reports_unschedulable_budget(self):
        problem = build_problem(
            [[100, 100, 100], [100, 100, 100]],
            budget_e2e=150, budget_seg=120, m=0, k=3,
            propagation=[1, 1],
        )
        result = solve_greedy_propagated(problem)
        assert not result.schedulable
        assert "stuck" in result.reason or "violate" in result.reason

    def test_greedy_handles_single_segment(self):
        problem = build_problem([[10, 20, 30]], budget_e2e=100,
                                budget_seg=100, m=0, k=3, propagation=[1])
        result = solve_greedy_propagated(problem)
        assert result.schedulable
        assert result.deadlines == [30]


class TestBnbEdges:
    def test_node_limit_reported(self):
        # Many candidates + tight coupling: tiny node budget.
        import numpy as np

        rng = np.random.default_rng(0)
        lats = [list(rng.integers(1, 1000, 40)) for _ in range(3)]
        problem = build_problem(
            lats, budget_e2e=2000, budget_seg=1500, m=1, k=5,
            propagation=[1, 1, 1],
        )
        result = solve_branch_and_bound(problem, max_nodes=10)
        # Either it found something quickly or reports the limit.
        if not result.schedulable:
            assert "node limit" in result.reason

    def test_m_equals_k_everything_may_miss(self):
        # p = 0: every miss is recovered, so with m = k both segments
        # may miss every activation and the minimal deadline is 1 each.
        problem = build_problem(
            [[100, 100], [100, 100]], budget_e2e=10, budget_seg=100,
            m=2, k=2, propagation=[0, 0],
        )
        result = solve_branch_and_bound(problem)
        assert result.schedulable
        assert result.total == 2  # d = 1 per segment

    def test_propagation_double_counts_per_eq7(self):
        """Faithful to the paper's conservative Eq. (7): when both
        segments miss the same activations with p = 1, the downstream
        window counts both, so m = k is still infeasible."""
        problem = build_problem(
            [[100, 100], [100, 100]], budget_e2e=10, budget_seg=100,
            m=2, k=2, propagation=[1, 1],
        )
        result = solve_branch_and_bound(problem)
        assert not result.schedulable

    def test_dex_shifts_deadlines(self):
        p0 = build_problem([[10, 20]], 100, 100, 0, 2, d_ex=0)
        p5 = build_problem([[10, 20]], 100, 100, 0, 2, d_ex=5)
        r0 = solve_independent(p0)
        r5 = solve_independent(p5)
        assert r5.deadlines[0] == r0.deadlines[0] + 5
        assert p5.monitored_deadlines(r5.deadlines)["s0"] == r0.deadlines[0]


class TestConsecutiveWindowProperty:
    @given(st.lists(st.booleans(), max_size=100), st.integers(0, 5))
    @settings(max_examples=100)
    def test_online_matches_offline(self, outcomes, m):
        window = ConsecutiveMissWindow(ConsecutiveMissConstraint(m))
        for outcome in outcomes:
            window.record(outcome)
        assert window.longest_run == max_consecutive_misses(outcomes)
        assert window.violated == (max_consecutive_misses(outcomes) > m)
