"""The differential suite: fast engines vs reference engines, byte for byte.

Every observable artifact the repo pins -- golden-trace fingerprints,
fault-campaign scenario payloads, DAG campaign digests, gateway/adaptive
chaos reports, telemetry store digests and alert logs -- is produced
twice: once under the fast engines (``calendar`` simulator queue,
``batched`` columnar telemetry ingest) and once under the reference
engines (``heap``, ``scalar``).  The canonical JSON serializations must
match byte for byte; see ``tests/_differential.py`` for the fixture
layer.

The expensive matrices (11 fault scenarios, 9 DAG scenarios) run once
per engine as module-scoped fixtures and are compared per scenario, so
a divergence names the exact scenario rather than "the campaign".
"""

import dataclasses
import tempfile
from pathlib import Path

import pytest

from _differential import (
    SIM_ENGINES,
    TELEMETRY_ENGINES,
    assert_identical,
    engine_env,
    run_under_sim_engines,
    run_under_telemetry_engines,
)

from repro.adaptive.chaos import (
    AdaptConfig,
    default_scenarios as adapt_scenarios,
    run_adapt,
)
from repro.faults.campaign import (
    CampaignConfig,
    FaultCampaign,
    default_scenarios as fault_scenarios,
)
from repro.faults.dag_scenarios import (
    DagCampaign,
    DagCampaignConfig,
    default_dag_scenarios,
)
from repro.sim import Simulator
from repro.telemetry.batch import RecordBatch
from repro.telemetry.gateway import gateway_scenarios
from repro.telemetry.loadgen import FleetConfig, FleetLoadGenerator
from repro.telemetry.service import ServiceConfig, TelemetryService
from repro.telemetry.uplink.chaos import ChaosConfig
from repro.telemetry.uplink.ingest import store_digest
from repro.tracing.golden import GOLDEN_FRAMES, golden_scenarios, stack_fingerprint

#: Whole module re-runs stacks and campaigns under multiple engines.
pytestmark = pytest.mark.slow

#: The two corners of the engine matrix: everything-fast vs
#: everything-reference.  Identity across the corners proves both
#: feature flags jointly inert; the per-flag suites below isolate each.
ENGINE_PAIRS = (
    {"sim": "calendar", "telemetry": "batched"},
    {"sim": "heap", "telemetry": "scalar"},
)

CAMPAIGN_FRAMES = 24
GATEWAY_QUICK = ChaosConfig(vehicles=3, frames=10, seed=2025)
ADAPT_QUICK = AdaptConfig(frames=96)


def run_under_engine_pairs(fn):
    """Run *fn* under both corners of the engine matrix."""
    results = {}
    for pair in ENGINE_PAIRS:
        with engine_env(**pair):
            results[f"{pair['sim']}+{pair['telemetry']}"] = fn()
    return results


class TestFlagPlumbing:
    """The env flags really do select different engines (otherwise the
    whole suite would vacuously compare an engine against itself)."""

    def test_sim_engine_env_selects_queue(self):
        engines = set()
        for engine in SIM_ENGINES:
            with engine_env(sim=engine):
                engines.add(Simulator(seed=1).engine)
        assert engines == set(SIM_ENGINES)

    def test_telemetry_engine_env_selects_ingest(self):
        engines = set()
        for engine in TELEMETRY_ENGINES:
            with engine_env(telemetry=engine):
                engines.add(TelemetryService().ingest_engine)
        assert engines == set(TELEMETRY_ENGINES)


# ----------------------------------------------------------------------
# Golden traces (simulator engine)
# ----------------------------------------------------------------------
class TestGoldenTraces:
    @pytest.mark.parametrize("name", sorted(golden_scenarios()))
    def test_fingerprint_identical_across_sim_engines(self, name):
        def run():
            stack = golden_scenarios()[name]()
            stack.run(n_frames=GOLDEN_FRAMES)
            return stack_fingerprint(stack)

        assert_identical(run_under_sim_engines(run), context=f"golden:{name}")


# ----------------------------------------------------------------------
# Fault campaign: all 11 scenarios (both flags at once)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def campaign_by_engine():
    def run():
        result = FaultCampaign(
            config=CampaignConfig(n_frames=CAMPAIGN_FRAMES)
        ).run()
        return {
            s.name: dataclasses.asdict(s) for s in result.scenarios
        }

    return run_under_engine_pairs(run)


class TestFaultCampaign:
    def test_matrix_is_complete(self, campaign_by_engine):
        expected = {s.name for s in fault_scenarios()}
        assert len(expected) == 11
        for engine, by_name in campaign_by_engine.items():
            assert set(by_name) == expected, engine

    @pytest.mark.parametrize("name", [s.name for s in fault_scenarios()])
    def test_scenario_payload_identical(self, campaign_by_engine, name):
        assert_identical(
            {e: r[name] for e, r in campaign_by_engine.items()},
            context=f"campaign:{name}",
        )


# ----------------------------------------------------------------------
# DAG campaign: all 9 scenarios (simulator engine)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def dag_by_engine():
    def run():
        result = DagCampaign(
            config=DagCampaignConfig(n_frames=CAMPAIGN_FRAMES)
        ).run()
        return {
            s.name: {"digest": s.digest(), "payload": s.digest_payload()}
            for s in result.scenarios
        }

    return run_under_sim_engines(run)


class TestDagCampaign:
    def test_matrix_is_complete(self, dag_by_engine):
        expected = {s.name for s in default_dag_scenarios()}
        assert len(expected) == 9
        for engine, by_name in dag_by_engine.items():
            assert set(by_name) == expected, engine

    @pytest.mark.parametrize(
        "name", [s.name for s in default_dag_scenarios()]
    )
    def test_scenario_digest_identical(self, dag_by_engine, name):
        assert_identical(
            {e: r[name] for e, r in dag_by_engine.items()},
            context=f"dag:{name}",
        )


# ----------------------------------------------------------------------
# Gateway chaos (both flags: drivers run a Simulator feeding a
# TelemetryService through the uplink)
# ----------------------------------------------------------------------
class TestGatewayChaos:
    @pytest.mark.parametrize("name", [s.name for s in gateway_scenarios()])
    def test_report_identical_across_engines(self, name):
        def run():
            scenario = {s.name: s for s in gateway_scenarios()}[name]
            with tempfile.TemporaryDirectory() as tmp:
                return scenario.make_driver(GATEWAY_QUICK, Path(tmp)).run().to_json()

        assert_identical(run_under_engine_pairs(run), context=f"gateway:{name}")


# ----------------------------------------------------------------------
# Adaptive chaos (telemetry engine: the control plane embeds a
# TelemetryService; the sweep never touches the simulator)
# ----------------------------------------------------------------------
class TestAdaptiveChaos:
    @pytest.mark.parametrize("name", ["adapt_baseline", "canary_rollback"])
    def test_report_identical_across_telemetry_engines(self, name):
        by_name = {s.name: s for s in adapt_scenarios()}

        def run():
            report = run_adapt(ADAPT_QUICK, [by_name[name]])
            return report["scenarios"]

        assert_identical(
            run_under_telemetry_engines(run), context=f"adapt:{name}"
        )


# ----------------------------------------------------------------------
# Telemetry fleet stream: scalar pump vs batched pump vs columnar batch
# ----------------------------------------------------------------------
class TestTelemetryFleetStream:
    """One fleet record stream through every ingest path.

    Three runs must converge: per-record ingest drained by the scalar
    engine, per-record ingest drained by the batched engine, and the
    native columnar ``ingest_batch`` fast path.  Store digest, alert
    log, and the conservation counters are all compared.
    """

    FLEET = FleetConfig(vehicles=4, frames=60)

    def _observables(self, service):
        digest = store_digest(service)  # pumps any pending records
        stats = service.stats()
        return {
            "digest": digest,
            "alerts": service.alert_log.to_jsonl(),
            "offered": stats["offered"],
            "applied": stats["applied"],
            "dropped": stats["dropped"],
            "violations": stats["violations"],
            "alerts_by_rule": stats["alerts_by_rule"],
            "accounting_ok": stats["accounting_ok"],
        }

    def _service(self, engine=None):
        return TelemetryService(
            ServiceConfig(
                store=self.FLEET.store_config(), engine=engine
            )
        )

    def _records(self):
        return FleetLoadGenerator(self.FLEET).materialize()

    def test_pump_engines_identical(self):
        records = self._records()

        def run_with(engine):
            service = self._service(engine)
            service.ingest_many(records)
            return self._observables(service)

        assert_identical(
            {engine: run_with(engine) for engine in TELEMETRY_ENGINES},
            context="fleet:pump",
        )

    def test_columnar_batch_matches_scalar_reference(self):
        records = self._records()

        scalar = self._service("scalar")
        scalar.ingest_many(records)

        columnar = self._service("batched")
        accepted = columnar.ingest_batch(RecordBatch.from_records(records))
        assert accepted == len(records)

        assert_identical(
            {
                "scalar": self._observables(scalar),
                "columnar": self._observables(columnar),
            },
            context="fleet:columnar",
        )

    def test_engine_resolution_from_env(self):
        records = self._records()

        def run():
            service = self._service()  # engine=None -> env
            service.ingest_many(records)
            return self._observables(service)

        assert_identical(run_under_telemetry_engines(run), context="fleet:env")


# ----------------------------------------------------------------------
# ChainReport stream (simulator engine, monitor timeout queue included)
# ----------------------------------------------------------------------
class TestChainReportStream:
    @pytest.mark.parametrize(
        "worker_ms, frames",
        [(5, 12), (50, 8)],  # all-OK vs deadline-miss heavy
        ids=["on_time", "late"],
    )
    def test_reports_identical_across_sim_engines(self, worker_ms, frames):
        from _harness import PipelineWorld
        from repro.sim import msec

        def run():
            world = PipelineWorld(
                worker_time=lambda i: msec(worker_ms), d_mon=msec(20)
            )
            world.publish_frames(frames)
            world.run(until=msec(200 * frames))
            report = world.chain_runtime.finalize()
            return {
                "engine": world.sim.engine,
                "report": dataclasses.asdict(report),
                "latencies": world.runtime.latencies,
                "exceptions": world.runtime.exceptions,
            }

        results = run_under_sim_engines(run)
        # The engine field is the flag itself -- normalize it out after
        # checking the plumbing took effect.
        engines = {r.pop("engine") for r in results.values()}
        assert engines == set(SIM_ENGINES)
        assert_identical(results, context=f"chain_report:{worker_ms}ms")
