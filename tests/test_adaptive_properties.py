"""Property tests of the adaptive control plane (Hypothesis).

Two guarantees the closed loop leans on:

* every epoch the resolver re-derives from *any* observation window is
  feasible -- per-segment deadlines within ``B_seg`` (Eq. 4) and the
  telescoped deadline sum within the end-to-end budget (Eq. 3, the
  250 ms-class bound the paper's chains carry); and
* the shadow validator's verdict is a pure function of the window's
  *content*: any permutation of the record stream (delivery order,
  interleaving across vehicles) yields the identical verdict document.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive import (
    BudgetEpoch,
    BudgetResolver,
    ResolverConfig,
    ShadowValidator,
)
from repro.adaptive.chaos import fleet_chain
from repro.telemetry.records import segment_record

_MS = 1_000_000

SEGMENTS = ("seg0", "seg1", "seg2")

#: Latencies up to 15 ms keep rows individually plausible while letting
#: Hypothesis drive e2e sums past B_e2e = 40 ms and budgets past any
#: minimal assignment.
latency = st.integers(min_value=100_000, max_value=15 * _MS)

windows = st.lists(
    st.tuples(latency, latency, latency), min_size=12, max_size=24
)


def records_for(chain, rows, source="veh00"):
    records = []
    seq = 0
    for activation, latencies in enumerate(rows):
        for segment, value in zip(SEGMENTS, latencies):
            records.append(segment_record(
                source, chain.name, segment, activation, value, "ok",
                (activation + 1) * chain.period, seq,
            ))
            seq += 1
    return records


@settings(max_examples=40, deadline=None)
@given(rows=windows, slack_share=st.floats(0.0, 1.0))
def test_rederived_epochs_are_always_feasible(rows, slack_share):
    chain = fleet_chain()
    resolver = BudgetResolver(
        {chain.name: chain}, ResolverConfig(slack_share=slack_share)
    )
    outcome = resolver.resolve(records_for(chain, rows))
    if not outcome.ok:
        # Refusing to resolve is always allowed; minting from a failed
        # resolve must be impossible.
        try:
            outcome.epoch(epoch_id=1)
        except ValueError:
            return
        raise AssertionError("failed resolve minted an epoch")
    budgets = outcome.epoch(epoch_id=1).budgets[chain.name]
    total = 0
    for segment in chain.segments:
        d = budgets[segment.name] + segment.d_ex
        assert 0 < budgets[segment.name]  # Eq. 2
        assert d <= chain.budget_seg  # Eq. 4
        total += d
    assert total <= chain.budget_e2e  # Eq. 3 (telescoped e2e budget)


@settings(max_examples=30, deadline=None)
@given(
    rows=windows,
    budget_ms=st.tuples(
        st.integers(1, 16), st.integers(1, 16), st.integers(1, 16)
    ),
    data=st.data(),
)
def test_shadow_verdict_invariant_under_record_shuffles(
    rows, budget_ms, data
):
    chain = fleet_chain()
    shadow = ShadowValidator({chain.name: chain})
    baseline = BudgetEpoch(epoch_id=0, budgets={
        chain.name: {"seg0": 8 * _MS, "seg1": 10 * _MS, "seg2": 12 * _MS},
    })
    candidate = BudgetEpoch(epoch_id=1, budgets={
        chain.name: {
            segment: ms * _MS for segment, ms in zip(SEGMENTS, budget_ms)
        },
    })
    window = records_for(chain, rows)
    reference = shadow.validate(window, candidate, baseline).to_json()
    shuffled = data.draw(st.permutations(window))
    assert shadow.validate(
        shuffled, candidate, baseline
    ).to_json() == reference
