"""Unit tests of the span recorder and its propagation through the
simulator, DDS, executors and monitors."""

import dataclasses

from repro.perception.stack import PerceptionStack, StackConfig
from repro.sim.kernel import Simulator
from repro.tracing.critical_path import validate_spans
from repro.tracing.spans import SpanRecorder


def recorder_on(sim: Simulator) -> SpanRecorder:
    recorder = SpanRecorder(sim)
    sim.spans = recorder
    return recorder


class TestRecorder:
    def test_begin_end_records_interval(self):
        sim = Simulator(seed=1)
        rec = recorder_on(sim)
        span = rec.begin("work", "compute")
        assert span.end is None and span.duration == 0
        sim.schedule_at(100, lambda: None)
        sim.run()
        rec.end(span)
        assert span.start == 0 and span.end == 100
        assert span.duration == 100
        assert rec.open_spans == 0

    def test_end_is_idempotent(self):
        sim = Simulator(seed=1)
        rec = recorder_on(sim)
        span = rec.begin("work", "compute")
        rec.end(span, end=5)
        rec.end(span, end=99)
        assert span.end == 5
        assert rec.open_spans == 0

    def test_explicit_none_parent_forces_new_trace(self):
        sim = Simulator(seed=1)
        rec = recorder_on(sim)
        root = rec.begin("root", "compute", parent=None)
        rec.current = root.context
        child = rec.begin("child", "compute")
        other = rec.begin("other", "compute", parent=None)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert other.trace_id != root.trace_id
        assert other.parent_id is None

    def test_instant_is_closed_at_its_timestamp(self):
        sim = Simulator(seed=1)
        rec = recorder_on(sim)
        mark = rec.instant("mark", "publish", ts=42)
        assert (mark.start, mark.end) == (42, 42)
        assert rec.open_spans == 0

    def test_links_record_extra_predecessors(self):
        sim = Simulator(seed=1)
        rec = recorder_on(sim)
        a = rec.begin("a", "compute", parent=None)
        b = rec.begin("b", "compute", parent=None)
        rec.current = b.context
        rec.link_current(a.context)
        assert b.links == [a.span_id]
        rec.link_current(None)  # no-op
        assert b.links == [a.span_id]


class TestKernelPropagation:
    def test_scheduled_event_carries_ambient_context(self):
        sim = Simulator(seed=1)
        rec = recorder_on(sim)
        seen = []

        def later():
            seen.append(rec.current)

        root = rec.begin("root", "compute", parent=None)
        rec.current = root.context
        sim.schedule_after(10, later)
        rec.current = None
        rec.end(root, end=0)
        sim.run()
        assert seen == [root.context]

    def test_event_scheduled_without_context_restores_none(self):
        sim = Simulator(seed=1)
        rec = recorder_on(sim)
        seen = []
        sim.schedule_after(10, lambda: seen.append(rec.current))
        sim.run()
        assert seen == [None]


class TestStackPropagation:
    def test_disabled_by_default(self):
        stack = PerceptionStack(StackConfig(seed=1))
        assert stack.spans is None
        assert stack.sim.spans is None

    def test_stack_run_produces_wellformed_spans(self):
        stack = PerceptionStack(StackConfig(seed=1, spans=True))
        stack.run(n_frames=6)
        assert len(stack.spans) > 0
        assert stack.spans.open_spans == 0
        assert validate_spans(stack.spans) == []

    def test_one_trace_per_lidar_activation(self):
        frames = 6
        stack = PerceptionStack(StackConfig(seed=1, spans=True))
        stack.run(n_frames=frames)
        traces = {span.trace_id for span in stack.spans.spans}
        # Two lidar timer callbacks per frame, each a fresh trace root.
        assert len(traces) == 2 * frames

    def test_transport_spans_parent_to_publications(self):
        stack = PerceptionStack(StackConfig(seed=1, spans=True))
        stack.run(n_frames=6)
        by_id = {s.span_id: s for s in stack.spans.spans}
        transports = [
            s for s in stack.spans.spans if s.name == "dds.transport"
        ]
        assert transports
        for span in transports:
            parent = by_id[span.parent_id]
            assert parent.name == "dds.publish"
            assert parent.attrs["topic"] == span.attrs["topic"]
            # Anchored at the publication instant.
            assert span.start == parent.start

    def test_fusion_join_links_partner_branch(self):
        stack = PerceptionStack(StackConfig(seed=1, spans=True))
        stack.run(n_frames=6)
        linked = [s for s in stack.spans.spans if s.links]
        # Every fused frame joins exactly one waiting partner.
        assert linked
        by_id = {s.span_id: s for s in stack.spans.spans}
        for span in linked:
            assert span.name == "ecu1.fusion.callback"
            for link in span.links:
                assert by_id[link].trace_id != span.trace_id

    def test_exception_spans_recorded_under_faults(self):
        stack = PerceptionStack(StackConfig(seed=7, link_loss=0.08, spans=True))
        stack.run(n_frames=12)
        categories = {s.category for s in stack.spans.spans}
        assert "exception" in categories
        assert validate_spans(stack.spans) == []

    def test_bit_identical_with_and_without_spans(self):
        from repro.tracing.golden import stack_fingerprint

        on = PerceptionStack(StackConfig(seed=7, link_loss=0.08, spans=True))
        on.run(n_frames=12)
        off = PerceptionStack(StackConfig(seed=7, link_loss=0.08))
        off.run(n_frames=12)
        assert stack_fingerprint(on) == stack_fingerprint(off)


class TestTelemetrySpanHook:
    def test_attach_stack_emits_telemetry_instants(self):
        from repro.telemetry.emitter import TelemetryEmitter, attach_stack

        stack = PerceptionStack(StackConfig(seed=1, spans=True))
        records = []
        emitter = TelemetryEmitter("veh0", records.append)
        attach_stack(stack, emitter)
        stack.run(n_frames=6)
        assert emitter.emitted == len(records) > 0
        marks = [
            s for s in stack.spans.spans if s.name == "telemetry.emit"
        ]
        assert len(marks) == emitter.emitted
