"""Property-based tests for the sliding (m,k) machinery.

Cross-checks the O(n) online/windowed implementations against an O(n*k)
brute force over arbitrary miss sequences, plus the parameter-validation
contract added with the fault-injection work.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core.weakly_hard import (
    MKConstraint,
    MissWindow,
    max_window_misses,
    satisfies_mk,
)

miss_sequences = st.lists(st.booleans(), max_size=60)
window_sizes = st.integers(min_value=1, max_value=12)


def brute_force_max_window(misses, k):
    best = 0
    for i in range(len(misses)):
        window = misses[max(0, i - k + 1): i + 1]
        best = max(best, sum(window))
    return best


class TestSlidingWindowProperties:
    @given(misses=miss_sequences, k=window_sizes)
    @settings(max_examples=200, deadline=None)
    def test_max_window_misses_matches_brute_force(self, misses, k):
        assert max_window_misses(misses, k) == brute_force_max_window(misses, k)

    @given(misses=miss_sequences, k=window_sizes, m=st.integers(0, 12))
    @settings(max_examples=200, deadline=None)
    def test_satisfies_mk_is_max_window_comparison(self, misses, k, m):
        assert satisfies_mk(misses, m, k) == (
            brute_force_max_window(misses, k) <= m
        )

    @given(misses=miss_sequences, k=window_sizes, data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_online_window_agrees_with_offline(self, misses, k, data):
        m = data.draw(st.integers(min_value=0, max_value=k))
        window = MissWindow(MKConstraint(m, k))
        step_verdicts = [window.record(miss) for miss in misses]
        # Each step's verdict is the brute-force windowed check there.
        for i, verdict in enumerate(step_verdicts):
            local = sum(misses[max(0, i - k + 1): i + 1])
            assert verdict == (local > m), f"step {i}"
        # Aggregates agree with the offline functions.
        assert window.violated == (not satisfies_mk(misses, m, k))
        assert window.total_misses == sum(misses)
        assert window.misses_in_window == sum(misses[-k:])

    @given(misses=miss_sequences, k=window_sizes)
    @settings(max_examples=100, deadline=None)
    def test_hard_constraint_violated_iff_any_miss(self, misses, k):
        window = MissWindow(MKConstraint(0, k))
        for miss in misses:
            window.record(miss)
        assert window.violated == any(misses)


class TestParameterValidation:
    @given(m=st.integers(-5, 20), k=st.integers(-5, 20))
    @settings(max_examples=200, deadline=None)
    def test_mk_constraint_accepts_exactly_valid_pairs(self, m, k):
        valid = k >= 1 and 0 <= m <= k
        if valid:
            constraint = MKConstraint(m, k)
            assert (constraint.m, constraint.k) == (m, k)
        else:
            with pytest.raises(ValueError):
                MKConstraint(m, k)

    def test_non_integer_parameters_rejected(self):
        with pytest.raises(ValueError, match="integers"):
            MKConstraint(1.5, 5)
        with pytest.raises(ValueError, match="integers"):
            MKConstraint(1, "5")

    def test_miss_window_coerces_tuples(self):
        window = MissWindow((1, 5))
        assert window.constraint == MKConstraint(1, 5)
        with pytest.raises(ValueError):
            MissWindow((3, 2))
        with pytest.raises(ValueError):
            MissWindow("not a constraint")

    def test_function_level_validation(self):
        with pytest.raises(ValueError, match="k must be >= 1"):
            max_window_misses([True], 0)
        with pytest.raises(ValueError, match="non-negative"):
            satisfies_mk([True], -1, 3)
