"""Executor-model conformance: hand-computed schedules, pinned exactly.

Each fixture is small enough to schedule by hand; the assertions pin the
full dispatch log (callback, release, start, finish, thread), so any
drift in polling-point, wait-set-order, callback-group or priority
semantics fails loudly.
"""

import pytest

from repro.ros.executors import (
    EXECUTOR_MODELS,
    POLICY_PRIORITY,
    CallbackGroup,
    CallbackSpec,
    EventLoop,
    Ros2MultiThreadedExecutor,
    Ros2SingleThreadedExecutor,
    run_schedule,
)


def tuples(dispatches):
    return [(d.callback, d.release, d.start, d.finish, d.thread)
            for d in dispatches]


class TestEventLoop:
    def test_runs_in_time_order_with_fifo_ties(self):
        loop = EventLoop()
        order = []
        loop.schedule_at(5, lambda: order.append("b"))
        loop.schedule_at(3, lambda: order.append("a"))
        loop.schedule_at(5, lambda: order.append("c"))
        loop.run()
        assert order == ["a", "b", "c"]
        assert loop.now == 5

    def test_cannot_schedule_into_the_past(self):
        loop = EventLoop()
        loop.schedule_at(10, lambda: loop.schedule_at(5, lambda: None))
        with pytest.raises(ValueError, match="past"):
            loop.run()

    def test_run_until_stops_and_advances_clock(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(50, lambda: fired.append(50))
        loop.run(until=20)
        assert fired == [] and loop.now == 20
        loop.run()
        assert fired == [50]


class TestPollingPointSemantics:
    """The single-threaded executor's polling-point latency anomaly."""

    def build(self, policy=None):
        loop = EventLoop()
        kwargs = {} if policy is None else {"policy": policy}
        ex = Ros2SingleThreadedExecutor(loop, "ecu", **kwargs)
        ex.add_callback(CallbackSpec("A", priority=1))
        ex.add_callback(CallbackSpec("B", priority=5))
        return ex

    def test_resubmitted_callback_starves_earlier_release(self):
        # A@0 drains alone (it was the only pending work at the polling
        # point).  B@0 arrives mid-drain and must wait for the next
        # poll -- where it shares a snapshot with A@5 and loses the
        # wait-set order (registration: A before B).  B waits 20 ns
        # despite releasing at 0: the polling-point anomaly.
        ex = self.build()
        log = run_schedule(ex, [(0, "A", 10), (0, "B", 10), (5, "A", 10)])
        assert tuples(log) == [
            ("A", 0, 0, 10, 0),
            ("A", 5, 10, 20, 0),
            ("B", 0, 20, 30, 0),
        ]
        assert ex.max_queueing_delay == 20

    def test_priority_policy_reorders_within_snapshot(self):
        # Same release pattern, priority policy: B (prio 5) now beats
        # A (prio 1) inside the second snapshot.
        ex = self.build(policy=POLICY_PRIORITY)
        log = run_schedule(ex, [(0, "A", 10), (0, "B", 10), (5, "A", 10)])
        assert tuples(log) == [
            ("A", 0, 0, 10, 0),
            ("B", 0, 10, 20, 0),
            ("A", 5, 20, 30, 0),
        ]

    def test_timers_polled_before_subscriptions(self):
        loop = EventLoop()
        ex = Ros2SingleThreadedExecutor(loop, "ecu")
        ex.add_callback(CallbackSpec("C"))
        ex.add_callback(CallbackSpec("S"))
        ex.add_callback(CallbackSpec("T", kind="timer"))
        # C drains first; S and T queue and share the t=5 snapshot,
        # where the timer runs first despite later registration.
        log = run_schedule(ex, [(0, "C", 5), (0, "S", 3), (0, "T", 3)])
        assert tuples(log) == [
            ("C", 0, 0, 5, 0),
            ("T", 0, 5, 8, 0),
            ("S", 0, 8, 11, 0),
        ]

    def test_at_most_one_instance_per_callback_per_snapshot(self):
        loop = EventLoop()
        ex = Ros2SingleThreadedExecutor(loop, "ecu")
        ex.add_callback(CallbackSpec("A"))
        ex.add_callback(CallbackSpec("B"))
        # Three A instances and one B queue while A@0 drains.  Each
        # subsequent snapshot admits one A and (once) the B: the B is
        # not starved behind the whole A backlog.
        log = run_schedule(
            ex, [(0, "A", 10), (1, "A", 10), (2, "A", 10), (3, "B", 10)]
        )
        assert tuples(log) == [
            ("A", 0, 0, 10, 0),
            ("A", 1, 10, 20, 0),
            ("B", 3, 20, 30, 0),
            ("A", 2, 30, 40, 0),
        ]

    def test_unknown_callback_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown callback kind"):
            CallbackSpec("X", kind="service")

    def test_duplicate_registration_rejected(self):
        loop = EventLoop()
        ex = Ros2SingleThreadedExecutor(loop, "ecu")
        ex.add_callback(CallbackSpec("A"))
        with pytest.raises(ValueError, match="duplicate"):
            ex.add_callback(CallbackSpec("A"))


class TestReentrantHandlerSubmission:
    """A handler that submit()s must not put two callbacks in flight.

    Regression: _finish used to clear _busy before running the user
    handler, so a handler submitting new work (the DAG stack's fusion
    join does exactly this) reentrantly polled and started a job, after
    which _finish started a *second* job from the same snapshot --
    overlapping dispatches on a single-threaded executor.
    """

    def test_handler_submit_with_pending_work_stays_serialized(self):
        loop = EventLoop()
        ex = Ros2SingleThreadedExecutor(loop, "ecu")
        ex.add_callback(CallbackSpec("a"), lambda _payload: ex.submit("c", 100))
        ex.add_callback(CallbackSpec("b"))
        ex.add_callback(CallbackSpec("c"))
        # b arrives while a drains; a's completion handler submits c.
        # The buggy executor ran b(1000-2000) and c(1000-1100)
        # concurrently on thread 0.
        loop.schedule_at(0, lambda: ex.submit("a", 1000))
        loop.schedule_at(500, lambda: ex.submit("b", 1000))
        loop.run()
        log = sorted(ex.dispatches, key=lambda d: d.start)
        assert tuples(log) == [
            ("a", 0, 0, 1000, 0),
            ("b", 500, 1000, 2000, 0),
            ("c", 1000, 2000, 2100, 0),
        ]

    def test_handler_submit_mid_snapshot_waits_for_next_poll(self):
        loop = EventLoop()
        ex = Ros2SingleThreadedExecutor(loop, "ecu")
        ex.add_callback(CallbackSpec("a"), lambda _payload: ex.submit("c", 5))
        ex.add_callback(CallbackSpec("b"))
        ex.add_callback(CallbackSpec("c"))
        # a and b share the t=0 snapshot; c (submitted from a's
        # handler) waits for the polling point after b completes.
        log = run_schedule(ex, [(0, "a", 10), (0, "b", 10)])
        assert tuples(log) == [
            ("a", 0, 0, 10, 0),
            ("b", 0, 10, 20, 0),
            ("c", 10, 20, 25, 0),
        ]

    @pytest.mark.parametrize("policy", [None, POLICY_PRIORITY])
    def test_single_thread_dispatches_never_overlap(self, policy):
        kwargs = {} if policy is None else {"policy": policy}
        loop = EventLoop()
        ex = Ros2SingleThreadedExecutor(loop, "ecu", **kwargs)
        ex.add_callback(CallbackSpec("a", priority=1),
                        lambda _payload: ex.submit("c", 7))
        ex.add_callback(CallbackSpec("b", priority=9))
        ex.add_callback(CallbackSpec("c", priority=5))
        run_schedule(ex, [(0, "a", 10), (3, "b", 20), (6, "a", 4),
                          (11, "b", 2), (30, "a", 5)])
        spans = sorted((d.start, d.finish) for d in ex.dispatches)
        assert all(prev_finish <= start
                   for (_, prev_finish), (start, _) in zip(spans, spans[1:]))


class TestCallbackGroups:
    """Multi-threaded executor: group serialization vs reentrancy."""

    def build(self, reentrant):
        loop = EventLoop()
        ex = Ros2MultiThreadedExecutor(loop, "ecu", n_threads=2)
        ex.add_group(CallbackGroup("g", reentrant=reentrant))
        ex.add_callback(CallbackSpec("X", group="g"))
        ex.add_callback(CallbackSpec("Y", group="g"))
        return ex

    def test_mutually_exclusive_group_serializes_despite_idle_thread(self):
        log = run_schedule(self.build(reentrant=False),
                           [(0, "X", 10), (0, "Y", 10)])
        assert tuples(log) == [
            ("X", 0, 0, 10, 0),
            ("Y", 0, 10, 20, 0),
        ]

    def test_reentrant_group_runs_concurrently(self):
        log = run_schedule(self.build(reentrant=True),
                           [(0, "X", 10), (0, "Y", 10)])
        assert tuples(log) == [
            ("X", 0, 0, 10, 0),
            ("Y", 0, 0, 10, 1),
        ]

    def test_distinct_groups_run_concurrently(self):
        loop = EventLoop()
        ex = Ros2MultiThreadedExecutor(loop, "ecu", n_threads=2)
        ex.add_callback(CallbackSpec("X", group="g1"))
        ex.add_callback(CallbackSpec("Y", group="g2"))
        log = run_schedule(ex, [(0, "X", 10), (0, "Y", 10)])
        assert {(d.callback, d.thread) for d in log} == {("X", 0), ("Y", 1)}
        assert all(d.start == 0 for d in log)

    def test_unknown_callback_submission_rejected(self):
        loop = EventLoop()
        ex = Ros2MultiThreadedExecutor(loop, "ecu")
        with pytest.raises(KeyError, match="unknown callback"):
            ex.submit("ghost", 10)

    def test_nonpositive_thread_count_rejected(self):
        with pytest.raises(ValueError, match="n_threads"):
            Ros2MultiThreadedExecutor(EventLoop(), "ecu", n_threads=0)


class TestPriorityDispatch:
    """Priority-driven dispatch vs FIFO release order (PiCAS-style)."""

    def build(self, policy):
        loop = EventLoop()
        ex = Ros2MultiThreadedExecutor(loop, "ecu", n_threads=1,
                                       policy=policy)
        ex.add_callback(CallbackSpec("low", priority=0))
        ex.add_callback(CallbackSpec("mid", priority=1))
        ex.add_callback(CallbackSpec("high", priority=5))
        return ex

    JOBS = [(0, "low", 10), (1, "mid", 5), (2, "high", 5)]

    def test_fifo_policy_picks_earliest_release(self):
        log = run_schedule(self.build("waitset"), self.JOBS)
        assert [d.callback for d in log] == ["low", "mid", "high"]

    def test_priority_policy_picks_most_urgent(self):
        log = run_schedule(self.build(POLICY_PRIORITY), self.JOBS)
        assert tuples(log) == [
            ("low", 0, 0, 10, 0),
            ("high", 2, 10, 15, 0),
            ("mid", 1, 15, 20, 0),
        ]


class TestRegistryAndDeterminism:
    def test_registry_models(self):
        assert set(EXECUTOR_MODELS) == {"single", "multi", "priority"}
        for name, factory in EXECUTOR_MODELS.items():
            ex = factory(EventLoop(), name)
            assert ex.name == name

    @pytest.mark.parametrize("model", sorted(EXECUTOR_MODELS))
    def test_identical_runs_produce_identical_dispatch_logs(self, model):
        jobs = [(0, "A", 7), (0, "B", 3), (4, "A", 2), (9, "B", 5)]

        def one_run():
            ex = EXECUTOR_MODELS[model](EventLoop(), model)
            ex.add_callback(CallbackSpec("A", priority=2))
            ex.add_callback(CallbackSpec("B", priority=7))
            return tuples(run_schedule(ex, jobs))

        assert one_run() == one_run()
