"""Differential fixture layer: run one scenario under every engine.

The batched/columnar rework (calendar queue in the simulator kernel,
struct-of-arrays ingest in the telemetry store) is sold on a single
claim: *the fast path is observationally identical to the reference
path*.  This module is the machinery that proves it.  It pins the
engine feature flags (``REPRO_SIM_ENGINE`` / ``REPRO_TELEMETRY_ENGINE``)
around a scenario callable, collects one result per engine, and
asserts byte-identical canonical JSON across the set -- so a test body
only has to say *what* to run, never *how* to flip engines.

Canonicalization matters: "the dicts compare equal" is a weaker claim
than the suite makes.  Every payload is serialized with sorted keys and
fixed separators before comparison, so the assertion really is about
bytes, and a diff prints the first divergent line instead of two
ten-kilobyte blobs.
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

#: Simulator event-queue engines (see ``repro.sim.kernel``).
SIM_ENGINES: Tuple[str, ...] = ("calendar", "heap")
#: Telemetry ingest engines (see ``repro.telemetry.service``).
TELEMETRY_ENGINES: Tuple[str, ...] = ("batched", "scalar")

SIM_ENV = "REPRO_SIM_ENGINE"
TELEMETRY_ENV = "REPRO_TELEMETRY_ENGINE"


@contextlib.contextmanager
def engine_env(
    sim: Optional[str] = None, telemetry: Optional[str] = None
) -> Iterator[None]:
    """Pin the engine env vars for the duration of the block.

    ``None`` leaves a variable untouched; previous values (including
    absence) are restored on exit even when the body raises.
    """
    saved: Dict[str, Optional[str]] = {}
    try:
        for var, value in ((SIM_ENV, sim), (TELEMETRY_ENV, telemetry)):
            if value is None:
                continue
            saved[var] = os.environ.get(var)
            os.environ[var] = value
        yield
    finally:
        for var, previous in saved.items():
            if previous is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = previous


def canonical(payload: Any) -> str:
    """Canonical JSON form of *payload* (sorted keys, no whitespace).

    Tuples become lists, enums/objects fall back to ``str`` -- good
    enough for digest payloads, which are plain types by construction.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )


def run_under_sim_engines(
    fn: Callable[[], Any], engines: Tuple[str, ...] = SIM_ENGINES
) -> Dict[str, Any]:
    """Run *fn* once per simulator engine; returns ``{engine: result}``."""
    results = {}
    for engine in engines:
        with engine_env(sim=engine):
            results[engine] = fn()
    return results


def run_under_telemetry_engines(
    fn: Callable[[], Any], engines: Tuple[str, ...] = TELEMETRY_ENGINES
) -> Dict[str, Any]:
    """Run *fn* once per telemetry engine; returns ``{engine: result}``."""
    results = {}
    for engine in engines:
        with engine_env(telemetry=engine):
            results[engine] = fn()
    return results


def assert_identical(results: Dict[str, Any], context: str = "") -> str:
    """Assert every engine produced byte-identical canonical JSON.

    Returns the (shared) canonical form so callers can pin it against
    goldens too.  On mismatch the error names the engine pair and the
    first line where the serializations diverge.
    """
    assert len(results) >= 2, "need at least two engines to differ"
    items = sorted(results.items())
    ref_engine, ref_payload = items[0]
    ref = canonical(ref_payload)
    for engine, payload in items[1:]:
        got = canonical(payload)
        if got != ref:
            where = _first_divergence(ref, got)
            raise AssertionError(
                f"{context or 'payload'}: engine {engine!r} diverges from "
                f"{ref_engine!r} at {where}"
            )
    return ref


def _first_divergence(a: str, b: str) -> str:
    """Human-oriented pointer at the first differing character."""
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            lo = max(0, i - 40)
            return (
                f"offset {i}: ...{a[lo:i + 40]!r} != ...{b[lo:i + 40]!r}"
            )
    return f"length {len(a)} != {len(b)}"
