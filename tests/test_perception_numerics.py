"""Unit tests for point clouds, scenario, ground filter and clustering."""

import numpy as np
import pytest

from repro.perception import (
    DrivingScenario,
    PointCloud,
    ScenarioConfig,
    classify_ground,
    euclidean_clusters,
)
from repro.perception.clustering import BoundingBox, boxes_from_clusters


def flat_ground(n=400, sensor_height=1.8, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-30, 30, n)
    y = rng.uniform(-30, 30, n)
    z = np.full(n, -sensor_height) + rng.normal(0, noise, n)
    i = np.ones(n)
    return np.column_stack([x, y, z, i]).astype(np.float32)


class TestPointCloud:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PointCloud(points=np.zeros((5, 3)), frame_index=0, stamp=0)

    def test_len_and_nbytes(self):
        cloud = PointCloud(points=np.zeros((10, 4), dtype=np.float32), frame_index=0, stamp=0)
        assert len(cloud) == 10
        assert cloud.nbytes == 10 * 16 + 64

    def test_concatenate_keeps_earliest_stamp(self):
        a = PointCloud(points=np.zeros((3, 4)), frame_index=7, stamp=100)
        b = PointCloud(points=np.ones((2, 4)), frame_index=7, stamp=50)
        fused = a.concatenate(b)
        assert len(fused) == 5
        assert fused.stamp == 50
        assert fused.frame_index == 7

    def test_select_by_mask(self):
        points = np.arange(20, dtype=np.float32).reshape(5, 4)
        cloud = PointCloud(points=points, frame_index=0, stamp=0)
        sub = cloud.select(np.array([True, False, True, False, False]))
        assert len(sub) == 2
        assert np.allclose(sub.points[1], points[2])

    def test_translated(self):
        cloud = PointCloud(points=np.zeros((2, 4)), frame_index=0, stamp=0)
        moved = cloud.translated(dx=1.0, dz=-2.0)
        assert np.allclose(moved.points[:, 0], 1.0)
        assert np.allclose(moved.points[:, 2], -2.0)
        assert np.allclose(cloud.points, 0.0)  # original untouched

    def test_empty(self):
        cloud = PointCloud.empty(frame_index=3)
        assert len(cloud) == 0
        assert cloud.frame_index == 3


class TestScenario:
    def test_deterministic_given_seed(self):
        a = DrivingScenario(ScenarioConfig(seed=5)).lidar_frame(0, "front")
        b = DrivingScenario(ScenarioConfig(seed=5)).lidar_frame(0, "front")
        assert np.array_equal(a.points, b.points)

    def test_different_seeds_differ(self):
        a = DrivingScenario(ScenarioConfig(seed=5)).lidar_frame(3, "front")
        b = DrivingScenario(ScenarioConfig(seed=6)).lidar_frame(3, "front")
        assert a.points.shape != b.points.shape or not np.array_equal(a.points, b.points)

    def test_front_and_rear_share_world_but_differ(self):
        scenario = DrivingScenario(ScenarioConfig(seed=5))
        front = scenario.lidar_frame(2, "front")
        rear = scenario.lidar_frame(2, "rear")
        assert front.frame_id == "lidar_front"
        assert rear.frame_id == "lidar_rear"

    def test_same_frame_can_be_requested_twice(self):
        scenario = DrivingScenario(ScenarioConfig(seed=5))
        a = scenario.lidar_frame(4, "front")
        b = scenario.lidar_frame(4, "front")
        assert np.array_equal(a.points, b.points)

    def test_lagging_frame_within_horizon_ok(self):
        scenario = DrivingScenario(ScenarioConfig(seed=5))
        scenario.lidar_frame(10, "front")
        rear = scenario.lidar_frame(8, "rear")  # rear lags two frames
        assert rear.frame_index == 8

    def test_too_old_frame_rejected(self):
        scenario = DrivingScenario(ScenarioConfig(seed=5))
        scenario.lidar_frame(200, "front")
        with pytest.raises(ValueError):
            scenario.lidar_frame(10, "rear")

    def test_unknown_mount_rejected(self):
        with pytest.raises(ValueError):
            DrivingScenario().lidar_frame(0, "left")

    def test_point_counts_vary_over_time(self):
        scenario = DrivingScenario(ScenarioConfig(seed=5, spawn_prob=0.5))
        counts = [len(scenario.lidar_frame(i, "front")) for i in range(40)]
        assert len(set(counts)) > 5

    def test_frame_header_fields(self):
        cloud = DrivingScenario(ScenarioConfig(seed=1)).lidar_frame(7, "front", stamp=123)
        assert cloud.frame_index == 7
        assert cloud.stamp == 123


class TestGroundFilter:
    def test_flat_ground_mostly_classified_ground(self):
        cloud = PointCloud(points=flat_ground(noise=0.02), frame_index=0, stamp=0)
        mask = classify_ground(cloud, sensor_height=1.8)
        assert mask.mean() > 0.9

    def test_elevated_points_not_ground(self):
        ground = flat_ground(n=300, noise=0.02)
        obstacle = ground.copy()[:50]
        obstacle[:, 2] += 1.2  # one metre above ground
        cloud = PointCloud(
            points=np.vstack([ground, obstacle]), frame_index=0, stamp=0
        )
        mask = classify_ground(cloud, sensor_height=1.8)
        assert mask[:300].mean() > 0.85
        assert mask[300:].mean() < 0.1

    def test_empty_cloud(self):
        mask = classify_ground(PointCloud.empty())
        assert mask.shape == (0,)

    def test_steep_wall_rejected_by_slope(self):
        """A vertical surface near ground level fails the slope test
        even where its lowest points sit within the height threshold."""
        rng = np.random.default_rng(3)
        ground = flat_ground(n=400, noise=0.01, seed=3)
        # A wall at x=5: points stacked vertically from ground level up.
        wall_z = np.linspace(-1.75, 0.0, 40)
        wall = np.column_stack([
            np.full(40, 5.0), rng.normal(0, 0.02, 40), wall_z, np.ones(40)
        ]).astype(np.float32)
        cloud = PointCloud(
            points=np.vstack([ground, wall]), frame_index=0, stamp=0
        )
        mask = classify_ground(cloud, sensor_height=1.8)
        # The bulk of the wall is classified non-ground.
        assert mask[400:].mean() < 0.4

    def test_mask_shape_matches_cloud(self):
        cloud = DrivingScenario(ScenarioConfig(seed=2)).lidar_frame(0, "front")
        mask = classify_ground(cloud)
        assert mask.shape == (len(cloud),)
        assert mask.dtype == bool

    def test_scenario_frame_classification_plausible(self):
        scenario = DrivingScenario(ScenarioConfig(seed=3, spawn_prob=0.8))
        cloud = scenario.lidar_frame(20, "front")
        mask = classify_ground(cloud, sensor_height=1.8)
        # The synthetic sweep is mostly ground returns.
        assert 0.5 < mask.mean() <= 1.0


class TestClustering:
    def test_two_separated_clusters_found(self):
        rng = np.random.default_rng(0)
        a = rng.normal([0, 0, 0], 0.2, (50, 3))
        b = rng.normal([10, 0, 0], 0.2, (40, 3))
        clusters = euclidean_clusters(np.vstack([a, b]), eps=0.8, min_points=8)
        assert len(clusters) == 2
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [40, 50]

    def test_noise_below_min_points_discarded(self):
        rng = np.random.default_rng(0)
        cluster = rng.normal([0, 0, 0], 0.2, (30, 3))
        noise = np.array([[50.0, 50, 0], [60, -60, 0], [-70, 10, 0]])
        clusters = euclidean_clusters(np.vstack([cluster, noise]), eps=0.8, min_points=8)
        assert len(clusters) == 1
        assert len(clusters[0]) == 30

    def test_empty_input(self):
        assert euclidean_clusters(np.empty((0, 3))) == []

    def test_single_blob_is_one_cluster(self):
        rng = np.random.default_rng(1)
        pts = rng.normal(0, 0.3, (100, 3))
        clusters = euclidean_clusters(pts, eps=1.0, min_points=5)
        assert len(clusters) == 1

    def test_bounding_boxes(self):
        pts = np.array([[0.0, 0, 0], [2, 1, 0.5], [1, 0.5, 0.2]])
        boxes = boxes_from_clusters(pts, [np.array([0, 1, 2])])
        assert len(boxes) == 1
        box = boxes[0]
        assert box.x_min == 0.0 and box.x_max == 2.0
        assert box.point_count == 3
        assert box.center == (1.0, 0.5, 0.25)
        assert box.footprint_area == pytest.approx(2.0)

    def test_cluster_partition_property(self):
        """Clusters are disjoint and cover only input indices."""
        rng = np.random.default_rng(2)
        pts = rng.uniform(-20, 20, (300, 3))
        clusters = euclidean_clusters(pts, eps=1.5, min_points=1)
        all_indices = np.concatenate(clusters) if clusters else np.array([])
        assert len(all_indices) == len(set(all_indices.tolist()))
        assert set(all_indices.tolist()) <= set(range(300))
        # min_points=1: every point belongs to exactly one cluster.
        assert len(all_indices) == 300
