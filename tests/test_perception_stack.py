"""Integration tests for the full perception stack (paper Fig. 1)."""

import numpy as np
import pytest

from repro.core import Outcome, TimeoutContext
from repro.core.chains import EventChain
from repro.perception import PerceptionStack, StackConfig
from repro.sim import BurstyGovernor, msec, usec

N_FRAMES = 25


@pytest.fixture(scope="module")
def monitored_stack():
    stack = PerceptionStack(StackConfig(seed=11))
    stack.run(n_frames=N_FRAMES)
    return stack


@pytest.fixture(scope="module")
def unmonitored_stack():
    stack = PerceptionStack(StackConfig(seed=11, monitoring=False))
    stack.run(n_frames=N_FRAMES)
    return stack


class TestPipelineFlow:
    def test_all_frames_flow_through(self, monitored_stack):
        stack = monitored_stack
        assert stack.lidar_front.frames_published == N_FRAMES
        assert stack.lidar_rear.frames_published == N_FRAMES
        assert stack.fusion.fused_count == N_FRAMES
        assert stack.classifier.classified_count == N_FRAMES
        assert stack.detector.detected_count == N_FRAMES
        assert stack.sink.frames_seen("objects") == list(range(N_FRAMES))
        assert stack.sink.frames_seen("ground_points") == list(range(N_FRAMES))

    def test_chains_validate_gap_free(self, monitored_stack):
        for chain in monitored_stack.chains.values():
            assert isinstance(chain, EventChain)
            assert len(chain) == 4
            chain.check_budget()

    def test_objects_latency_exceeds_ground_latency(self, monitored_stack):
        """Objects pass through the extra detector stage."""
        objects = np.median(monitored_stack.monitored_latencies("s3_objects"))
        ground = np.median(monitored_stack.monitored_latencies("s3_ground"))
        assert objects > ground

    def test_all_segments_have_latency_records(self, monitored_stack):
        for name in ("s0_front", "s0_rear", "s1_front", "s1_rear",
                     "s2", "s3_objects", "s3_ground"):
            lats = monitored_stack.monitored_latencies(name)
            assert len(lats) >= N_FRAMES - 1, name


class TestChainAccounting:
    def test_benign_run_has_no_misses(self, monitored_stack):
        for name, runtime in monitored_stack.chain_runtimes.items():
            report = runtime.finalize(through_activation=N_FRAMES - 1)
            assert report.miss_count == 0, name
            assert report.mk_satisfied, name
            assert report.ok_count == 4 * N_FRAMES

    def test_detection_latencies_absent_without_exceptions(self, monitored_stack):
        for name in ("s3_objects", "s3_ground"):
            assert monitored_stack.exception_records(name) == []


class TestTraceReconstruction:
    def test_traced_latencies_match_monitored(self, monitored_stack):
        """The trace-based measurement path and the monitor agree."""
        for name in ("s3_objects", "s3_ground", "s1_front"):
            traced = monitored_stack.traced_latencies(name)
            monitored = monitored_stack.monitored_latencies(name)
            n = min(len(traced), len(monitored))
            assert n >= N_FRAMES - 1
            for a, b in zip(traced[:n], monitored[:n]):
                # Traces use global time, monitors local clocks: allow
                # the PTP error bound plus drift.
                assert abs(a - b) < usec(500)

    def test_unmonitored_run_produces_traces(self, unmonitored_stack):
        for name in ("s3_objects", "s3_ground"):
            lats = unmonitored_stack.traced_latencies(name)
            assert len(lats) >= N_FRAMES - 1
            assert all(lat > 0 for lat in lats)


class TestMonitoringUnderLoad:
    pytestmark = pytest.mark.slow

    def test_overloaded_ecu2_capped_by_monitor(self):
        """Heavy interference: monitored latencies never exceed
        d_mon + sub-ms overshoot (the Fig. 9 'with monitoring' claim)."""
        stack = PerceptionStack(StackConfig(
            seed=3,
            ecu2_governor=lambda: BurstyGovernor(
                nominal=1.0, slow_min=0.1, slow_max=0.3,
                mean_interval=msec(250), mean_dwell=msec(80),
            ),
        ))
        stack.run(n_frames=40)
        for name in ("s3_objects", "s3_ground"):
            lats = np.array(stack.monitored_latencies(name))
            deadline = stack.segments[name].d_mon
            assert (lats <= deadline + msec(1)).all(), name
        # And there actually were exceptions to cap.
        total_exceptions = sum(
            len(stack.exception_records(n)) for n in ("s3_objects", "s3_ground")
        )
        assert total_exceptions > 0

    def test_miss_propagation_consistency(self):
        """A miss in s3 marks the chain activation violated exactly once."""
        stack = PerceptionStack(StackConfig(
            seed=3,
            ecu2_governor=lambda: BurstyGovernor(
                nominal=1.0, slow_min=0.1, slow_max=0.3,
                mean_interval=msec(250), mean_dwell=msec(80),
            ),
        ))
        stack.run(n_frames=40)
        report = stack.chain_runtimes["front_objects"].finalize(
            through_activation=39
        )
        miss_frames = {
            a.activation for a in report.activations if a.violated
        }
        exc_frames = {
            e.activation for e in stack.exception_records("s3_objects")
        } | {
            e.activation for e in stack.exception_records("s2")
        } | {
            e.activation for e in stack.exception_records("s0_front")
        } | {
            e.activation for e in stack.exception_records("s1_front")
        }
        assert miss_frames <= exc_frames


class TestSwitchedTransport:
    pytestmark = pytest.mark.slow

    def test_stack_runs_over_shared_switch(self):
        stack = PerceptionStack(StackConfig(
            seed=4, use_switch=True, switch_port_rate_bps=200e6,
        ))
        stack.run(n_frames=15)
        assert stack.sink.frames_seen("objects") == list(range(15))
        report = stack.chain_runtimes["front_objects"].finalize(
            through_activation=14
        )
        assert report.miss_count == 0

    def test_background_load_inflates_s2_latency(self):
        def run(load):
            stack = PerceptionStack(StackConfig(
                seed=4, use_switch=True, switch_port_rate_bps=200e6,
                switch_bg_load=load,
            ))
            stack.run(n_frames=15)
            return np.median(stack.monitored_latencies("s2"))

        assert run(0.6) > run(0.0)


class TestFaultInjection:
    def test_dropped_lidar_frame_raises_s0_exception(self):
        stack = PerceptionStack(StackConfig(
            seed=5,
            fault_front=lambda frame: None if frame == 10 else 0,
        ))
        stack.run(n_frames=20)
        exc = stack.exception_records("s0_front")
        assert any(e.activation == 10 for e in exc)

    def test_delayed_rear_lidar_triggers_fusion_recovery(self):
        """The paper's Fig. 3 case: rear late -> fusion segment exception
        -> recovery publishes the front-only cloud."""
        stack = PerceptionStack(StackConfig(
            seed=5,
            fault_rear=lambda frame: msec(80) if frame == 10 else 0,
        ))
        stack.run(n_frames=20)
        # s0_rear detects the late remote arrival...
        s0_exc = stack.exception_records("s0_rear")
        assert any(e.activation == 10 for e in s0_exc)
        # Frame 10 still reaches the sink (recovered path or late rear).
        assert 10 in stack.sink.frames_seen("objects")
