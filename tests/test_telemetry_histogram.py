"""Accuracy bounds of the streaming latency histogram.

The sketch promises: the value it reports for quantile q is within
relative error alpha of the exact r-th smallest sample,
r = max(1, ceil(q * count)).  This is the property the fleet store
relies on to report p50/p95/p99 without retaining samples.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.histogram import StreamingHistogram

samples = st.lists(
    st.integers(min_value=1, max_value=10**9), min_size=1, max_size=300
)
quantiles = st.sampled_from([0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0])


def exact_rank_value(values, q):
    rank = max(1, math.ceil(q * len(values)))
    return sorted(values)[rank - 1]


class TestAccuracyBound:
    @given(values=samples, q=quantiles,
           alpha=st.sampled_from([0.01, 0.05]))
    @settings(max_examples=300, deadline=None)
    def test_quantile_within_alpha_of_exact(self, values, q, alpha):
        hist = StreamingHistogram(alpha=alpha)
        for v in values:
            hist.add(v)
        exact = exact_rank_value(values, q)
        estimate = hist.quantile(q)
        # Tiny absolute epsilon absorbs float round-off at bucket edges.
        assert abs(estimate - exact) <= alpha * exact + 1e-6, (
            f"q={q}: estimate {estimate} vs exact {exact}"
        )

    @given(values=samples, alpha=st.sampled_from([0.01, 0.05]))
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_single_sketch(self, values, alpha):
        cut = len(values) // 2
        left = StreamingHistogram(alpha=alpha)
        right = StreamingHistogram(alpha=alpha)
        combined = StreamingHistogram(alpha=alpha)
        for v in values[:cut]:
            left.add(v)
        for v in values[cut:]:
            right.add(v)
        for v in values:
            combined.add(v)
        left.merge(right)
        assert left.snapshot() == combined.snapshot()

    @given(values=samples)
    @settings(max_examples=100, deadline=None)
    def test_snapshot_restore_round_trip(self, values):
        hist = StreamingHistogram()
        for v in values:
            hist.add(v)
        # Through JSON: the snapshot must survive serialization exactly.
        restored = StreamingHistogram.restore(
            json.loads(json.dumps(hist.snapshot()))
        )
        assert restored.snapshot() == hist.snapshot()
        for q in (0.5, 0.95, 0.99):
            assert restored.quantile(q) == hist.quantile(q)


class TestMergeAlgebra:
    """First-class merge: the warehouse's cohort-aggregation contract.

    Merging is exact on sketch state (bucket counts add), so it is
    commutative and associative *on snapshots*, not merely on quantile
    estimates -- and the alpha accuracy bound survives any merge tree.
    """

    chunked = st.lists(samples, min_size=1, max_size=5)

    @given(values=samples, alpha=st.sampled_from([0.01, 0.05]))
    @settings(max_examples=100, deadline=None)
    def test_merged_is_commutative(self, values, alpha):
        cut = len(values) // 2
        a = StreamingHistogram(alpha=alpha)
        b = StreamingHistogram(alpha=alpha)
        for v in values[:cut]:
            a.add(v)
        for v in values[cut:]:
            b.add(v)
        assert a.merged(b).snapshot() == b.merged(a).snapshot()

    @given(values=samples, alpha=st.sampled_from([0.01, 0.05]))
    @settings(max_examples=100, deadline=None)
    def test_merged_is_associative(self, values, alpha):
        thirds = max(1, len(values) // 3)
        parts = [values[:thirds], values[thirds:2 * thirds],
                 values[2 * thirds:]]
        a, b, c = (StreamingHistogram(alpha=alpha) for _ in range(3))
        for hist, part in zip((a, b, c), parts):
            for v in part:
                hist.add(v)
        left = a.merged(b).merged(c)
        right = a.merged(b.merged(c))
        assert left.snapshot() == right.snapshot()

    @given(values=samples)
    @settings(max_examples=50, deadline=None)
    def test_merged_leaves_operands_unchanged(self, values):
        cut = len(values) // 2
        a = StreamingHistogram()
        b = StreamingHistogram()
        for v in values[:cut]:
            a.add(v)
        for v in values[cut:]:
            b.add(v)
        before_a, before_b = a.snapshot(), b.snapshot()
        a.merged(b)
        assert a.snapshot() == before_a
        assert b.snapshot() == before_b

    @given(chunks=chunked, q=quantiles, alpha=st.sampled_from([0.01, 0.05]))
    @settings(max_examples=200, deadline=None)
    def test_alpha_bound_survives_arbitrary_merge_trees(
        self, chunks, q, alpha
    ):
        # Build one sketch per chunk, fold them left-to-right; the
        # result must satisfy the same accuracy bound as a single
        # sketch over the concatenation.
        sketches = []
        for chunk in chunks:
            hist = StreamingHistogram(alpha=alpha)
            for v in chunk:
                hist.add(v)
            sketches.append(hist)
        merged = StreamingHistogram.merge_many(sketches, alpha=alpha)
        flat = [v for chunk in chunks for v in chunk]
        assert merged.count == len(flat)
        assert merged.total == sum(flat)
        if not flat:
            assert merged.quantile(q) is None
            return
        exact = exact_rank_value(flat, q)
        estimate = merged.quantile(q)
        assert abs(estimate - exact) <= alpha * exact + 1e-6

    @given(chunks=chunked, alpha=st.sampled_from([0.01, 0.05]))
    @settings(max_examples=100, deadline=None)
    def test_merge_many_equals_single_sketch(self, chunks, alpha):
        sketches = []
        combined = StreamingHistogram(alpha=alpha)
        for chunk in chunks:
            hist = StreamingHistogram(alpha=alpha)
            for v in chunk:
                hist.add(v)
                combined.add(v)
            sketches.append(hist)
        merged = StreamingHistogram.merge_many(sketches, alpha=alpha)
        assert merged.snapshot() == combined.snapshot()

    def test_merge_many_of_nothing_is_empty(self):
        merged = StreamingHistogram.merge_many([], alpha=0.05)
        assert merged.count == 0
        assert merged.alpha == 0.05
        assert merged.quantile(0.5) is None

    def test_merged_rejects_mismatched_alpha(self):
        with pytest.raises(ValueError):
            StreamingHistogram(alpha=0.01).merged(
                StreamingHistogram(alpha=0.02)
            )


class TestEdgeCases:
    def test_empty_histogram_reports_none(self):
        hist = StreamingHistogram()
        assert hist.quantile(0.5) is None
        assert hist.mean is None
        assert len(hist) == 0

    def test_zero_and_negative_samples_report_as_zero(self):
        hist = StreamingHistogram()
        for v in (0, -5, 0):
            hist.add(v)
        assert hist.quantile(0.5) == 0.0
        assert hist.count == 3
        assert hist.min == -5

    def test_exact_counters(self):
        hist = StreamingHistogram()
        for v in (10, 20, 30):
            hist.add(v)
        assert hist.count == 3
        assert hist.total == 60
        assert hist.mean == 20
        assert hist.min == 10 and hist.max == 30

    def test_merge_rejects_mismatched_alpha(self):
        with pytest.raises(ValueError):
            StreamingHistogram(alpha=0.01).merge(StreamingHistogram(alpha=0.02))

    def test_invalid_alpha_rejected(self):
        for alpha in (0.0, 1.0, -0.1):
            with pytest.raises(ValueError):
                StreamingHistogram(alpha=alpha)

    def test_invalid_quantile_rejected(self):
        hist = StreamingHistogram()
        hist.add(1)
        with pytest.raises(ValueError):
            hist.quantile(1.5)
