"""Tests for the execution-timeline recorder and renderer."""

import pytest

from repro.analysis import TimelineRecorder, render_timeline
from repro.sim import Compute, MulticoreScheduler, Simulator, Sleep, msec


def make():
    sim = Simulator(seed=1)
    sched = MulticoreScheduler(sim, n_cores=1)
    return sim, sched


class TestRecorder:
    def test_busy_time_matches_scheduler_accounting(self):
        sim, sched = make()
        recorder = TimelineRecorder(sched)

        def body(_):
            yield Compute(msec(3))
            yield Sleep(msec(2))
            yield Compute(msec(1))

        thread = sched.spawn("worker", body)
        sim.run()
        recorder.close()
        assert recorder.busy_time("worker") == thread.total_cpu_time == msec(4)

    def test_preemption_creates_ready_span(self):
        sim, sched = make()
        recorder = TimelineRecorder(sched)

        def low(_):
            yield Compute(msec(10))

        def high(_):
            yield Sleep(msec(3))
            yield Compute(msec(4))

        sched.spawn("high", high, priority=10)
        sched.spawn("low", low, priority=1)
        sim.run()
        recorder.close()
        kinds = [s.kind for s in recorder.spans["low"]]
        assert "ready" in kinds
        # Low's run time is unchanged by the preemption.
        assert recorder.busy_time("low") == msec(10)


class TestRenderer:
    def test_render_shows_lanes_and_axis(self):
        sim, sched = make()
        recorder = TimelineRecorder(sched)

        def body(_):
            yield Compute(msec(5))

        sched.spawn("t", body)
        sim.run()
        art = render_timeline(recorder, 0, msec(10), width=40)
        assert "t" in art
        assert "#" in art
        assert "running" in art

    def test_preempted_window_shows_ready_marks(self):
        sim, sched = make()
        recorder = TimelineRecorder(sched)

        def low(_):
            yield Compute(msec(10))

        def high(_):
            yield Sleep(msec(3))
            yield Compute(msec(4))

        sched.spawn("high", high, priority=10)
        sched.spawn("low", low, priority=1)
        sim.run()
        art = render_timeline(recorder, 0, msec(15), width=60)
        low_lane = next(line for line in art.splitlines() if line.startswith("low"))
        assert "=" in low_lane
        assert "#" in low_lane

    def test_invalid_window(self):
        sim, sched = make()
        recorder = TimelineRecorder(sched)
        with pytest.raises(ValueError):
            render_timeline(recorder, 10, 10)

    def test_thread_selection(self):
        sim, sched = make()
        recorder = TimelineRecorder(sched)

        def body(_):
            yield Compute(msec(1))

        sched.spawn("a", body)
        sched.spawn("b", body)
        sim.run()
        art = render_timeline(recorder, 0, msec(3), threads=["a"])
        assert "a" in art
        assert "\nb" not in art
