"""Integration tests for remote segment monitoring (paper Sec. IV-B)."""

import pytest

from _harness import Message, activation_of, message_topic, two_ecu_world

from repro.core import (
    ChainRuntime,
    EventChain,
    InterArrivalMonitor,
    MKConstraint,
    MonitorThread,
    LocalSegmentRuntime,
    Outcome,
    PropagateAlways,
    RecoverAlways,
    SyncRemoteMonitor,
    TimeoutContext,
)
from repro.core.segments import local_segment, remote_segment
from repro.dds import Topic
from repro.ros import Node
from repro.sim import Compute, msec, usec


def remote_setup(
    seed=1,
    loss=0.0,
    jitter=0,
    d_mon=msec(5),
    period=msec(100),
    context=TimeoutContext.MONITOR_THREAD,
    handler=None,
    mk=MKConstraint(1, 5),
):
    """ECU1 publisher -> link -> ECU2 subscriber with a sync monitor."""
    sim, ecu1, ecu2, domain = two_ecu_world(seed=seed, loss=loss, jitter=jitter)
    sender = Node(domain, ecu1, "sender", priority=40)
    receiver = Node(domain, ecu2, "receiver", priority=30)
    topic = message_topic("points")
    received = []
    sub = receiver.create_subscription(
        topic, lambda s: received.append((s.data.frame_index, sim.now, s.recovered))
    )
    pub = sender.create_publisher(topic)
    segment = remote_segment("seg_net", "points", "ecu1", "ecu2", d_mon=d_mon)
    monitor_thread = MonitorThread(ecu2, priority=99)
    monitor = SyncRemoteMonitor(
        segment,
        sub.reader,
        period=period,
        handler=handler,
        mk=mk,
        context=context,
        monitor_thread=monitor_thread,
        activation_fn=activation_of,
    )
    chain = EventChain(
        name="net_chain", segments=[segment], period=period,
        budget_e2e=d_mon + msec(1), mk=mk,
    )
    runtime = ChainRuntime(chain)
    monitor.reporters.append(runtime)
    return sim, pub, monitor, received, runtime, monitor_thread


class TestNominalOperation:
    def test_on_time_samples_record_ok(self):
        sim, pub, monitor, received, runtime, _mt = remote_setup()
        for i in range(5):
            sim.schedule_at(msec(1) + i * msec(100), pub.publish, Message(frame_index=i))
        # Stop before the (legitimate) timeout for the never-sent frame 5
        # at 401 + 100 + 5 = 506ms.
        sim.run(until=msec(500))
        monitor.stop()
        outcomes = [o for _n, _l, o in monitor.latencies]
        assert outcomes == [Outcome.OK] * 5
        assert len(received) == 5
        assert monitor.exceptions == []

    def test_latency_is_network_response_time(self):
        sim, pub, monitor, received, _rt, _mt = remote_setup()
        sim.schedule_at(msec(1), pub.publish, Message(frame_index=0))
        sim.run(until=msec(50))
        monitor.stop()
        _n, latency, _o = monitor.latencies[0]
        # 200us link + 10us ksoftirq + serialization (negligible at 1e12).
        assert usec(200) <= latency <= usec(260)

    def test_timer_armed_for_next_activation(self):
        sim, pub, monitor, _rx, _rt, _mt = remote_setup(d_mon=msec(5))
        sim.schedule_at(msec(1), pub.publish, Message(frame_index=0))
        sim.run(until=msec(50))
        assert monitor.awaiting == 1
        # Deadline = source_ts (1ms) + period (100ms) + d_mon (5ms).
        assert monitor.deadline_local == msec(106)
        monitor.stop()


class TestViolationDetection:
    def test_missing_sample_detected_at_programmed_deadline(self):
        sim, pub, monitor, received, runtime, _mt = remote_setup(d_mon=msec(5))
        # Frame 0 on time; frame 1 never sent.
        sim.schedule_at(msec(1), pub.publish, Message(frame_index=0))
        sim.run(until=msec(300))
        monitor.stop()
        assert len(monitor.exceptions) >= 1
        exc = monitor.exceptions[0]
        assert exc.activation == 1
        assert exc.deadline == msec(106)
        # Handled via the high-priority monitor thread: entry within ~50us.
        assert 0 <= exc.detection_latency <= usec(100)

    def test_consecutive_misses_each_detected(self):
        """The key advantage over inter-arrival monitoring: every
        missing activation raises its own exception, period by period."""
        sim, pub, monitor, _rx, runtime, _mt = remote_setup(d_mon=msec(5))
        sim.schedule_at(msec(1), pub.publish, Message(frame_index=0))
        # Frames 1..3 never sent.
        sim.run(until=msec(450))
        monitor.stop()
        activations = [e.activation for e in monitor.exceptions]
        assert activations[:3] == [1, 2, 3]
        deadlines = [e.deadline for e in monitor.exceptions[:3]]
        assert deadlines == [msec(106), msec(206), msec(306)]

    def test_late_sample_discarded_after_exception(self):
        sim, pub, monitor, received, _rt, _mt = remote_setup(d_mon=msec(5))
        sim.schedule_at(msec(1), pub.publish, Message(frame_index=0))
        # Frame 1 sent 50ms late: deadline was 106ms, arrives ~151ms.
        sim.schedule_at(msec(151), pub.publish, Message(frame_index=1))
        sim.schedule_at(msec(201), pub.publish, Message(frame_index=2))
        sim.run(until=msec(400))
        monitor.stop()
        frames = [f for f, _t, _r in received]
        assert 1 not in frames
        assert monitor.late_discarded == 1
        # Frame 2 still accepted (rate preserved).
        assert 2 in frames

    def test_exception_reported_as_miss_to_chain(self):
        sim, pub, monitor, _rx, runtime, _mt = remote_setup(
            d_mon=msec(5), handler=PropagateAlways()
        )
        sim.schedule_at(msec(1), pub.publish, Message(frame_index=0))
        sim.run(until=msec(250))
        monitor.stop()
        report = runtime.finalize()
        assert report.miss_count >= 1
        assert report.activations[1].violated


class TestRecoveryAndPropagation:
    def test_recovery_issues_receive_event(self):
        handler = RecoverAlways(
            lambda ctx: Message(frame_index=ctx.exception.activation, value="sub")
        )
        sim, pub, monitor, received, runtime, _mt = remote_setup(
            d_mon=msec(5), handler=handler
        )
        sim.schedule_at(msec(1), pub.publish, Message(frame_index=0))
        sim.run(until=msec(250))
        monitor.stop()
        recovered = [(f, r) for f, _t, r in received if r]
        assert (1, True) in recovered
        report = runtime.finalize()
        assert report.recovered_count >= 1
        assert not report.activations[1].violated

    def test_recovery_uses_last_good_data(self):
        captured = []

        class Probe(RecoverAlways):
            def __init__(self):
                super().__init__(lambda ctx: ctx.last_good_data)

            def user_exception(self, context):
                captured.append(context.last_good_data)
                return super().user_exception(context)

        sim, pub, monitor, received, _rt, _mt = remote_setup(
            d_mon=msec(5), handler=Probe()
        )
        sim.schedule_at(msec(1), pub.publish, Message(frame_index=0, value="good"))
        sim.run(until=msec(250))
        monitor.stop()
        assert captured and captured[0].value == "good"

    def test_propagation_sends_error_event_to_next_local(self):
        sim, pub, monitor, _rx, runtime, monitor_thread = remote_setup(
            d_mon=msec(5), handler=PropagateAlways()
        )
        next_seg = local_segment("seg_next", "ecu2", "points", "out", d_mon=msec(10))
        next_runtime = LocalSegmentRuntime(next_seg, activation_fn=activation_of)
        monitor_thread.add_segment(next_runtime)
        next_runtime.reporters.append(runtime)
        # Chain runtime is for a different chain shape; just check the
        # SKIPPED report arrives.
        monitor.next_local = [next_runtime]
        sim.schedule_at(msec(1), pub.publish, Message(frame_index=0))
        sim.run(until=msec(250))
        monitor.stop()
        assert runtime.records[1]["seg_next"].outcome is Outcome.SKIPPED


class TestTimeoutContexts:
    def test_middleware_context_entry_latency_grows_under_load(self):
        sim, pub, monitor, _rx, _rt, _mt = remote_setup(
            d_mon=msec(5), context=TimeoutContext.MIDDLEWARE
        )
        # Load the receiving ECU's cores with mid-priority hogs above
        # the middleware priority (30) but below ksoftirq (90).
        ecu2 = monitor.ecu

        def hog(_):
            from repro.sim import Sleep

            while True:
                yield Compute(msec(8))
                yield Sleep(usec(200))

        for i in range(2):
            ecu2.spawn(f"hog{i}", hog, priority=50)
        sim.schedule_at(msec(1), pub.publish, Message(frame_index=0))
        sim.run(until=msec(400))
        monitor.stop()
        assert monitor.entry_latency_samples
        # Middleware thread crowded out by the hogs: entry latency far
        # above the monitor-thread path.
        assert max(monitor.entry_latency_samples) > usec(300)

    def test_monitor_thread_context_entry_latency_stays_bounded(self):
        sim, pub, monitor, _rx, _rt, _mt = remote_setup(
            d_mon=msec(5), context=TimeoutContext.MONITOR_THREAD
        )
        ecu2 = monitor.ecu

        def hog(_):
            while True:
                yield Compute(msec(50))

        for i in range(2):
            ecu2.spawn(f"hog{i}", hog, priority=50)
        sim.schedule_at(msec(1), pub.publish, Message(frame_index=0))
        sim.run(until=msec(400))
        monitor.stop()
        assert monitor.entry_latency_samples
        # Highest priority: preempts the hogs immediately.
        assert max(monitor.entry_latency_samples) < usec(200)


class TestLossHandling:
    def test_lost_best_effort_samples_become_exceptions(self):
        sim, pub, monitor, received, runtime, _mt = remote_setup(
            seed=7, loss=0.3, d_mon=msec(5)
        )
        for i in range(30):
            sim.schedule_at(msec(1) + i * msec(100), pub.publish, Message(frame_index=i))
        sim.run(until=msec(3200))
        monitor.stop()
        delivered = {f for f, _t, _r in received}
        excepted = {e.activation for e in monitor.exceptions}
        # Monitoring initializes at the first reception (paper Fig. 8):
        # losses before that are inherently invisible.  From then on,
        # every activation either arrived or raised an exception.
        first = min(delivered)
        assert delivered | excepted >= set(range(first, 30))
        assert delivered.isdisjoint(excepted)


class TestInterArrivalMonitor:
    def _build(self, t_max, seed=1, rearm=False):
        sim, ecu1, ecu2, domain = two_ecu_world(seed=seed)
        sender = Node(domain, ecu1, "sender", priority=40)
        receiver = Node(domain, ecu2, "receiver", priority=30)
        topic = message_topic("points")
        sub = receiver.create_subscription(topic, lambda s: None)
        pub = sender.create_publisher(topic)
        monitor_thread = MonitorThread(ecu2, priority=99)
        monitor = InterArrivalMonitor(
            sub.reader,
            t_max_ia=t_max,
            context=TimeoutContext.MONITOR_THREAD,
            monitor_thread=monitor_thread,
            rearm_on_expiry=rearm,
        )
        return sim, pub, monitor

    def test_detects_silence(self):
        sim, pub, monitor = self._build(t_max=msec(110))
        sim.schedule_at(msec(1), pub.publish, Message(frame_index=0))
        sim.run(until=msec(400))
        monitor.stop()
        assert len(monitor.detections) == 1

    def test_accumulating_lateness_undetected(self):
        """Each sample 8ms later than the last: per-hop gap 108ms stays
        under t_max=110ms, while absolute latency grows unboundedly --
        the false-negative blind spot of Fig. 6."""
        sim, pub, monitor = self._build(t_max=msec(110))
        for i in range(20):
            # Nominal period 100ms plus 8ms cumulative drift.
            sim.schedule_at(msec(1) + i * msec(108), pub.publish, Message(frame_index=i))
        # Stop before the trailing silence (last frame ~2053ms) would
        # legitimately fire the timer at ~2163ms.
        sim.run(until=msec(2150))
        monitor.stop()
        # Frame 19 is 19*8 = 152ms late in absolute terms, yet nothing
        # was ever detected.
        assert monitor.detections == []

    def test_tight_setting_false_positives_on_jitter(self):
        sim, pub, monitor = self._build(t_max=msec(100))
        # Benign arrival jitter: alternating 99/101ms gaps around 100ms.
        t = msec(1)
        for i in range(20):
            sim.schedule_at(t, pub.publish, Message(frame_index=i))
            t += msec(99) if i % 2 == 0 else msec(101)
        sim.run(until=msec(2300))
        monitor.stop()
        # Several spurious detections despite no real violation.
        assert len(monitor.detections) >= 5

    def test_without_rearm_consecutive_misses_collapse_to_one(self):
        sim, pub, monitor = self._build(t_max=msec(110), rearm=False)
        sim.schedule_at(msec(1), pub.publish, Message(frame_index=0))
        # Silence for 5 periods: only ONE detection (timer armed on
        # arrival only) -- cannot count m misses.
        sim.run(until=msec(600))
        monitor.stop()
        assert len(monitor.detections) == 1

    def test_invalid_params(self):
        sim, ecu1, ecu2, domain = two_ecu_world()
        receiver = Node(domain, ecu2, "receiver", priority=30)
        sub = receiver.create_subscription(message_topic("t"), lambda s: None)
        with pytest.raises(ValueError):
            InterArrivalMonitor(sub.reader, t_max_ia=0)
        with pytest.raises(ValueError):
            InterArrivalMonitor(
                sub.reader, t_max_ia=1, context=TimeoutContext.MONITOR_THREAD
            )


class TestValidation:
    def test_local_segment_rejected(self):
        sim, pub, monitor, _rx, _rt, mt = remote_setup()
        seg = local_segment("l", "ecu2", "a", "b", d_mon=msec(5))
        with pytest.raises(ValueError):
            SyncRemoteMonitor(seg, monitor.reader, period=msec(100), monitor_thread=mt)

    def test_deadline_required(self):
        sim, pub, monitor, _rx, _rt, mt = remote_setup()
        seg = remote_segment("r", "points", "ecu1", "ecu2")
        with pytest.raises(ValueError):
            SyncRemoteMonitor(seg, monitor.reader, period=msec(100), monitor_thread=mt)

    def test_monitor_thread_required_for_context(self):
        sim, pub, monitor, _rx, _rt, _mt = remote_setup()
        seg = remote_segment("r2", "points", "ecu1", "ecu2", d_mon=msec(5))
        with pytest.raises(ValueError):
            SyncRemoteMonitor(
                seg, monitor.reader, period=msec(100),
                context=TimeoutContext.MONITOR_THREAD, monitor_thread=None,
            )
