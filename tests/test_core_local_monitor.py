"""Integration tests for local segment monitoring (paper Sec. IV-A)."""

import pytest

from _harness import Message, PipelineWorld, activation_of

from repro.core import (
    ChainRuntime,
    EventChain,
    MKConstraint,
    MonitorThread,
    LocalSegmentRuntime,
    Outcome,
    PropagateAlways,
    RecoverAlways,
    RecoverUpTo,
)
from repro.core.local_monitor import EventRingBuffer
from repro.core.segments import local_segment, remote_segment
from repro.sim import msec, usec


class TestRingBuffer:
    def test_fifo_drain(self):
        buf = EventRingBuffer(capacity=4)
        for i in range(3):
            buf.post((i,))
        assert buf.drain() == [(0,), (1,), (2,)]
        assert buf.drain() == []

    def test_overflow_counted_and_newest_dropped(self):
        buf = EventRingBuffer(capacity=2)
        assert buf.post((0,))
        assert buf.post((1,))
        assert not buf.post((2,))
        assert buf.overflows == 1
        assert buf.drain() == [(0,), (1,)]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EventRingBuffer(capacity=0)


class TestNormalOperation:
    def test_in_time_segments_record_ok(self):
        world = PipelineWorld(worker_time=lambda i: msec(5), d_mon=msec(20))
        world.publish_frames(10)
        world.run(until=msec(1200))
        outcomes = [o for _n, _l, o in world.runtime.latencies]
        assert outcomes == [Outcome.OK] * 10
        assert world.runtime.exceptions == []
        assert len(world.sink_received) == 10

    def test_latency_reflects_compute_time(self):
        world = PipelineWorld(worker_time=lambda i: msec(5), d_mon=msec(20))
        world.publish_frames(5)
        world.run(until=msec(700))
        for _n, latency, _o in world.runtime.latencies:
            assert msec(5) <= latency <= msec(6)

    def test_no_pending_timeouts_after_completion(self):
        world = PipelineWorld(worker_time=lambda i: msec(5))
        world.publish_frames(3)
        world.run(until=msec(500))
        assert world.runtime.pending == {}

    def test_chain_runtime_sees_ok_reports(self):
        world = PipelineWorld(worker_time=lambda i: msec(5))
        world.publish_frames(4)
        world.run(until=msec(600))
        report = world.chain_runtime.finalize()
        assert report.ok_count == 4
        assert report.miss_count == 0
        assert report.mk_satisfied


class TestTemporalExceptions:
    def test_late_segment_raises_exception_near_deadline(self):
        world = PipelineWorld(worker_time=lambda i: msec(50), d_mon=msec(20))
        world.publish_frames(1)
        world.run(until=msec(300))
        assert len(world.runtime.exceptions) == 1
        exc = world.runtime.exceptions[0]
        # Raised shortly after start + d_mon; overshoot is detection +
        # handler costs (tens of microseconds).
        assert 0 <= exc.detection_latency <= usec(500)

    def test_monitored_latency_capped_at_deadline_plus_overshoot(self):
        world = PipelineWorld(worker_time=lambda i: msec(50), d_mon=msec(20))
        world.publish_frames(5)
        world.run(until=msec(1000))
        for _n, latency, outcome in world.runtime.latencies:
            assert outcome is Outcome.MISS
            assert msec(20) <= latency <= msec(20) + usec(500)

    def test_late_publication_suppressed_on_propagation(self):
        world = PipelineWorld(
            worker_time=lambda i: msec(50), d_mon=msec(20), handler=PropagateAlways()
        )
        world.publish_frames(3)
        world.run(until=msec(600))
        # All publications were late -> all suppressed -> sink sees nothing.
        assert world.sink_received == []
        assert world.pub_b.writer.suppressed == 3

    def test_mixed_late_and_ontime(self):
        world = PipelineWorld(
            worker_time=lambda i: msec(50) if i % 2 == 0 else msec(5),
            d_mon=msec(20),
        )
        world.publish_frames(6)
        world.run(until=msec(1000))
        outcomes = {n: o for n, _l, o in world.runtime.latencies}
        assert outcomes == {
            0: Outcome.MISS,
            1: Outcome.OK,
            2: Outcome.MISS,
            3: Outcome.OK,
            4: Outcome.MISS,
            5: Outcome.OK,
        }
        # Only on-time frames reach the sink, and no late duplicates.
        assert [f for f, _t, _r in world.sink_received] == [1, 3, 5]

    def test_skip_does_not_leak_to_next_activation(self):
        """The skip counter suppresses exactly the late publication."""
        world = PipelineWorld(
            worker_time=lambda i: msec(50) if i == 0 else msec(5),
            d_mon=msec(20),
        )
        world.publish_frames(4)
        world.run(until=msec(800))
        assert [f for f, _t, _r in world.sink_received] == [1, 2, 3]
        assert world.pub_b.writer.suppressed == 1


class TestRecovery:
    def test_recovery_publishes_substitute_data(self):
        handler = RecoverAlways(
            lambda ctx: Message(frame_index=ctx.exception.activation, value="sub")
        )
        world = PipelineWorld(
            worker_time=lambda i: msec(50), d_mon=msec(20), handler=handler
        )
        world.publish_frames(3)
        world.run(until=msec(600))
        # Sink receives the recovered samples at ~deadline time.
        assert len(world.sink_received) == 3
        assert all(recovered for _f, _t, recovered in world.sink_received)
        outcomes = [o for _n, _l, o in world.runtime.latencies]
        assert outcomes == [Outcome.RECOVERED] * 3

    def test_recovered_not_a_chain_miss(self):
        handler = RecoverAlways(
            lambda ctx: Message(frame_index=ctx.exception.activation)
        )
        world = PipelineWorld(
            worker_time=lambda i: msec(50), d_mon=msec(20), handler=handler,
            mk=MKConstraint(0, 5),
        )
        world.publish_frames(5)
        world.run(until=msec(1000))
        report = world.chain_runtime.finalize()
        assert report.recovered_count == 5
        assert report.miss_count == 0
        assert report.mk_satisfied  # (0,5) holds because recoveries don't count

    def test_recover_up_to_threshold(self):
        handler = RecoverUpTo(
            max_misses=1,
            data_factory=lambda ctx: Message(frame_index=ctx.exception.activation),
        )
        world = PipelineWorld(
            worker_time=lambda i: msec(50), d_mon=msec(20), handler=handler,
            mk=MKConstraint(1, 3),
        )
        world.publish_frames(6)
        world.run(until=msec(1200))
        outcomes = [o for _n, _l, o in world.runtime.latencies]
        # First exception: misses=1 <= 1 -> recover.  Recoveries don't
        # count as misses, so every exception sees misses=1 and recovers.
        assert outcomes == [Outcome.RECOVERED] * 6

    def test_handler_receives_current_miss_count(self):
        seen = []

        class Probe(PropagateAlways):
            def user_exception(self, context):
                seen.append(context.misses)
                return None

        world = PipelineWorld(
            worker_time=lambda i: msec(50), d_mon=msec(20), handler=Probe(),
            mk=MKConstraint(2, 4),
        )
        world.publish_frames(4)
        world.run(until=msec(900))
        # Misses accumulate in the window: 1, 2, 3, then window slides (k=4).
        assert seen[:3] == [1, 2, 3]

    def test_handler_gets_start_data(self):
        captured = []

        class Probe(PropagateAlways):
            def user_exception(self, context):
                captured.append(context.start_data)
                return None

        world = PipelineWorld(
            worker_time=lambda i: msec(50), d_mon=msec(20), handler=Probe()
        )
        world.publish_frames(1)
        world.run(until=msec(300))
        assert len(captured) == 1
        assert captured[0].frame_index == 0


class TestFixedProcessingOrder:
    def test_second_segment_exception_delayed_by_first(self):
        """Two segments expiring together are handled in registration
        order -- the ground-points-after-objects effect of Fig. 10."""
        from repro.dds import DdsDomain, Topic
        from repro.ros import Node
        from repro.sim import Compute, Ecu, Simulator

        sim = Simulator(seed=1)
        ecu = Ecu(sim, "ecu2", n_cores=2)
        domain = DdsDomain(sim, local_latency=usec(10))
        producer = Node(domain, ecu, "producer", priority=40)
        worker = Node(domain, ecu, "worker", priority=30)
        topic_in = Topic("points", size_fn=lambda m: 100)
        topic_obj = Topic("objects", size_fn=lambda m: 100)
        topic_gnd = Topic("ground", size_fn=lambda m: 100)
        pub_obj = worker.create_publisher(topic_obj)
        pub_gnd = worker.create_publisher(topic_gnd)

        def worker_cb(sample):
            yield Compute(msec(50))  # too slow for both segments
            pub_obj.publish(sample.data)
            pub_gnd.publish(sample.data)

        sub = worker.create_subscription(topic_in, worker_cb)
        seg_obj = local_segment("seg_objects", "ecu2", "points", "objects", d_mon=msec(10))
        seg_gnd = local_segment("seg_ground", "ecu2", "points", "ground", d_mon=msec(10))
        monitor = MonitorThread(ecu, priority=99)
        rt_obj = LocalSegmentRuntime(seg_obj, activation_fn=activation_of)
        rt_gnd = LocalSegmentRuntime(seg_gnd, activation_fn=activation_of)
        monitor.add_segment(rt_obj)
        monitor.add_segment(rt_gnd)
        rt_obj.attach_start(sub.reader)
        rt_obj.attach_end_writer(pub_obj.writer)
        rt_gnd.attach_start(sub.reader)
        rt_gnd.attach_end_writer(pub_gnd.writer)

        pub_in = producer.create_publisher(topic_in)
        sim.schedule_at(msec(1), pub_in.publish, Message(frame_index=0))
        sim.run(until=msec(100))
        assert len(rt_obj.exceptions) == 1
        assert len(rt_gnd.exceptions) == 1
        # The ground segment's exception is handled strictly after the
        # objects segment's (same deadline, fixed order).
        assert (
            rt_gnd.exceptions[0].detection_latency
            > rt_obj.exceptions[0].detection_latency
        )


class TestEndAtReader:
    def test_sink_segment_monitored_via_receive_end_event(self):
        """The paper's evaluation monitors segments ending at rviz2's
        receive events; end events here come from a reader hook."""
        from repro.core.events import EventKind
        from repro.dds import DdsDomain, Topic
        from repro.ros import Node
        from repro.sim import Compute, Ecu, Simulator

        sim = Simulator(seed=1)
        ecu = Ecu(sim, "ecu2", n_cores=2)
        domain = DdsDomain(sim, local_latency=usec(10))
        producer = Node(domain, ecu, "producer", priority=40)
        worker = Node(domain, ecu, "worker", priority=30)
        rviz = Node(domain, ecu, "rviz", priority=20)
        topic_in = Topic("points", size_fn=lambda m: 100)
        topic_out = Topic("objects", size_fn=lambda m: 100)
        pub_out = worker.create_publisher(topic_out)

        durations = {0: msec(5), 1: msec(50), 2: msec(5)}

        def worker_cb(sample):
            yield Compute(durations[sample.data.frame_index])
            pub_out.publish(sample.data)

        sub_in = worker.create_subscription(topic_in, worker_cb)
        seen = []
        rviz_sub = rviz.create_subscription(
            topic_out, lambda s: seen.append((s.data.frame_index, s.recovered))
        )

        segment = local_segment(
            "seg_rviz", "ecu2", "points", "objects",
            end_kind=EventKind.RECEIVE, d_mon=msec(10),
        )
        monitor = MonitorThread(ecu, priority=99)
        runtime = LocalSegmentRuntime(segment, activation_fn=activation_of)
        monitor.add_segment(runtime)
        runtime.attach_start(sub_in.reader)
        runtime.attach_end_reader(rviz_sub.reader)

        pub_in = producer.create_publisher(topic_in)
        for i in range(3):
            sim.schedule_at(msec(1) + i * msec(100), pub_in.publish, Message(frame_index=i))
        sim.run(until=msec(400))
        outcomes = {n: o for n, _l, o in runtime.latencies}
        assert outcomes == {0: Outcome.OK, 1: Outcome.MISS, 2: Outcome.OK}
        # The late frame-1 reception was discarded at the rviz reader.
        assert seen == [(0, False), (2, False)]


class TestErrorPropagationEvent:
    def test_post_error_propagation_reports_skipped(self):
        world = PipelineWorld()
        world.runtime.post_error_propagation(7)
        report = world.chain_runtime.finalize(through_activation=7)
        assert report.skipped_count == 1
        assert report.activations[7].segments["seg_worker"].outcome is Outcome.SKIPPED


class TestValidation:
    def test_remote_segment_rejected(self):
        seg = remote_segment("r", "t", "a", "b", d_mon=msec(5))
        with pytest.raises(ValueError):
            LocalSegmentRuntime(seg)

    def test_deadline_required(self):
        seg = local_segment("l", "ecu1", "a", "b")
        with pytest.raises(ValueError):
            LocalSegmentRuntime(seg)

    def test_recovery_without_endpoint_fails(self):
        world = PipelineWorld()
        runtime = LocalSegmentRuntime(
            local_segment("l2", "ecu1", "a", "b", d_mon=msec(5))
        )
        world.monitor.add_segment(runtime)
        with pytest.raises(RuntimeError):
            runtime._publish_recovery("data")
