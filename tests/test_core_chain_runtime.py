"""Unit tests for chain-level outcome supervision and the exception
dataclasses/handlers."""

import pytest

from repro.core import (
    ChainRuntime,
    EventChain,
    MKConstraint,
    Outcome,
    PropagateAlways,
    RecoverAlways,
    RecoverUpTo,
    TemporalException,
)
from repro.core.exceptions import (
    ExceptionContext,
    handle_local_exception,
    handle_remote_exception,
)
from repro.core.segments import local_segment, remote_segment
from repro.core.weakly_hard import (
    ConsecutiveMissConstraint,
    ConsecutiveMissWindow,
    max_consecutive_misses,
)
from repro.sim import msec


def make_chain(m=1, k=5):
    s0 = remote_segment("s0", "a", "ecu1", "ecu2", d_mon=msec(5))
    s1 = local_segment("s1", "ecu2", "a", "b", d_mon=msec(10))
    s1.start = s0.end
    return EventChain(
        name="c", segments=[s0, s1], period=msec(100), budget_e2e=msec(50),
        mk=MKConstraint(m, k),
    )


def exc(chain, seg_idx=0, activation=0):
    segment = chain.segments[seg_idx]
    return TemporalException(
        segment=segment, activation=activation,
        deadline=msec(10), raised_at=msec(10) + 50_000,
    )


class TestChainRuntime:
    def test_ok_activations_not_violated(self):
        runtime = ChainRuntime(make_chain())
        for n in range(5):
            runtime.report("s0", n, Outcome.OK, latency=msec(1))
            runtime.report("s1", n, Outcome.OK, latency=msec(2))
        report = runtime.finalize()
        assert report.total == 5
        assert report.miss_count == 0
        assert report.mk_satisfied
        assert report.miss_ratio == 0.0

    def test_any_miss_violates_activation(self):
        runtime = ChainRuntime(make_chain())
        runtime.report("s0", 0, Outcome.OK)
        runtime.report("s1", 0, Outcome.MISS, latency=msec(10))
        report = runtime.finalize()
        assert report.activations[0].violated
        assert report.misses == [True]

    def test_recovered_not_a_violation(self):
        runtime = ChainRuntime(make_chain())
        runtime.report("s0", 0, Outcome.RECOVERED, latency=msec(5))
        runtime.report("s1", 0, Outcome.OK)
        report = runtime.finalize()
        assert not report.activations[0].violated
        assert report.recovered_count == 1

    def test_skipped_counted_but_not_double_violated(self):
        runtime = ChainRuntime(make_chain())
        runtime.report("s0", 0, Outcome.MISS)
        runtime.report("s1", 0, Outcome.SKIPPED)
        report = runtime.finalize()
        assert report.activations[0].violated
        assert sum(report.misses) == 1
        assert report.skipped_count == 1

    def test_unreported_activations_count_as_ok(self):
        runtime = ChainRuntime(make_chain())
        runtime.report("s0", 3, Outcome.MISS)
        report = runtime.finalize()
        # Activations 0-2 have no records: not violated.
        assert report.misses == [False, False, False, True]

    def test_mk_verdict_over_window(self):
        runtime = ChainRuntime(make_chain(m=1, k=3))
        for n in range(6):
            outcome = Outcome.MISS if n in (2, 3) else Outcome.OK
            runtime.report("s0", n, outcome)
        report = runtime.finalize()
        assert not report.mk_satisfied
        assert report.max_window_misses == 2

    def test_online_window_fires_violation_callback(self):
        fired = []
        runtime = ChainRuntime(
            make_chain(m=0, k=2),
            on_violation=lambda n, misses: fired.append((n, misses)),
        )
        runtime.report("s0", 0, Outcome.OK)
        runtime.report("s0", 1, Outcome.MISS)
        runtime.advance_window(through_activation=1)
        assert fired == [(1, 1)]

    def test_advance_window_is_incremental(self):
        runtime = ChainRuntime(make_chain(m=0, k=2))
        runtime.report("s0", 0, Outcome.MISS)
        runtime.advance_window(0)
        runtime.advance_window(0)  # idempotent
        assert runtime.window.total == 1

    def test_segment_latency_extraction(self):
        runtime = ChainRuntime(make_chain())
        runtime.report("s1", 0, Outcome.OK, latency=msec(2))
        runtime.report("s1", 1, Outcome.MISS, latency=msec(10))
        runtime.report("s1", 2, Outcome.SKIPPED)  # no latency
        assert runtime.segment_latencies("s1") == [msec(2), msec(10)]
        assert runtime.segment_outcomes("s1") == [
            Outcome.OK, Outcome.MISS, Outcome.SKIPPED
        ]

    def test_exception_archive(self):
        chain = make_chain()
        runtime = ChainRuntime(chain)
        exception = exc(chain)
        runtime.report_exception(exception)
        assert runtime.exceptions == [exception]

    def test_finalize_through_activation(self):
        runtime = ChainRuntime(make_chain())
        runtime.report("s0", 0, Outcome.OK)
        runtime.report("s0", 9, Outcome.MISS)
        report = runtime.finalize(through_activation=4)
        assert report.total == 5
        assert sum(report.misses) == 0


class TestTemporalException:
    def test_detection_latency(self):
        chain = make_chain()
        exception = exc(chain)
        assert exception.detection_latency == 50_000


class TestHandlers:
    def ctx(self, misses=1, start_data=None, last_good=None):
        return ExceptionContext(
            exception=exc(make_chain()),
            misses=misses,
            start_data=start_data,
            last_good_data=last_good,
        )

    def test_propagate_always(self):
        assert PropagateAlways().user_exception(self.ctx()) is None

    def test_recover_always(self):
        handler = RecoverAlways(lambda ctx: f"sub-{ctx.misses}")
        assert handler.user_exception(self.ctx(misses=3)) == "sub-3"

    def test_recover_up_to_threshold(self):
        handler = RecoverUpTo(2, lambda ctx: "data")
        assert handler.user_exception(self.ctx(misses=2)) == "data"
        assert handler.user_exception(self.ctx(misses=3)) is None

    def test_handle_local_exception_recovery_publishes(self):
        published = []
        recovered = handle_local_exception(
            RecoverAlways(lambda ctx: "fixed"), self.ctx(), published.append
        )
        assert recovered
        assert published == ["fixed"]

    def test_handle_local_exception_propagation_publishes_nothing(self):
        published = []
        recovered = handle_local_exception(
            PropagateAlways(), self.ctx(), published.append
        )
        assert not recovered
        assert published == []

    def test_handle_remote_exception_recovery_issues_receive(self):
        issued, propagated = [], []
        recovered = handle_remote_exception(
            RecoverAlways(lambda ctx: "fixed"),
            self.ctx(),
            issue_receive=issued.append,
            propagate_exception=lambda: propagated.append(True),
        )
        assert recovered
        assert issued == ["fixed"]
        assert propagated == []

    def test_handle_remote_exception_propagation(self):
        issued, propagated = [], []
        recovered = handle_remote_exception(
            PropagateAlways(),
            self.ctx(),
            issue_receive=issued.append,
            propagate_exception=lambda: propagated.append(True),
        )
        assert not recovered
        assert issued == []
        assert propagated == [True]


class TestConsecutiveMissConstraint:
    def test_max_consecutive(self):
        assert max_consecutive_misses([]) == 0
        assert max_consecutive_misses([False, False]) == 0
        assert max_consecutive_misses([True, True, False, True]) == 2

    def test_constraint_satisfaction(self):
        constraint = ConsecutiveMissConstraint(2)
        assert constraint.satisfied_by([True, True, False, True, True])
        assert not constraint.satisfied_by([True, True, True])

    def test_online_window(self):
        window = ConsecutiveMissWindow(ConsecutiveMissConstraint(1))
        assert window.record(True) is False
        assert window.record(True) is True
        assert window.record(False) is False
        assert window.record(True) is False
        assert window.longest_run == 2
        assert window.violated

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            ConsecutiveMissConstraint(-1)

    def test_str(self):
        assert str(ConsecutiveMissConstraint(3)) == "<=3 consecutive"
