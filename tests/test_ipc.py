"""Tests for the real shared-memory monitor (ring buffer, semaphore,
monitor thread) -- including property-based ring-buffer invariants and a
cross-process smoke test."""

import multiprocessing
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipc import (
    EventRecord,
    IpcMonitor,
    IpcSegment,
    RECORD_SIZE,
    SharedMemoryRegion,
    SpscRingBuffer,
    TimedSemaphore,
)
from repro.ipc.ring_buffer import KIND_END, KIND_START


def make_buffer(capacity=16):
    return SpscRingBuffer(
        bytearray(SpscRingBuffer.required_size(capacity)), capacity, initialize=True
    )


class TestRingBuffer:
    def test_push_pop_roundtrip(self):
        buf = make_buffer()
        assert buf.push(KIND_START, 7, 123456789)
        record = buf.pop()
        assert record == EventRecord(KIND_START, 7, 123456789)
        assert buf.pop() is None

    def test_fifo_order(self):
        buf = make_buffer()
        for i in range(10):
            buf.push(KIND_END, i, i * 100)
        assert [r.activation for r in buf.drain()] == list(range(10))

    def test_full_rejects(self):
        buf = make_buffer(capacity=2)
        assert buf.push(KIND_START, 0, 0)
        assert buf.push(KIND_START, 1, 0)
        assert not buf.push(KIND_START, 2, 0)
        buf.pop()
        assert buf.push(KIND_START, 2, 0)

    def test_wraparound(self):
        buf = make_buffer(capacity=4)
        for round_start in range(0, 40, 4):
            for i in range(4):
                assert buf.push(KIND_START, round_start + i, 0)
            popped = [r.activation for r in buf.drain()]
            assert popped == list(range(round_start, round_start + 4))

    def test_len(self):
        buf = make_buffer()
        assert len(buf) == 0
        buf.push(KIND_START, 0, 0)
        buf.push(KIND_START, 1, 0)
        assert len(buf) == 2
        buf.pop()
        assert len(buf) == 1

    def test_too_small_buffer_rejected(self):
        with pytest.raises(ValueError):
            SpscRingBuffer(bytearray(10), 16)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SpscRingBuffer(bytearray(1000), 0)

    def test_required_size(self):
        assert SpscRingBuffer.required_size(4) == 16 + 4 * RECORD_SIZE

    @given(st.lists(st.tuples(
        st.sampled_from([KIND_START, KIND_END]),
        st.integers(min_value=0, max_value=2**60),
        st.integers(min_value=0, max_value=2**60),
    ), max_size=64))
    @settings(max_examples=100)
    def test_fifo_property(self, records):
        buf = make_buffer(capacity=64)
        accepted = []
        for kind, activation, ts in records:
            if buf.push(kind, activation, ts):
                accepted.append(EventRecord(kind, activation, ts))
        assert buf.drain() == accepted

    @given(st.lists(st.booleans(), max_size=200))
    @settings(max_examples=60)
    def test_interleaved_push_pop_property(self, ops):
        """Random interleaving of pushes and pops preserves FIFO."""
        buf = make_buffer(capacity=8)
        pushed = []
        popped = []
        counter = 0
        for is_push in ops:
            if is_push:
                if buf.push(KIND_START, counter, counter):
                    pushed.append(counter)
                counter += 1
            else:
                record = buf.pop()
                if record is not None:
                    popped.append(record.activation)
        popped.extend(r.activation for r in buf.drain())
        assert popped == pushed


class TestTimedSemaphore:
    def test_post_then_wait(self):
        sem = TimedSemaphore()
        sem.post()
        assert sem.wait(timeout_s=0.1)

    def test_timeout(self):
        sem = TimedSemaphore()
        t0 = time.monotonic()
        assert not sem.wait(timeout_s=0.05)
        assert time.monotonic() - t0 >= 0.04

    def test_initial_count(self):
        sem = TimedSemaphore(initial=2)
        assert sem.try_wait()
        assert sem.try_wait()
        assert not sem.try_wait()

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            TimedSemaphore(initial=-1)


class TestSharedMemoryRegion:
    def test_create_write_attach_read(self):
        with SharedMemoryRegion(None, size=256, create=True) as region:
            region.buf[0:4] = b"abcd"
            attached = SharedMemoryRegion(region.name, create=False)
            assert bytes(attached.buf[0:4]) == b"abcd"
            attached.close()

    def test_create_requires_size(self):
        with pytest.raises(ValueError):
            SharedMemoryRegion(None, create=True)

    def test_attach_requires_name(self):
        with pytest.raises(ValueError):
            SharedMemoryRegion(None, create=False)

    def test_ring_buffer_over_shared_memory(self):
        capacity = 8
        size = SpscRingBuffer.required_size(capacity)
        with SharedMemoryRegion(None, size=size, create=True) as region:
            producer_view = SpscRingBuffer(region.buf, capacity, initialize=True)
            consumer_view = SpscRingBuffer(region.buf, capacity)
            producer_view.push(KIND_START, 5, 999)
            record = consumer_view.pop()
            assert record.activation == 5
            # Release memoryviews before the region is closed.
            del producer_view, consumer_view


def _segment(name="seg", deadline_ms=50, capacity=256):
    return IpcSegment(
        name,
        int(deadline_ms * 1e6),
        make_buffer(capacity),
        make_buffer(capacity),
    )


class TestIpcMonitor:
    def test_completion_within_deadline_no_exception(self):
        segment = _segment(deadline_ms=100)
        exceptions = []
        monitor = IpcMonitor([segment], on_exception=lambda *a: exceptions.append(a))
        with monitor:
            for i in range(20):
                segment.post_start(i, monitor.semaphore)
                segment.post_end(i)
            time.sleep(0.1)
        assert exceptions == []
        assert monitor.stats.completions == 20

    def test_missing_end_event_raises_exception(self):
        segment = _segment(deadline_ms=20)
        exceptions = []
        monitor = IpcMonitor([segment], on_exception=lambda *a: exceptions.append(a))
        with monitor:
            segment.post_start(0, monitor.semaphore)
            time.sleep(0.15)
        assert len(exceptions) == 1
        name, activation, late_ns = exceptions[0]
        assert name == "seg"
        assert activation == 0
        # Raised after the deadline, within a loose scheduling bound.
        assert 0 <= late_ns < 100_000_000

    def test_mixed_outcomes(self):
        segment = _segment(deadline_ms=30)
        exceptions = []
        monitor = IpcMonitor([segment], on_exception=lambda *a: exceptions.append(a))
        with monitor:
            segment.post_start(0, monitor.semaphore)
            segment.post_end(0)
            segment.post_start(1, monitor.semaphore)  # never completed
            segment.post_start(2, monitor.semaphore)
            segment.post_end(2)
            time.sleep(0.2)
        assert [a for _n, a, _l in exceptions] == [1]
        assert monitor.stats.completions == 2

    def test_two_segments_fixed_order(self):
        seg_a = _segment("a", deadline_ms=20)
        seg_b = _segment("b", deadline_ms=20)
        raised = []
        monitor = IpcMonitor(
            [seg_a, seg_b], on_exception=lambda n, a, l: raised.append(n)
        )
        with monitor:
            seg_a.post_start(0, monitor.semaphore)
            seg_b.post_start(0, monitor.semaphore)
            time.sleep(0.15)
        assert sorted(raised) == ["a", "b"]

    def test_double_start_rejected(self):
        monitor = IpcMonitor([_segment()])
        monitor.start()
        try:
            with pytest.raises(RuntimeError):
                monitor.start()
        finally:
            monitor.stop()

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            IpcSegment("x", 0, make_buffer(), make_buffer())


def _producer_proc(shm_name, capacity, n_events):
    region = SharedMemoryRegion(shm_name, create=False)
    buf = SpscRingBuffer(region.buf, capacity)
    for i in range(n_events):
        buf.push(KIND_START, i, time.monotonic_ns())
        time.sleep(0.001)
    del buf
    region.close()


class TestCrossProcess:
    def test_producer_process_feeds_ring_buffer(self):
        capacity = 512
        size = SpscRingBuffer.required_size(capacity)
        with SharedMemoryRegion(None, size=size, create=True) as region:
            SpscRingBuffer(region.buf, capacity, initialize=True)
            proc = multiprocessing.Process(
                target=_producer_proc, args=(region.name, capacity, 50)
            )
            proc.start()
            proc.join(timeout=30)
            assert proc.exitcode == 0
            consumer = SpscRingBuffer(region.buf, capacity)
            records = consumer.drain()
            assert [r.activation for r in records] == list(range(50))
            del consumer
