"""Backpressure and the no-silent-drop accounting law.

Every record offered to the pipeline must be applied or show up in a
drop counter: offered == accepted + dropped and
accepted == drained + depth, at every point in any offer/drain
interleaving (proven by hypothesis below), and end to end through the
service: offered == applied + dropped + pending.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.telemetry.pipeline import IngestQueue
from repro.telemetry.records import RecordKind, TelemetryRecord
from repro.telemetry.service import ServiceConfig, TelemetryService


def _record(seq, source="v0"):
    return TelemetryRecord(
        kind=RecordKind.HEARTBEAT, source=source, timestamp_ns=seq, seq=seq
    )


class TestIngestQueue:
    def test_overflow_drops_newest_and_counts(self):
        queue = IngestQueue(capacity=3)
        results = [queue.offer(_record(i)) for i in range(5)]
        assert results == [True, True, True, False, False]
        assert queue.offered == 5
        assert queue.accepted == 3
        assert queue.dropped == 2
        assert queue.dropped_by_reason == {"queue_full": 2}
        assert queue.accounting_ok()
        # FIFO order preserved; the dropped records are the newest ones.
        assert [r.seq for r in queue.drain()] == [0, 1, 2]
        assert queue.accounting_ok()

    def test_partial_drain(self):
        queue = IngestQueue(capacity=10)
        for i in range(6):
            queue.offer(_record(i))
        batch = queue.drain(4)
        assert [r.seq for r in batch] == [0, 1, 2, 3]
        assert queue.depth == 2
        assert queue.drained == 4
        assert queue.accounting_ok()

    def test_high_watermark_and_saturation(self):
        queue = IngestQueue(capacity=4)
        for i in range(3):
            queue.offer(_record(i))
        assert queue.high_watermark == 3
        assert queue.saturation == 0.75
        queue.drain()
        assert queue.saturation == 0.0
        assert queue.high_watermark == 3  # sticky

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            IngestQueue(capacity=0)

    @given(
        ops=st.lists(
            st.one_of(
                st.just(("offer",)),
                st.tuples(st.just("drain"), st.integers(0, 5)),
            ),
            max_size=60,
        ),
        capacity=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_accounting_invariant_under_any_interleaving(self, ops, capacity):
        queue = IngestQueue(capacity=capacity)
        seq = 0
        for op in ops:
            if op[0] == "offer":
                queue.offer(_record(seq))
                seq += 1
            else:
                queue.drain(op[1])
            assert queue.accounting_ok()
            assert queue.depth <= capacity


class TestServiceAccounting:
    def test_offered_equals_applied_plus_dropped_plus_pending(self):
        service = TelemetryService(
            ServiceConfig(queue_capacity=8, auto_pump_batch=None)
        )
        for i in range(20):
            service.ingest(_record(i))
        # 8 pending, 12 dropped, 0 applied.
        assert service.pending == 8
        assert service.dropped == 12
        assert service.applied == 0
        assert service.accounting_ok()
        service.pump()
        assert service.applied == 8
        assert service.pending == 0
        assert service.accounting_ok()
        stats = service.stats()
        assert stats["offered"] == stats["applied"] + stats["dropped"] + stats["pending"]

    def test_auto_pump_prevents_overflow(self):
        service = TelemetryService(
            ServiceConfig(queue_capacity=64, auto_pump_batch=16)
        )
        accepted = service.ingest_many(_record(i) for i in range(1000))
        assert accepted == 1000
        assert service.dropped == 0
        service.drain()
        assert service.applied == 1000
        assert service.accounting_ok()

    def test_snapshot_refuses_while_pending(self):
        service = TelemetryService(ServiceConfig(auto_pump_batch=None))
        service.ingest(_record(0))
        with pytest.raises(RuntimeError):
            service.snapshot()
        service.pump()
        service.snapshot()  # fine once drained

    def test_accounting_survives_snapshot_restore(self):
        # store.applied is a lifetime counter that survives restore; the
        # service's law must balance against *this* queue, not a
        # previous life.
        donor = TelemetryService()
        donor.ingest_many(_record(i) for i in range(10))
        donor.drain()
        fresh = TelemetryService()
        fresh.restore(donor.snapshot())
        assert fresh.store.applied == 10
        assert fresh.applied == 0
        assert fresh.accounting_ok()
        fresh.ingest_many(_record(i, source="v1") for i in range(5))
        fresh.drain()
        assert fresh.applied == 5
        assert fresh.accounting_ok()
