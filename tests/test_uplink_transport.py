"""Uplink envelopes + the adversarial channel: framing integrity,
deterministic fault injection, and channel accounting."""

from repro.telemetry.records import RecordKind, TelemetryRecord
from repro.telemetry.uplink.transport import (
    ACK_SCHEMA,
    BATCH_SCHEMA,
    AdversarialChannel,
    ChannelFaultPlan,
    decode_batch,
    decode_envelope,
    encode_ack,
    encode_batch,
    encode_envelope,
)


def _rec(seq):
    return TelemetryRecord(
        kind=RecordKind.SEGMENT, source="v0", chain="c", segment="c/s0",
        activation=seq, latency_ns=10, verdict="ok",
        timestamp_ns=seq * 100, seq=seq,
    )


class TestEnvelopes:
    def test_round_trip(self):
        doc = {"schema": "x/1", "k": [1, 2, 3]}
        assert decode_envelope(encode_envelope(doc)) == doc

    def test_any_damage_is_detected(self):
        payload = encode_envelope({"schema": "x/1", "value": 7})
        for broken in (
            payload[:-1],                    # truncated
            payload[:12] + "#" + payload[13:],  # flipped body byte
            "0000000" + payload[7:],         # wrong CRC
            "not an envelope",
            "",
        ):
            assert decode_envelope(broken) is None

    def test_batch_round_trip(self):
        records = [_rec(i) for i in range(5)]
        doc = decode_envelope(encode_batch("v0", 3, records))
        assert doc["schema"] == BATCH_SCHEMA
        assert doc["source"] == "v0"
        assert doc["batch_id"] == 3
        assert decode_batch(doc) == records

    def test_ack_round_trip(self):
        doc = decode_envelope(encode_ack("v0", 3, 41))
        assert doc == {
            "schema": ACK_SCHEMA, "source": "v0",
            "batch_id": 3, "ack_through": 41,
        }

    def test_malformed_batch_records_rejected(self):
        doc = decode_envelope(encode_batch("v0", 0, [_rec(0)]))
        doc["records"][0] = ["nonsense"]
        assert decode_batch(doc) is None


class TestChannel:
    def _drain(self, channel, until=200):
        delivered = []
        channel.deliver = lambda frame, now: delivered.append(frame.payload)
        for now in range(until):
            channel.step(now)
        return delivered

    def test_reliable_channel_delivers_in_order(self):
        got = []
        channel = AdversarialChannel(
            "up", lambda frame, now: got.append(frame.payload), seed=1
        )
        for i in range(10):
            channel.send(f"m{i}", "v0", "fleet", now=i)
        for now in range(20):
            channel.step(now)
        assert got == [f"m{i}" for i in range(10)]
        assert channel.stats.delivered == 10

    def test_same_seed_same_faults(self):
        plan = ChannelFaultPlan(drop_prob=0.3, dup_prob=0.2,
                                reorder_prob=0.2, corrupt_prob=0.1)

        def run():
            got = []
            channel = AdversarialChannel(
                "up", lambda frame, now: got.append(frame.payload),
                plan=plan, seed=42,
            )
            for i in range(60):
                channel.send(encode_envelope({"i": i}), "v0", "fleet", now=i)
            for now in range(200):
                channel.step(now)
            return got, channel.stats.to_json()

        first, first_stats = run()
        second, second_stats = run()
        assert first == second
        assert first_stats == second_stats

    def test_drop_and_duplicate_accounting(self):
        plan = ChannelFaultPlan(drop_prob=0.4, dup_prob=0.3)
        got = []
        channel = AdversarialChannel(
            "up", lambda frame, now: got.append(frame.payload),
            plan=plan, seed=7,
        )
        offered = 100
        for i in range(offered):
            channel.send(f"m{i}", "v0", "fleet", now=i)
        for now in range(300):
            channel.step(now)
        stats = channel.stats
        assert stats.dropped > 0 and stats.duplicated > 0
        assert stats.offered == offered
        # Every offered frame is delivered, dropped, or duplicated-extra.
        assert stats.delivered == offered - stats.dropped + stats.duplicated
        assert channel.pending() == 0

    def test_partition_window_blocks_everything(self):
        plan = ChannelFaultPlan(partitions=((5, 10),))
        got = []
        channel = AdversarialChannel(
            "up", lambda frame, now: got.append(frame.payload),
            plan=plan, seed=0,
        )
        for now in range(15):
            channel.send(f"m{now}", "v0", "fleet", now=now)
            channel.step(now)
        channel.step(20)
        lost = {f"m{i}" for i in range(5, 10)}
        assert set(got) == {f"m{i}" for i in range(15)} - lost
        assert channel.stats.partition_dropped == 5
        # The partition window is recorded as an injection (auditable).
        assert [inj.kind for inj in channel.injections] == ["partition"]

    def test_corruption_breaks_the_envelope_not_the_channel(self):
        plan = ChannelFaultPlan(corrupt_prob=0.999)
        got = []
        channel = AdversarialChannel(
            "up", lambda frame, now: got.append(frame.payload),
            plan=plan, seed=3,
        )
        payload = encode_envelope({"schema": "x/1", "value": 1})
        channel.send(payload, "v0", "fleet", now=0)
        for now in range(10):
            channel.step(now)
        assert len(got) == 1
        assert decode_envelope(got[0]) is None

    def test_reordering_changes_delivery_order(self):
        plan = ChannelFaultPlan(reorder_prob=0.5, reorder_extra=10)
        got = []
        channel = AdversarialChannel(
            "up", lambda frame, now: got.append(frame.payload),
            plan=plan, seed=11,
        )
        for i in range(30):
            channel.send(f"m{i:02d}", "v0", "fleet", now=i)
        for now in range(60):
            channel.step(now)
        assert sorted(got) == [f"m{i:02d}" for i in range(30)]
        assert got != sorted(got)
        assert channel.stats.reordered > 0
