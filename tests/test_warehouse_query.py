"""Cohort selectors, sketch-merge aggregation, and attribution diffs.

Includes the golden byte-stability contract: the attribution diff of
two pinned runs must serialize to the exact committed bytes in
``tests/golden/warehouse_diff.json`` regardless of ingest order.
Regenerate (after an intentional schema change) with::

    PYTHONPATH=src python tests/test_warehouse_query.py --regen
"""

import json
from pathlib import Path

import pytest

from repro.perception.stack import PerceptionStack, StackConfig
from repro.telemetry.histogram import StreamingHistogram
from repro.warehouse import (
    DIFF_SCHEMA,
    RunKey,
    RunManifest,
    RunSelector,
    SpanWarehouse,
    aggregate,
    attribution_diff,
    dump_diff,
    regressed_categories,
    render_cohort,
    render_diff,
    select_runs,
)

FRAMES = 8
GOLDEN = Path(__file__).resolve().parent / "golden" / "warehouse_diff.json"


def build_payloads():
    payloads = []
    for run_id, commit, scenario, config in (
        ("golden-base", "cA", "benign", StackConfig(seed=1, spans=True)),
        ("golden-head", "cB", "lossy_link",
         StackConfig(seed=7, link_loss=0.08, spans=True)),
    ):
        stack = PerceptionStack(config)
        stack.run(n_frames=FRAMES)
        manifest = RunManifest.for_run(
            RunKey(run_id=run_id, commit=commit, suite="trace",
                   scenario=scenario, vehicle="veh0"),
            stack.chains,
            FRAMES,
        )
        payloads.append((manifest, list(stack.spans.spans)))
    return payloads


@pytest.fixture(scope="module")
def payloads():
    return build_payloads()


@pytest.fixture(scope="module")
def store(payloads):
    wh = SpanWarehouse(":memory:")
    for manifest, spans in payloads:
        wh.ingest_run(manifest, spans)
    yield wh
    wh.close()


class TestRunSelector:
    def test_parse_round_trip(self):
        sel = RunSelector.parse("commit=cA,scenario=benign")
        assert sel.commit == "cA"
        assert sel.scenario == "benign"
        assert sel.run_id is None
        assert sel.describe() == "commit=cA,scenario=benign"

    def test_empty_matches_everything(self):
        sel = RunSelector.parse("")
        assert sel.describe() == "all-runs"
        assert sel.matches({"run_id": "x", "commit": "y", "suite": "z",
                            "scenario": "", "vehicle": ""})

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown selector key"):
            RunSelector.parse("branch=main")

    def test_bare_term_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            RunSelector.parse("cA")

    def test_select_runs(self, store):
        assert [r["run_id"] for r in select_runs(store, RunSelector())] == \
            ["golden-base", "golden-head"]
        assert [r["run_id"]
                for r in select_runs(store, RunSelector(commit="cB"))] == \
            ["golden-head"]
        assert select_runs(store, RunSelector(commit="nope")) == []


class TestAggregate:
    def test_two_run_cohort_merges_sketches(self, store):
        whole = aggregate(store, RunSelector())
        base = aggregate(store, RunSelector(commit="cA"))
        head = aggregate(store, RunSelector(commit="cB"))
        assert whole.run_ids == ["golden-base", "golden-head"]
        assert whole.n_spans == base.n_spans + head.n_spans
        for chain, cohort in whole.chains.items():
            b = base.chains[chain]
            h = head.chains[chain]
            assert cohort.n_instances == b.n_instances + h.n_instances
            # The cohort sketch must equal the merge of the per-run
            # sketches (exact: bucket counts add).
            assert cohort.e2e.snapshot() == \
                StreamingHistogram.merge_many([b.e2e, h.e2e]).snapshot()
            assert cohort.telescoping_ok()

    def test_empty_cohort(self, store):
        agg = aggregate(store, RunSelector(commit="nope"))
        assert agg.run_ids == []
        assert agg.chains == {}

    def test_render_cohort_smoke(self, store):
        out = render_cohort(aggregate(store, RunSelector()))
        assert "2 runs" in out
        assert "telescoping OK" in out
        assert "d_mon burn" in out


class TestAttributionDiff:
    def test_document_shape(self, store):
        diff = attribution_diff(
            store, RunSelector(commit="cA"), RunSelector(commit="cB")
        )
        assert diff["schema"] == DIFF_SCHEMA
        assert diff["base"]["runs"] == ["golden-base"]
        assert diff["head"]["runs"] == ["golden-head"]
        assert set(diff["chains"]) == {
            "front_ground", "front_objects", "rear_ground", "rear_objects"
        }
        for entry in diff["chains"].values():
            assert entry["telescoping_ok"] == {"base": True, "head": True}
            e2e = entry["e2e"]
            for label in ("p50", "p95"):
                b, h = e2e[f"base_{label}"], e2e[f"head_{label}"]
                assert e2e[f"delta_{label}"] == h - b
                assert e2e[f"ratio_{label}"] == pytest.approx(h / b)
            assert entry["categories"]
            for seg in entry["segments"].values():
                if seg["d_mon"] and seg["head_p95"] is not None:
                    assert seg["head_headroom_ns"] == \
                        seg["d_mon"] - seg["head_p95"]
                    assert seg["head_burn"] == \
                        pytest.approx(seg["head_p95"] / seg["d_mon"])

    def test_diff_against_self_is_flat(self, store):
        diff = attribution_diff(
            store, RunSelector(commit="cA"), RunSelector(commit="cA")
        )
        for entry in diff["chains"].values():
            assert entry["e2e"]["delta_p95"] == 0.0
            assert entry["e2e"]["burn_shift"] == 0.0
            for cat in entry["categories"].values():
                assert cat["delta_p50"] == 0.0
                assert cat["delta_p95"] == 0.0
        assert regressed_categories(diff) == []

    def test_render_diff_smoke(self, store):
        diff = attribution_diff(
            store, RunSelector(commit="cA"), RunSelector(commit="cB")
        )
        out = render_diff(diff)
        assert "attribution diff" in out
        assert "burn shift" in out
        assert "budget burn shifts (p95 vs d_mon)" in out

    def test_regressed_categories_ranked(self):
        diff = {
            "chains": {
                "c1": {"categories": {
                    "queue": {"ratio_p95": 2.0},
                    "compute": {"ratio_p95": 1.1},
                    "network": {"ratio_p95": None},
                }},
                "c2": {"categories": {"queue": {"ratio_p95": 1.5}}},
            }
        }
        assert regressed_categories(diff, threshold=0.30) == [
            ("c1", "queue", 2.0), ("c2", "queue", 1.5)
        ]


class TestGoldenDiff:
    """The pinned two-run diff must stay byte-identical."""

    def diff_bytes(self, wh, tmp_path, name):
        diff = attribution_diff(
            wh, RunSelector(commit="cA"), RunSelector(commit="cB")
        )
        return dump_diff(diff, tmp_path / name).read_bytes()

    def test_matches_committed_golden(self, store, tmp_path):
        assert GOLDEN.is_file(), (
            f"golden missing -- regenerate: {__doc__.splitlines()[-2]}"
        )
        got = self.diff_bytes(store, tmp_path, "diff.json")
        assert got == GOLDEN.read_bytes(), (
            "attribution diff drifted from the committed golden; if the "
            "change is intentional, regenerate with "
            "`PYTHONPATH=src python tests/test_warehouse_query.py --regen`"
        )

    def test_ingest_order_does_not_change_the_bytes(
        self, payloads, tmp_path
    ):
        with SpanWarehouse(":memory:") as reversed_store:
            for manifest, spans in reversed(payloads):
                reversed_store.ingest_run(manifest, spans)
            got = self.diff_bytes(reversed_store, tmp_path, "rev.json")
        assert got == GOLDEN.read_bytes()

    def test_golden_is_canonical_json(self):
        data = json.loads(GOLDEN.read_text(encoding="utf-8"))
        canonical = json.dumps(data, indent=2, sort_keys=True) + "\n"
        assert GOLDEN.read_text(encoding="utf-8") == canonical


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        wh = SpanWarehouse(":memory:")
        for manifest, spans in build_payloads():
            wh.ingest_run(manifest, spans)
        diff = attribution_diff(
            wh, RunSelector(commit="cA"), RunSelector(commit="cB")
        )
        path = dump_diff(diff, GOLDEN)
        wh.close()
        print(f"wrote {path}")
    else:
        sys.exit(pytest.main([__file__, "-q"]))
