"""Vehicle WAL spooler + fleet record log: rotation, ack, eviction,
crash recovery with torn tails, and the replay round-trip property."""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.records import RecordKind, SchemaVersionError, TelemetryRecord
from repro.telemetry.uplink.wal import (
    RecordLog,
    WalConfig,
    WalCorruptionError,
    WalSpooler,
    decode_entry,
    encode_entry,
)


def _rec(source, seq, latency=10):
    return TelemetryRecord(
        kind=RecordKind.SEGMENT, source=source, chain="c", segment="c/s0",
        activation=seq, latency_ns=latency, verdict="ok",
        timestamp_ns=seq * 100, seq=seq,
    )


def _config(tmp_path, **kwargs):
    kwargs.setdefault("fsync", "never")
    kwargs.setdefault("segment_max_records", 4)
    return WalConfig(directory=Path(tmp_path) / "wal", **kwargs)


def _tear_tail(directory):
    """Chop the newest WAL line in half (simulated mid-write crash)."""
    path = sorted(Path(directory).glob("wal-*.log"))[-1]
    raw = path.read_bytes()
    lines = raw.split(b"\n")
    assert lines[-1] == b""
    last = lines[-2]
    kept = raw[: len(raw) - len(last) - 1]
    path.write_bytes(kept + last[: len(last) // 2])


class TestFraming:
    def test_entry_round_trip(self):
        body = _rec("v0", 3).encode_line()
        assert decode_entry(encode_entry(body)) is not None

    def test_damaged_entry_rejected(self):
        line = encode_entry(_rec("v0", 3).encode_line())
        assert decode_entry(line[:-4]) is None
        assert decode_entry("zz" + line[2:]) is None
        assert decode_entry("short") is None


class TestSpooler:
    def test_append_rotates_segments(self, tmp_path):
        spooler = WalSpooler.open_fresh(_config(tmp_path), "v0")
        for i in range(9):
            spooler.append(_rec("v0", i))
        # 4-record segments: two closed + the active third.
        assert len(spooler.segments) == 3
        assert spooler.pending == 9
        assert len(list((Path(tmp_path) / "wal").glob("wal-*.log"))) == 3

    def test_seq_must_increase(self, tmp_path):
        spooler = WalSpooler.open_fresh(_config(tmp_path), "v0")
        spooler.append(_rec("v0", 5))
        with pytest.raises(ValueError):
            spooler.append(_rec("v0", 5))
        with pytest.raises(ValueError):
            spooler.append(_rec("v0", 2))

    def test_pending_records_order_and_limit(self, tmp_path):
        spooler = WalSpooler.open_fresh(_config(tmp_path), "v0")
        for i in range(7):
            spooler.append(_rec("v0", i))
        assert [r.seq for r in spooler.pending_records()] == list(range(7))
        assert [r.seq for r in spooler.pending_records(limit=3)] == [0, 1, 2]

    def test_ack_releases_and_deletes_covered_segments(self, tmp_path):
        spooler = WalSpooler.open_fresh(_config(tmp_path), "v0")
        for i in range(10):
            spooler.append(_rec("v0", i))
        released = spooler.ack_through(5)
        assert [r.seq for r in released] == [0, 1, 2, 3, 4, 5]
        assert spooler.pending == 4
        # The first closed segment (seqs 0-3) is fully covered: gone.
        assert not (Path(tmp_path) / "wal" / "wal-00000000.log").exists()
        # Cumulative: a stale ack is a no-op.
        assert spooler.ack_through(3) == []
        assert spooler.acked == 6

    def test_eviction_is_counted_and_hooked(self, tmp_path):
        config = _config(tmp_path, max_bytes=700, segment_max_records=2)
        spooler = WalSpooler.open_fresh(config, "v0")
        evicted = []
        spooler.on_evict = evicted.extend
        for i in range(10):
            spooler.append(_rec("v0", i))
        assert spooler.evicted > 0
        assert spooler.evicted == len(evicted)
        # Oldest-first: surviving records are the newest.
        survivors = [r.seq for r in spooler.pending_records()]
        assert survivors == sorted(survivors)
        assert set(r.seq for r in evicted) == set(range(10)) - set(survivors)
        assert spooler.total_bytes <= 700 or len(spooler.segments) == 1

    def test_active_segment_is_eviction_exempt(self, tmp_path):
        config = _config(tmp_path, max_bytes=1, segment_max_records=100)
        spooler = WalSpooler.open_fresh(config, "v0")
        spooler.append(_rec("v0", 0))
        assert spooler.pending == 1  # over budget, but never evicted


class TestSpoolerRecovery:
    def test_clean_recovery_resumes(self, tmp_path):
        config = _config(tmp_path)
        spooler = WalSpooler.open_fresh(config, "v0")
        for i in range(6):
            spooler.append(_rec("v0", i))
        spooler.ack_through(1)
        spooler.close()

        recovered, report = WalSpooler.recover(_config(tmp_path), "v0")
        assert report.truncated_lines == 0
        assert report.ack_through == 1
        assert report.last_seq == 5
        # Acked records are not resurrected.
        assert [r.seq for r in recovered.pending_records()] == [2, 3, 4, 5]
        recovered.append(_rec("v0", 6))
        assert recovered.pending == 5

    def test_torn_tail_truncated_and_counted(self, tmp_path):
        config = _config(tmp_path)
        spooler = WalSpooler.open_fresh(config, "v0")
        for i in range(6):
            spooler.append(_rec("v0", i))
        spooler.close()
        _tear_tail(config.directory)

        recovered, report = WalSpooler.recover(_config(tmp_path), "v0")
        assert report.truncated_lines == 1
        assert [r.seq for r in recovered.pending_records()] == [0, 1, 2, 3, 4]
        assert recovered.last_seq == 4
        # The repair is physical: a second recovery is clean.
        recovered.close()
        again, report2 = WalSpooler.recover(_config(tmp_path), "v0")
        assert report2.truncated_lines == 0
        assert again.pending == 5

    def test_mid_file_corruption_raises(self, tmp_path):
        config = _config(tmp_path, segment_max_records=100)
        spooler = WalSpooler.open_fresh(config, "v0")
        for i in range(5):
            spooler.append(_rec("v0", i))
        spooler.close()
        path = sorted(config.directory.glob("wal-*.log"))[0]
        lines = path.read_text().split("\n")
        lines[2] = lines[2][:-5] + "XXXXX"  # not the tail: line 3 of 6
        path.write_text("\n".join(lines))
        with pytest.raises(WalCorruptionError):
            WalSpooler.recover(_config(tmp_path, segment_max_records=100), "v0")

    def test_foreign_schema_raises(self, tmp_path):
        config = _config(tmp_path)
        spooler = WalSpooler.open_fresh(config, "v0")
        spooler.append(_rec("v0", 0))
        spooler.close()
        path = sorted(config.directory.glob("wal-*.log"))[0]
        lines = path.read_text().split("\n")
        lines[0] = lines[0].replace("repro-uplink-wal/1", "repro-uplink-wal/9")
        path.write_text("\n".join(lines))
        with pytest.raises(SchemaVersionError):
            WalSpooler.recover(_config(tmp_path), "v0")

    def test_refuses_fresh_open_over_existing_spool(self, tmp_path):
        config = _config(tmp_path)
        WalSpooler.open_fresh(config, "v0").close()
        with pytest.raises(FileExistsError):
            WalSpooler.open_fresh(_config(tmp_path), "v0")


class TestRecordLog:
    def test_replay_records_and_markers(self, tmp_path):
        path = Path(tmp_path) / "fleet.log"
        log = RecordLog(path, fsync="never")
        log.append_record(_rec("v0", 0))
        log.append_marker("v0", 0)
        log.append_record(_rec("v1", 7))
        log.sync()
        log.close()

        replayed = RecordLog.open_existing(path, fsync="never")
        entries = replayed.replayed
        assert len(entries) == 3
        assert entries[0][0].seq == 0 and entries[0][1] is None
        assert entries[1] == (None, ("v0", 0))
        assert entries[2][0].source == "v1"

    def test_reset_truncates_after_checkpoint(self, tmp_path):
        path = Path(tmp_path) / "fleet.log"
        log = RecordLog(path, fsync="never")
        log.append_record(_rec("v0", 0))
        log.sync()
        log.reset()
        log.close()
        assert RecordLog.open_existing(path, fsync="never").replayed == []

    def test_torn_tail_tolerated(self, tmp_path):
        path = Path(tmp_path) / "fleet.log"
        log = RecordLog(path, fsync="never")
        for i in range(4):
            log.append_record(_rec("v0", i))
        log.sync()
        log.close()
        raw = path.read_bytes()
        lines = raw.split(b"\n")
        path.write_bytes(
            raw[: len(raw) - len(lines[-2]) - 1] + lines[-2][:10]
        )
        replayed = RecordLog.open_existing(path, fsync="never")
        assert replayed.truncated == 1
        assert [entry[0].seq for entry in replayed.replayed] == [0, 1, 2]


class TestReplayRoundTripProperty:
    @given(
        n=st.integers(min_value=1, max_value=40),
        segment_max=st.integers(min_value=1, max_value=7),
        ack=st.integers(min_value=-1, max_value=45),
        tear=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_append_rotate_replay_round_trip(self, n, segment_max, ack, tear):
        """Any append/rotate/ack history -- optionally ending in a torn
        tail -- recovers to exactly the unacked suffix and resumes."""
        with tempfile.TemporaryDirectory() as tmp:
            def config():
                return WalConfig(
                    directory=Path(tmp) / "wal", fsync="never",
                    segment_max_records=segment_max,
                )

            spooler = WalSpooler.open_fresh(config(), "v0")
            for i in range(n):
                spooler.append(_rec("v0", i))
            ack_eff = min(ack, n - 1)
            if ack_eff >= 0:
                released = spooler.ack_through(ack_eff)
                assert [r.seq for r in released] == list(range(ack_eff + 1))
            spooler.close()

            expected = list(range(ack_eff + 1, n))
            torn = 0
            if tear:
                tail = sorted(Path(tmp, "wal").glob("wal-*.log"))[-1]
                lines = tail.read_bytes().split(b"\n")
                # Only a still-pending record line can be mid-write.
                if len(lines) >= 3 and expected and expected[-1] == n - 1:
                    _tear_tail(Path(tmp) / "wal")
                    expected = expected[:-1]
                    torn = 1

            recovered, report = WalSpooler.recover(config(), "v0")
            assert report.truncated_lines == torn
            assert [r.seq for r in recovered.pending_records()] == expected
            assert recovered.ack_mark == ack_eff
            # The spool resumes: the next append must be accepted.
            next_seq = recovered.last_seq + 1
            recovered.append(_rec("v0", next_seq))
            assert recovered.pending_records()[-1].seq == next_seq
            recovered.close()
