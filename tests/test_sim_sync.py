"""Unit tests for semaphores (timed wait, wake order) and event flags."""

import pytest

from repro.sim import (
    Compute,
    EventFlag,
    MulticoreScheduler,
    Semaphore,
    Simulator,
    Sleep,
    WaitSem,
    msec,
)


def make():
    sim = Simulator()
    sched = MulticoreScheduler(sim, n_cores=1)
    return sim, sched


class TestSemaphoreBasics:
    def test_initial_count_allows_immediate_acquire(self):
        sim, sched = make()
        sem = Semaphore(sim, initial=2)
        acquired = []

        def body(_):
            acquired.append((yield WaitSem(sem)))
            acquired.append((yield WaitSem(sem)))

        sched.spawn("t", body)
        sim.run()
        assert acquired == [True, True]
        assert sim.now == 0
        assert sem.count == 0

    def test_negative_initial_rejected(self):
        sim, _ = make()
        with pytest.raises(ValueError):
            Semaphore(sim, initial=-1)

    def test_post_without_waiter_increments_count(self):
        sim, _ = make()
        sem = Semaphore(sim)
        sem.post()
        sem.post()
        assert sem.count == 2

    def test_posts_are_counted(self):
        sim, _ = make()
        sem = Semaphore(sim)
        sem.post()
        assert sem.posts == 1


class TestSemaphoreWakeOrder:
    def test_highest_priority_waiter_wakes_first(self):
        sim, sched = make()
        sem = Semaphore(sim)
        woken = []

        def waiter(name):
            def gen(_):
                yield WaitSem(sem)
                woken.append(name)
            return gen

        sched.spawn("low", waiter("low"), priority=1)
        sched.spawn("high", waiter("high"), priority=10)
        sim.schedule_at(msec(1), sem.post)
        sim.schedule_at(msec(2), sem.post)
        sim.run()
        assert woken == ["high", "low"]

    def test_fifo_among_equal_priority(self):
        sim, sched = make()
        sem = Semaphore(sim)
        woken = []

        def waiter(name):
            def gen(_):
                yield WaitSem(sem)
                woken.append(name)
            return gen

        sched.spawn("first", waiter("first"), priority=5)
        sched.spawn("second", waiter("second"), priority=5)
        sim.schedule_at(msec(1), sem.post)
        sim.schedule_at(msec(2), sem.post)
        sim.run()
        assert woken == ["first", "second"]


class TestSemaphoreTimeout:
    def test_timeout_returns_false_at_deadline(self):
        sim, sched = make()
        sem = Semaphore(sim)
        results = []

        def body(_):
            results.append(((yield WaitSem(sem, timeout=msec(7))), sim.now))

        sched.spawn("t", body)
        sim.run()
        assert results == [(False, msec(7))]
        assert sem.timeouts == 1

    def test_post_before_timeout_cancels_it(self):
        sim, sched = make()
        sem = Semaphore(sim)
        results = []

        def body(_):
            results.append(((yield WaitSem(sem, timeout=msec(7))), sim.now))

        sched.spawn("t", body)
        sim.schedule_at(msec(3), sem.post)
        sim.run()
        assert results == [(True, msec(3))]
        assert sem.timeouts == 0

    def test_timed_wait_loop_monitor_pattern(self):
        """The paper's monitor loop: repeated sem_timedwait with periodic
        posts interleaved with timeouts."""
        sim, sched = make()
        sem = Semaphore(sim)
        outcomes = []

        def monitor(_):
            for _round in range(4):
                got = yield WaitSem(sem, timeout=msec(10))
                outcomes.append((got, sim.now))

        sched.spawn("mon", monitor, priority=99)
        sim.schedule_at(msec(4), sem.post)   # round 1: acquired at 4ms
        # round 2: times out at 14ms
        sim.schedule_at(msec(20), sem.post)  # round 3: acquired at 20ms
        # round 4: times out at 30ms
        sim.run()
        assert outcomes == [
            (True, msec(4)),
            (False, msec(14)),
            (True, msec(20)),
            (False, msec(30)),
        ]


class TestEventFlag:
    def test_wait_on_set_flag_does_not_block(self):
        sim, sched = make()
        flag = EventFlag(sim)
        flag.set()
        marks = []

        def body(_):
            got = yield WaitSem(flag)
            marks.append((got, sim.now))

        sched.spawn("t", body)
        sim.run()
        assert marks == [(True, 0)]

    def test_set_wakes_all_waiters(self):
        sim, sched = make()
        flag = EventFlag(sim)
        woken = []

        def waiter(name):
            def gen(_):
                yield WaitSem(flag)
                woken.append(name)
            return gen

        sched.spawn("a", waiter("a"))
        sched.spawn("b", waiter("b"))
        sim.schedule_at(msec(1), flag.set)
        sim.run()
        assert sorted(woken) == ["a", "b"]
        assert flag.is_set

    def test_clear_makes_future_waits_block(self):
        sim, sched = make()
        flag = EventFlag(sim)
        flag.set()
        flag.clear()
        results = []

        def body(_):
            got = yield WaitSem(flag, timeout=msec(2))
            results.append(got)

        sched.spawn("t", body)
        sim.run()
        assert results == [False]

    def test_flag_timeout(self):
        sim, sched = make()
        flag = EventFlag(sim)
        results = []

        def body(_):
            got = yield WaitSem(flag, timeout=msec(5))
            results.append((got, sim.now))

        sched.spawn("t", body)
        sim.run()
        assert results == [(False, msec(5))]


class TestSemaphoreStress:
    def test_producer_consumer_counts_match(self):
        sim, sched = make()
        sem = Semaphore(sim)
        consumed = []

        def producer(_):
            for _i in range(50):
                yield Sleep(msec(1))
                sem.post()

        def consumer(_):
            for _i in range(50):
                yield WaitSem(sem)
                consumed.append(sim.now)
                yield Compute(msec(0.2))

        sched.spawn("prod", producer, priority=5)
        sched.spawn("cons", consumer, priority=4)
        sim.run()
        assert len(consumed) == 50
