"""End-to-end adapt chaos scenarios (the ``python -m repro adapt`` sweep)."""

import json

import pytest

from repro.adaptive.chaos import (
    AdaptConfig,
    default_scenarios,
    main as adapt_main,
    run_adapt,
)

QUICK = AdaptConfig(frames=96)


def run_named(*names, config=QUICK):
    by_name = {s.name: s for s in default_scenarios()}
    report = run_adapt(config, [by_name[name] for name in names])
    return report["scenarios"]


def checks_of(doc):
    return {c["name"]: c["ok"] for c in doc["checks"]}


class TestScenarios:
    def test_happy_loop_promotes_a_rederived_epoch(self):
        (doc,) = run_named("adapt_baseline")
        assert doc["ok"], doc["checks"]
        checks = checks_of(doc)
        assert checks["promotion"]
        assert checks["epoch_invariant"]
        assert checks["epoch_convergence"]

    def test_seeded_bad_candidate_is_rejected_and_never_distributed(self):
        (doc,) = run_named("shadow_reject")
        assert doc["ok"], doc["checks"]
        checks = checks_of(doc)
        assert checks["rejected"]
        assert checks["rejected_never_distributed"]

    def test_canary_regression_rolls_the_fleet_back(self):
        (doc,) = run_named("canary_rollback")
        assert doc["ok"], doc["checks"]
        assert checks_of(doc)["rollback"]
        assert doc["epochs"]["ledger"]["rollbacks"], \
            "ledger must record the rollback"

    def test_crash_mid_apply_recovers_exactly_once(self):
        (doc,) = run_named("vehicle_crash_mid_apply")
        assert doc["ok"], doc["checks"]
        checks = checks_of(doc)
        assert checks["pending_recovery"]
        assert checks["epoch_ledger"]

    def test_degraded_vehicle_defers_then_applies(self):
        (doc,) = run_named("deferred_apply")
        assert doc["ok"], doc["checks"]
        checks = checks_of(doc)
        assert checks["deferral"]
        assert checks["promotion"]

    def test_every_scenario_has_distinct_coverage(self):
        scenarios = default_scenarios()
        names = [s.name for s in scenarios]
        assert len(names) == len(set(names))
        assert len(scenarios) >= 10


class TestCli:
    def test_quick_sweep_writes_a_passing_report(self, tmp_path, capsys):
        report_path = tmp_path / "adapt.json"
        code = adapt_main([
            "--quick", "--scenario", "adapt_baseline",
            "--scenario", "epoch_frame_lost",
            "--report", str(report_path), "--dir", str(tmp_path / "work"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out
        report = json.loads(report_path.read_text())
        assert report["schema"] == "repro-adapt-report/1"
        assert report["ok"]
        assert [s["name"] for s in report["scenarios"]] == [
            "adapt_baseline", "epoch_frame_lost"
        ]

    def test_unknown_scenario_rejected(self, capsys):
        with pytest.raises(SystemExit):
            adapt_main(["--scenario", "no-such-scenario"])

    def test_list_prints_scenarios(self, capsys):
        assert adapt_main(["--list"]) == 0
        out = capsys.readouterr().out
        for scenario in default_scenarios():
            assert scenario.name in out
