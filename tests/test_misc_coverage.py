"""Coverage for smaller APIs: domain queries, fusion eviction, sink
helpers, lidar fault injection, stack configuration knobs."""

import pytest

from repro.dds import DdsDomain, Topic
from repro.perception import PerceptionStack, StackConfig
from repro.perception.fusion import FusionService
from repro.perception.lidar_driver import LidarDriver, pointcloud_topic
from repro.perception.pointcloud import PointCloud
from repro.perception.scenario import DrivingScenario, ScenarioConfig
from repro.ros import Node
from repro.sim import Ecu, Simulator, msec, usec


class TestDomainQueries:
    def test_readers_and_writers_of(self):
        sim = Simulator()
        ecu = Ecu(sim, "e")
        domain = DdsDomain(sim)
        part = domain.create_participant(ecu, "p")
        topic = Topic("t")
        reader = part.create_reader(topic)
        writer = part.create_writer(topic)
        assert domain.readers_of("t") == [reader]
        assert domain.writers_of("t") == [writer]
        assert domain.readers_of("absent") == []

    def test_stack_for_unknown_raises(self):
        sim = Simulator()
        domain = DdsDomain(sim)
        with pytest.raises(KeyError):
            domain.stack_for("nowhere")


class TestFusionEviction:
    def test_unpaired_frames_evicted(self):
        sim = Simulator(seed=1)
        ecu = Ecu(sim, "ecu1", n_cores=2)
        domain = DdsDomain(sim, local_latency=usec(10))
        node = Node(domain, ecu, "fusion", priority=30)
        src = Node(domain, ecu, "src", priority=40)
        t_front = pointcloud_topic("f")
        t_rear = pointcloud_topic("r")
        t_out = pointcloud_topic("o")
        fusion = FusionService(node, t_front, t_rear, t_out, max_pending=4)
        pub_front = src.create_publisher(t_front)
        # Only front clouds arrive: the pending map must stay bounded.
        for i in range(20):
            sim.schedule_at(
                msec(1 + i),
                lambda i=i: pub_front.publish(
                    PointCloud.empty(frame_index=i, stamp=sim.now)
                ),
            )
        sim.run(until=msec(40))
        assert fusion.pending_frames <= 4
        assert fusion.evicted_count == 16
        assert fusion.fused_count == 0


class TestSinkHelpers:
    def test_arrival_time_lookup(self):
        stack = PerceptionStack(StackConfig(seed=2))
        stack.run(n_frames=5)
        t = stack.sink.arrival_time("objects", 2)
        assert t is not None and t > 0
        assert stack.sink.arrival_time("objects", 99) is None


class TestLidarDriver:
    def test_fault_delay_and_drop_counted(self):
        sim = Simulator(seed=1)
        ecu = Ecu(sim, "lidar", n_cores=1)
        domain = DdsDomain(sim)
        node = Node(domain, ecu, "driver", priority=40)
        scenario = DrivingScenario(ScenarioConfig(seed=1))
        topic = pointcloud_topic("points")
        driver = LidarDriver(
            node, scenario, "front", topic, period=msec(50),
            fault_fn=lambda f: None if f == 1 else 0,
        )
        driver.start()
        sim.run(until=msec(170))
        driver.stop()
        assert driver.frames_published == 3  # frames 0, 2, 3
        assert driver.frames_dropped == 1

    def test_stop_halts_publication(self):
        sim = Simulator(seed=1)
        ecu = Ecu(sim, "lidar", n_cores=1)
        domain = DdsDomain(sim)
        node = Node(domain, ecu, "driver", priority=40)
        scenario = DrivingScenario(ScenarioConfig(seed=1))
        driver = LidarDriver(
            node, scenario, "front", pointcloud_topic("p"), period=msec(50)
        )
        driver.start()
        sim.schedule_at(msec(60), driver.stop)
        sim.run(until=msec(500))
        assert driver.frames_published == 2


class TestStackKnobs:
    def test_monitoring_disabled_builds_no_monitors(self):
        stack = PerceptionStack(StackConfig(seed=1, monitoring=False))
        assert stack.monitor_ecu1 is None
        assert stack.local_runtimes == {}
        assert stack.remote_monitors == {}
        with pytest.raises(KeyError):
            stack.monitored_latencies("s3_objects")

    def test_per_segment_monitor_threads_created(self):
        stack = PerceptionStack(StackConfig(
            seed=1, monitor_thread_per_segment=True
        ))
        assert len(stack._extra_monitors) == 4  # one per local segment

    def test_custom_handler_override(self):
        from repro.core import PropagateAlways

        marker = PropagateAlways()
        stack = PerceptionStack(StackConfig(
            seed=1, handlers={"s1_front": marker}
        ))
        assert stack.local_runtimes["s1_front"].handler is marker

    def test_exception_records_for_unmonitored_segment(self):
        stack = PerceptionStack(StackConfig(seed=1))
        assert stack.exception_records("does_not_exist") == []

    def test_chains_cover_all_segments(self):
        stack = PerceptionStack(StackConfig(seed=1))
        covered = set()
        for chain in stack.chains.values():
            covered |= {segment.name for segment in chain.segments}
        assert covered == set(stack.segments)
