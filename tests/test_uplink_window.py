"""The pipelined windowed-ARQ client: window discipline, cumulative
acks, fast retransmit, and the circuit breaker's single-probe rule."""

from pathlib import Path

from repro.telemetry import ServiceConfig, TelemetryService
from repro.telemetry.records import RecordKind, TelemetryRecord
from repro.telemetry.uplink import (
    UplinkIngestor,
    WalConfig,
    WalSpooler,
    WindowedClientConfig,
    WindowedUplinkClient,
    decode_envelope,
)
from repro.telemetry.uplink.client import CircuitState
from repro.telemetry.uplink.ingest import store_digest
from repro.telemetry.uplink.transport import decode_frame


def _rec(seq, source="veh00"):
    return TelemetryRecord(
        kind=RecordKind.SEGMENT, source=source, chain="c", segment="c/s0",
        activation=seq, latency_ns=10 + seq, verdict="ok",
        timestamp_ns=(seq + 1) * 1000, seq=seq,
    )


def _spool(tmp_path: Path, records):
    spooler = WalSpooler.open_fresh(
        WalConfig(tmp_path / "veh00", fsync="never"), "veh00"
    )
    spooler.append_many(records)
    return spooler


def _ingestor(tmp_path: Path):
    return UplinkIngestor(
        TelemetryService(ServiceConfig()),
        tmp_path / "fleet", fsync="never", checkpoint_every=None,
    )


class TestWindowDiscipline:
    def test_in_flight_never_exceeds_window_and_acks_are_monotone(
        self, tmp_path
    ):
        records = [_rec(i) for i in range(30)]
        spooler = _spool(tmp_path, records)
        ingestor = _ingestor(tmp_path)
        outbox = []
        client = WindowedUplinkClient(
            spooler,
            lambda payload, now: outbox.append(payload) or True,
            WindowedClientConfig(frame_records=3, window_frames=2),
        )
        ack_marks = []
        for now in range(200):
            client.tick(now)
            assert client.stats()["in_flight_frames"] <= 2
            while outbox:
                ack = ingestor.handle_payload(outbox.pop(0), now)
                if ack:
                    client.on_ack(decode_envelope(ack), now)
            ack_marks.append(spooler.ack_mark)
            if client.idle():
                break
        assert client.idle(), "client never drained"
        assert ack_marks == sorted(ack_marks), "cumulative ack went backwards"
        assert spooler.pending == 0
        reference = TelemetryService(ServiceConfig())
        reference.ingest_many(records)
        reference.drain()
        ingestor.service.drain()
        assert store_digest(ingestor.service) == store_digest(reference)

    def test_frames_respect_advertised_peer_window(self, tmp_path):
        spooler = _spool(tmp_path, [_rec(i) for i in range(40)])
        outbox = []
        client = WindowedUplinkClient(
            spooler,
            lambda payload, now: outbox.append(payload) or True,
            WindowedClientConfig(frame_records=8, window_frames=4),
        )
        client.peer_window = 5  # gateway advertised 5 records of room
        client.tick(0)
        assert client.inflight_records <= 5
        # The clamp shrinks the frame rather than stalling outright...
        assert client.stats()["in_flight_records"] == 5
        client.peer_window = 0
        outbox.clear()
        client.tick(1)
        # ...and a zero window is an explicit, counted stall.
        assert not outbox
        assert client.window_stalls == 1
        client.tick(2)
        assert client.window_stalls == 1, "one episode, counted once"
        assert client.stats()["in_flight_records"] == 5


class TestFastRetransmit:
    def test_dup_acks_trigger_resend_before_timeout(self, tmp_path):
        records = [_rec(i) for i in range(8)]
        spooler = _spool(tmp_path, records)
        ingestor = _ingestor(tmp_path)
        outbox = []
        client = WindowedUplinkClient(
            spooler,
            lambda payload, now: outbox.append(payload) or True,
            WindowedClientConfig(
                frame_records=2, window_frames=4,
                ack_timeout=500, dup_ack_threshold=2,
            ),
        )
        client.tick(0)
        frames = list(outbox)
        outbox.clear()
        assert len(frames) == 4
        # Deliver every frame except the second: each later frame acks
        # with the stuck watermark (a duplicate cumulative ack).
        for payload in (frames[0], frames[2], frames[3]):
            ack = ingestor.handle_payload(payload, 1)
            client.on_ack(decode_envelope(ack), 1)
        assert client.dup_acks == 2
        assert client.fast_retransmits == 1, \
            "dup-ack threshold must resend without waiting for the timer"
        # The resent frame is the hole; delivering it drains everything.
        assert len(outbox) == 1
        header, _, _ = decode_frame(outbox[0])
        lost_header, _, _ = decode_frame(frames[1])
        assert header["frame_id"] == lost_header["frame_id"]
        ack = ingestor.handle_payload(outbox.pop(0), 2)
        client.on_ack(decode_envelope(ack), 2)
        assert client.idle()
        assert spooler.pending == 0
        assert ingestor.service.store.applied == len(records)


class TestFloorProbe:
    def test_all_sacked_flight_over_a_seq_hole_still_converges(
        self, tmp_path
    ):
        """Regression: per-source seq spaces may contain holes (a seq
        never offered).  When every in-flight frame is selectively
        acked but the cumulative ack is gated on such a hole, the
        client must keep re-offering the oldest frame as a floor
        carrier -- without it, neither side ever sends again and the
        protocol deadlocks with durable-but-unreleasable records.
        """
        records = [_rec(i) for i in (0, 1, 2, 3, 5, 6, 7, 8)]  # hole: 4
        spooler = _spool(tmp_path, records)
        ingestor = _ingestor(tmp_path)
        outbox = []
        client = WindowedUplinkClient(
            spooler,
            lambda payload, now: outbox.append(payload) or True,
            WindowedClientConfig(
                frame_records=4, window_frames=2, ack_timeout=4,
            ),
        )
        for now in range(200):
            client.tick(now)
            while outbox:
                ack = ingestor.handle_payload(outbox.pop(0), now)
                if ack:
                    client.on_ack(decode_envelope(ack), now)
            if client.idle():
                break
        assert client.idle(), \
            "flight wedged: all frames sacked, cumulative ack gated " \
            "on the seq hole"
        assert client.floor_probes >= 1
        assert spooler.pending == 0
        ingestor.service.drain()
        assert ingestor.service.store.applied == len(records)


class TestHalfOpenSingleProbe:
    def test_breaker_transition_log_is_pinned(self, tmp_path):
        """Regression: while HALF_OPEN exactly one probe frame may fly.

        Pins the full transition log of a blackhole -> heal episode so
        a regression in the probe discipline (e.g. the whole window
        retransmitting out of HALF_OPEN) shows up as a diff here.
        """
        records = [_rec(i) for i in range(32)]
        spooler = _spool(tmp_path, records)
        ingestor = _ingestor(tmp_path)
        outbox = []
        config = WindowedClientConfig(
            frame_records=4, window_frames=4, ack_timeout=4,
            backoff_base=2, backoff_max=4, failure_threshold=2,
            cooldown=10,
        )
        client = WindowedUplinkClient(
            spooler, lambda payload, now: outbox.append(payload) or True,
            config,
        )

        def reopened_twice():
            return sum(
                1 for _, frm, to, _ in client.transitions
                if frm == "open" and to == "half_open"
            ) >= 2

        for now in range(600):
            client.tick(now)
            if (
                client.circuit is CircuitState.HALF_OPEN
                or client.circuit is CircuitState.OPEN
            ):
                # The probe rule: never more than one frame per step
                # while the breaker is not closed.
                assert len(outbox) <= 1
            healed = reopened_twice()
            while outbox:
                payload = outbox.pop(0)
                if not healed:
                    continue  # blackhole: sends vanish
                ack = ingestor.handle_payload(payload, now)
                if ack:
                    client.on_ack(decode_envelope(ack), now)
            if client.idle():
                break
        assert client.idle(), "client never converged after heal"
        assert [t[1:] for t in client.transitions] == [
            ("closed", "open", "failure threshold"),
            ("open", "half_open", "cooldown elapsed"),
            ("half_open", "open", "probe timeout"),
            ("open", "half_open", "cooldown elapsed"),
            ("half_open", "closed", "ack progress"),
        ]
        assert client.probes >= 2
        assert client.circuit_opens == 2
        assert ingestor.service.store.applied == len(records)
