"""Unit + property tests for Tukey statistics and report rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    TukeyStats,
    ascii_boxplot,
    format_duration,
    render_table,
    stats_table,
    summarize,
)
from repro.sim import msec, usec


class TestSummarize:
    def test_known_values(self):
        stats = summarize([1, 2, 3, 4, 5])
        assert stats.median == 3
        assert stats.q1 == 2
        assert stats.q3 == 4
        assert stats.n == 5
        assert stats.outliers == 0
        assert stats.minimum == 1
        assert stats.maximum == 5

    def test_outlier_detection(self):
        data = [10] * 20 + [11] * 20 + [1000]
        stats = summarize(data)
        assert stats.outliers_hi == 1
        assert stats.whisker_hi <= 11

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_single_sample(self):
        stats = summarize([42])
        assert stats.median == 42
        assert stats.whisker_lo == 42
        assert stats.whisker_hi == 42

    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=200))
    @settings(max_examples=100)
    def test_invariants(self, data):
        stats = summarize(data)
        assert stats.minimum <= stats.whisker_lo <= stats.q1 <= stats.median
        assert stats.median <= stats.q3 <= stats.whisker_hi <= stats.maximum
        assert 0 <= stats.outliers <= stats.n

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=4, max_size=100))
    @settings(max_examples=100)
    def test_matches_numpy_percentiles(self, data):
        stats = summarize(data)
        assert stats.median == pytest.approx(np.percentile(data, 50))
        assert stats.q1 == pytest.approx(np.percentile(data, 25))
        assert stats.q3 == pytest.approx(np.percentile(data, 75))


class TestFormatting:
    def test_format_duration_units(self):
        assert format_duration(500) == "500ns"
        assert format_duration(usec(12.3)) == "12.3us"
        assert format_duration(msec(1.5)) == "1.50ms"

    def test_render_table_alignment(self):
        table = render_table(["a", "long_header"], [["x", "1"], ["yyyy", "22"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_stats_table_contains_names(self):
        stats = summarize([usec(10), usec(20), usec(30)])
        table = stats_table({"overhead": stats})
        assert "overhead" in table
        assert "20.0us" in table


class TestCsvExport:
    def test_stats_csv_roundtrip(self):
        import csv as csvmod
        import io

        from repro.analysis import stats_csv

        stats = summarize([1, 2, 3, 4, 5])
        text = stats_csv({"demo": stats})
        rows = list(csvmod.reader(io.StringIO(text)))
        assert rows[0][0] == "series"
        assert rows[1][0] == "demo"
        header = {name: i for i, name in enumerate(rows[0])}
        assert float(rows[1][header["median"]]) == 3.0
        assert int(rows[1][header["n"]]) == 5

    def test_series_csv_ragged(self):
        import csv as csvmod
        import io

        from repro.analysis import series_csv

        text = series_csv({"a": [1, 2, 3], "b": [10]})
        rows = list(csvmod.reader(io.StringIO(text)))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "10"]
        assert rows[3] == ["3", ""]

    def test_series_csv_empty(self):
        from repro.analysis import series_csv

        assert series_csv({}) == "\r\n"


class TestAsciiBoxplot:
    def test_renders_all_series(self):
        named = {
            "objects": summarize([msec(40), msec(60), msec(90)]),
            "ground": summarize([msec(20), msec(30), msec(45)]),
        }
        plot = ascii_boxplot(named, width=40)
        assert "objects" in plot
        assert "ground" in plot
        assert "M" in plot

    def test_empty(self):
        assert ascii_boxplot({}) == "(no data)"

    def test_median_marker_between_whiskers(self):
        stats = summarize(list(range(100)))
        plot = ascii_boxplot({"s": stats}, width=50)
        line = plot.splitlines()[0]
        assert line.index("|") < line.index("M") < line.rindex("|")
