"""The DAG fault campaign: per-path oracles, executor pairs, goldens.

The matrix is moderately expensive (9 fork/join pipeline runs), so it
executes once as a module-scoped fixture.  ``tests/golden/dag_campaign.json``
pins a digest of every scenario's observable behaviour (per-path miss
counts, (m,k) verdicts, detections, alert counts) at 24 frames, seed 17.

Regenerate (after an *intentional* behaviour change) with::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.faults.dag_scenarios import DagCampaign, DagCampaignConfig
    result = DagCampaign(config=DagCampaignConfig(n_frames=24)).run()
    print(json.dumps({
        "schema": "repro-dag-golden/1", "n_frames": 24, "seed": 17,
        "scenarios": {s.name: {"digest": s.digest(),
                               "payload": s.digest_payload()}
                      for s in result.scenarios}}, indent=2, sort_keys=True))
    PY
"""

import json
from pathlib import Path

import pytest

from repro.faults.dag_scenarios import (
    DagCampaign,
    DagCampaignConfig,
    default_dag_scenarios,
)

#: Whole module exercises multi-second pipeline/campaign runs.
pytestmark = pytest.mark.slow

N_FRAMES = 24
GOLDEN_FILE = Path(__file__).parent / "golden" / "dag_campaign.json"

PLAN_PATHS = ("s_cam>s_fuse_cam>s_xfer>s_plan", "s_lid>s_fuse_lid>s_xfer>s_plan")
VIZ_PATHS = ("s_cam>s_fuse_cam>s_xfer>s_viz", "s_lid>s_fuse_lid>s_xfer>s_viz")


@pytest.fixture(scope="module")
def campaign_result():
    return DagCampaign(config=DagCampaignConfig(n_frames=N_FRAMES)).run()


@pytest.fixture(scope="module")
def by_name(campaign_result):
    return {s.name: s for s in campaign_result.scenarios}


@pytest.fixture(scope="module")
def golden():
    data = json.loads(GOLDEN_FILE.read_text())
    assert data["schema"] == "repro-dag-golden/1"
    return data


class TestMatrixCoverage:
    def test_six_fault_classes_and_three_executor_models(self, campaign_result):
        classes = campaign_result.fault_classes_covered - {"baseline"}
        assert len(classes) >= 6
        assert campaign_result.executor_models_covered == {
            "single", "multi", "priority",
        }
        assert len(campaign_result.scenarios) >= 6

    def test_every_scenario_passes_both_oracles(self, campaign_result):
        for scenario in campaign_result.scenarios:
            detail = "\n".join(
                f"{f.subject}@{f.activation}: {f.detail}"
                for f in (scenario.soundness.failures
                          + scenario.completeness.failures)[:5]
            )
            assert scenario.soundness.passed, f"{scenario.name}:\n{detail}"
            assert scenario.completeness.passed, f"{scenario.name}:\n{detail}"
        assert campaign_result.passed

    def test_fault_scenarios_inject(self, by_name):
        for name, scenario in by_name.items():
            if scenario.fault_classes == ("baseline",):
                assert scenario.injections == 0
            else:
                assert scenario.injections > 0, name

    def test_oracles_check_real_violations_where_expected(self, by_name):
        # Completeness checked > 0 means ground-truth violations existed
        # and every one was reported (the oracle is not vacuous).
        for name in (
            "dag_loss_burst_single", "dag_latency_spike_single",
            "dag_cpu_overload_single", "dag_executor_stall_single",
            "dag_silent_sensor_multi",
        ):
            assert by_name[name].completeness.checked > 0, name
            assert by_name[name].detections > 0, name

    def test_baseline_is_clean(self, by_name):
        baseline = by_name["dag_baseline_single"]
        assert baseline.detections == 0
        assert baseline.violated_paths == []
        assert all(
            report["misses"] == 0
            for report in baseline.path_reports.values()
        )


class TestExecutorModelDiscrimination:
    """The same fault under different executors gives different verdicts
    -- the reason the executor model is a scenario parameter at all."""

    def test_single_threaded_overload_starves_viz_path(self, by_name):
        single = by_name["dag_cpu_overload_single"]
        for path in VIZ_PATHS:
            assert single.path_reports[path]["misses"] > 0, (
                "polling-point head-of-line blocking should delay viz"
            )

    def test_multi_threaded_overload_isolates_viz_path(self, by_name):
        multi = by_name["dag_cpu_overload_multi"]
        for path in VIZ_PATHS:
            assert multi.path_reports[path]["misses"] == 0, (
                "reentrant group should isolate viz from the planner"
            )
        for path in PLAN_PATHS:
            assert multi.path_reports[path]["misses"] > 0

    def test_priority_dispatch_rescues_stalled_sinks(self, by_name):
        stalled = by_name["dag_executor_stall_single"]
        rescued = by_name["dag_executor_stall_priority"]
        assert stalled.detections > 0
        assert rescued.detections == 0
        assert rescued.violated_paths == []


class TestPerPathVerdicts:
    def test_loss_burst_violates_all_paths(self, by_name):
        scenario = by_name["dag_loss_burst_single"]
        assert sorted(scenario.violated_paths) == sorted(
            PLAN_PATHS + VIZ_PATHS
        )
        for report in scenario.path_reports.values():
            assert report["mk_satisfied"] == 0
            assert report["max_window_misses"] > 2  # (2,8) exceeded

    def test_per_path_reports_cover_all_four_paths(self, campaign_result):
        for scenario in campaign_result.scenarios:
            assert set(scenario.path_reports) == set(PLAN_PATHS + VIZ_PATHS)

    def test_telemetry_replay_alert_parity(self, campaign_result):
        # Replayed per-path chain records drive the fleet store's
        # automata: scenarios with (m,k)-violated paths must raise
        # alerts, the clean baseline stays near-silent.
        for scenario in campaign_result.scenarios:
            assert scenario.telemetry_records > 0
            if scenario.violated_paths:
                assert sum(scenario.alert_counts.values()) > 0, scenario.name


class TestGoldenDigests:
    def test_golden_file_covers_matrix(self, golden):
        assert set(golden["scenarios"]) == {
            s.name for s in default_dag_scenarios()
        }
        assert golden["n_frames"] == N_FRAMES

    def test_digests_match_golden(self, campaign_result, golden):
        assert golden["n_frames"] == N_FRAMES
        for scenario in campaign_result.scenarios:
            entry = golden["scenarios"][scenario.name]
            assert scenario.digest_payload() == entry["payload"], (
                f"{scenario.name}: DAG campaign behaviour diverged from "
                "the golden pin"
            )
            assert scenario.digest() == entry["digest"], scenario.name


class TestDeterminism:
    def test_rerun_scenario_digest_identical(self):
        scenario = default_dag_scenarios()[1]  # loss burst
        config = DagCampaignConfig(n_frames=N_FRAMES)

        def digest():
            return DagCampaign([scenario], config).run().scenarios[0].digest()

        assert digest() == digest()


class TestConfigValidation:
    def test_too_few_frames_rejected(self):
        with pytest.raises(ValueError):
            DagCampaignConfig(n_frames=8)

    def test_unknown_executor_model_rejected(self):
        from repro.faults.dag_stack import DagStack, DagStackConfig

        with pytest.raises(ValueError, match="unknown executor model"):
            DagStack(DagStackConfig(executor_model="fifo"))


def test_render_report_mentions_verdict(campaign_result):
    report = campaign_result.render_report()
    assert "dag campaign: PASS" in report
    for scenario in campaign_result.scenarios:
        assert scenario.name in report
