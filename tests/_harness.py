"""Shared test harness: a tiny two-stage pipeline on one or two ECUs.

Builds the minimal world the monitor tests need:

- ``producer`` node publishing topic ``a`` periodically,
- ``worker`` node subscribing to ``a``, computing for a controllable
  duration, then publishing topic ``b``,
- ``sink`` node subscribing to ``b``.

The local segment under test is receive(a)@worker -> publication(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core import (
    EventChain,
    EventKind,
    MKConstraint,
    MonitorThread,
    LocalSegmentRuntime,
)
from repro.core.segments import local_segment, remote_segment
from repro.dds import DdsDomain, Topic
from repro.network import JitterModel, Link, NetworkStack
from repro.ros import Node
from repro.sim import Compute, Ecu, Simulator, msec, usec


@dataclass
class Message:
    """Payload carrying the chain activation index end-to-end."""

    frame_index: int
    value: object = None
    size: int = 1000


def message_topic(name: str) -> Topic:
    return Topic(name, type_name="Message", size_fn=lambda m: m.size)


def activation_of(sample) -> Optional[int]:
    data = sample.data
    return getattr(data, "frame_index", None)


class PipelineWorld:
    """One-ECU pipeline with a monitored local segment."""

    def __init__(
        self,
        seed: int = 1,
        n_cores: int = 2,
        period: int = msec(100),
        d_mon: int = msec(20),
        worker_time: Callable[[int], int] = lambda i: msec(5),
        handler=None,
        mk: MKConstraint = MKConstraint(1, 5),
    ):
        self.sim = Simulator(seed=seed)
        self.ecu = Ecu(self.sim, "ecu1", n_cores=n_cores)
        self.domain = DdsDomain(self.sim, local_latency=usec(20))
        self.period = period
        self.topic_a = message_topic("a")
        self.topic_b = message_topic("b")

        self.producer = Node(self.domain, self.ecu, "producer", priority=40)
        self.worker = Node(self.domain, self.ecu, "worker", priority=30)
        self.sink = Node(self.domain, self.ecu, "sink", priority=20)

        self.pub_a = self.producer.create_publisher(self.topic_a)
        self.pub_b = self.worker.create_publisher(self.topic_b)
        self.worker_time = worker_time
        self.sink_received: List[tuple] = []

        def worker_cb(sample):
            duration = self.worker_time(sample.data.frame_index)
            yield Compute(duration)
            self.pub_b.publish(Message(frame_index=sample.data.frame_index, value="out"))

        self.worker_sub = self.worker.create_subscription(self.topic_a, worker_cb)
        self.sink.create_subscription(
            self.topic_b,
            lambda s: self.sink_received.append(
                (s.data.frame_index, self.sim.now, s.recovered)
            ),
        )

        # Segment + monitor.
        self.segment = local_segment(
            "seg_worker", "ecu1", "a", "b", d_mon=d_mon
        )
        self.monitor = MonitorThread(self.ecu, priority=99)
        self.runtime = LocalSegmentRuntime(
            self.segment,
            handler=handler,
            mk=mk,
            activation_fn=activation_of,
        )
        self.monitor.add_segment(self.runtime)
        self.runtime.attach_start(self.worker_sub.reader)
        self.runtime.attach_end_writer(self.pub_b.writer)

        self.chain = EventChain(
            name="test_chain",
            segments=[self.segment],
            period=period,
            budget_e2e=d_mon + msec(10),
            budget_seg=period,
            mk=mk,
        )
        from repro.core import ChainRuntime

        self.chain_runtime = ChainRuntime(self.chain)
        self.runtime.reporters.append(self.chain_runtime)

        self._frame = 0

    def publish_frames(self, count: int, period: Optional[int] = None) -> None:
        period = period or self.period
        for i in range(count):
            self.sim.schedule_at(
                msec(1) + i * period,
                lambda i=i: self.pub_a.publish(Message(frame_index=i)),
            )

    def run(self, until: int) -> None:
        self.sim.run(until=until)


def two_ecu_world(seed: int = 1, loss: float = 0.0, jitter: int = 0,
                  base_latency: int = usec(200)):
    """Two ECUs joined by links, with network stacks registered."""
    sim = Simulator(seed=seed)
    ecu1 = Ecu(sim, "ecu1", n_cores=2)
    ecu2 = Ecu(sim, "ecu2", n_cores=2)
    domain = DdsDomain(sim, local_latency=usec(20))
    domain.register_stack(ecu1, NetworkStack(ecu1, per_frame_cost=usec(10), per_byte_cost=0))
    domain.register_stack(ecu2, NetworkStack(ecu2, per_frame_cost=usec(10), per_byte_cost=0))
    jitter_model = JitterModel("uniform", jitter) if jitter else None
    domain.add_link(
        ecu1, ecu2,
        Link(sim, "e1->e2", base_latency=base_latency, loss_prob=loss,
             jitter=jitter_model, bandwidth_bps=1e12),
    )
    domain.add_link(
        ecu2, ecu1,
        Link(sim, "e2->e1", base_latency=base_latency, loss_prob=loss,
             bandwidth_bps=1e12),
    )
    return sim, ecu1, ecu2, domain
