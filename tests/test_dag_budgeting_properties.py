"""Property tests of the DAG budgeting CSP and per-path (m,k) tracking.

Hypothesis generates small random fork/join DAGs (optional head fork,
1-3 branches, optional join tail) with random latency traces; for each:

* path enumeration matches an independent brute-force DFS oracle;
* every schedulable solver result telescopes within each sink's
  ``B_e2e`` along **every** root->sink path (checked by brute force over
  the enumerated paths, not via the solver's own bookkeeping) and passes
  the per-path Eq. (3')-(5') checker;
* the per-path bit-packed :class:`MKAutomaton` driven by
  :class:`DagChainRuntime` agrees record-for-record with the reference
  :class:`MissWindow` checker on random outcome sequences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.budgeting import ChainTrace, DagBudgetingProblem, SegmentTrace
from repro.budgeting.dag import solve_dag_budgets
from repro.core import DagChain, DagChainRuntime, MKConstraint, Outcome
from repro.core.segments import local_segment
from repro.core.weakly_hard import MissWindow


def build_fork_join(has_head, branch_lengths, tail_length):
    """Construct a gap-free fork/join DAG skeleton.

    ``head? -> branches (parallel linear runs) -> tail?``.  With no tail
    and several branches the DAG has several sinks; with no head it has
    several roots.
    """
    nodes = []
    edges = []
    branches = []
    for b, length in enumerate(branch_lengths):
        branch = [f"b{b}_{i}" for i in range(length)]
        branches.append(branch)
        nodes.extend(branch)
        edges.extend(zip(branch, branch[1:]))
    if has_head:
        nodes.insert(0, "head")
        edges = [("head", branch[0]) for branch in branches] + edges
    tail = [f"t{i}" for i in range(tail_length)]
    if tail:
        nodes.extend(tail)
        edges.extend((branch[-1], tail[0]) for branch in branches)
        edges.extend(zip(tail, tail[1:]))

    segments = {
        n: local_segment(n, "ecu", f"in_{n}", f"out_{n}") for n in nodes
    }
    # Stitch every edge gap-free; joins share one event object.
    preds = {n: [] for n in nodes}
    for src, dst in edges:
        preds[dst].append(src)
    for dst, srcs in preds.items():
        if not srcs:
            continue
        shared = segments[srcs[0]].end
        for src in srcs:
            segments[src].end = shared
        segments[dst].start = shared
    return [segments[n] for n in nodes], edges


def brute_force_paths(segment_names, edges):
    """Independent DFS path enumeration (the oracle)."""
    succ = {n: [] for n in segment_names}
    preds = set()
    for src, dst in edges:
        succ[src].append(dst)
        preds.add(dst)
    out = []

    def walk(node, prefix):
        prefix = prefix + [node]
        if not succ[node]:
            out.append(tuple(prefix))
        for nxt in succ[node]:
            walk(nxt, prefix)

    for root in segment_names:
        if root not in preds:
            walk(root, [])
    return out


@st.composite
def dag_instances(draw):
    has_head = draw(st.booleans())
    n_branches = draw(st.integers(min_value=1, max_value=3))
    branch_lengths = [
        draw(st.integers(min_value=1, max_value=2)) for _ in range(n_branches)
    ]
    tail_length = draw(st.integers(min_value=0, max_value=2))
    segments, edges = build_fork_join(has_head, branch_lengths, tail_length)
    n_activations = draw(st.integers(min_value=6, max_value=10))
    latencies = {
        s.name: draw(st.lists(
            st.integers(min_value=1, max_value=12),
            min_size=n_activations, max_size=n_activations,
        ))
        for s in segments
    }
    k = draw(st.integers(min_value=2, max_value=5))
    return {
        "segments": segments,
        "edges": edges,
        "latencies": latencies,
        "budget_seg": draw(st.integers(min_value=4, max_value=14)),
        "budget_e2e": draw(st.integers(min_value=8, max_value=60)),
        "mk": MKConstraint(draw(st.integers(min_value=0, max_value=min(3, k))), k),
    }


def make_dag(case):
    return DagChain(
        name="prop",
        segments=case["segments"],
        edges=case["edges"],
        period=100,
        budget_e2e=case["budget_e2e"],
        budget_seg=case["budget_seg"],
        mk=case["mk"],
    )


def make_trace(case):
    trace = ChainTrace("prop")
    for segment in case["segments"]:
        trace.add(SegmentTrace(segment.name, case["latencies"][segment.name]))
    return trace


@settings(max_examples=50, deadline=None)
@given(case=dag_instances())
def test_path_enumeration_matches_brute_force(case):
    dag = make_dag(case)
    expected = brute_force_paths(
        [s.name for s in case["segments"]], case["edges"]
    )
    assert [p.segment_names for p in dag.paths()] == expected
    # Path ids are the canonical joined rendering, and unique.
    ids = [p.path_id for p in dag.paths()]
    assert ids == [">".join(names) for names in expected]
    assert len(set(ids)) == len(ids)


@settings(max_examples=40, deadline=None)
@given(case=dag_instances())
def test_schedulable_solutions_telescope_on_every_path(case):
    dag = make_dag(case)
    problem = DagBudgetingProblem(dag, make_trace(case))
    result = problem.solve_greedy()
    if not result.schedulable:
        return
    # Brute-force oracle: walk every enumerated path independently of
    # the solver's own path bookkeeping.
    for names in brute_force_paths(
        [s.name for s in case["segments"]], case["edges"]
    ):
        total = sum(result.deadlines[n] for n in names)
        sink = names[-1]
        assert total <= dag.budget_e2e[sink], (
            f"path {'>'.join(names)}: deadline sum {total} exceeds "
            f"sink budget {dag.budget_e2e[sink]}"
        )
    # Eq. (3')-(5') all hold, and segment deadlines respect B_seg.
    report = problem.check(result.deadlines)
    assert report.feasible, report.violated_constraints
    for deadline in result.deadlines.values():
        assert deadline <= case["budget_seg"]
    # The d_mon split is positive everywhere (d_ex = 0 in these traces).
    monitored = result.as_monitored(problem)
    assert all(d > 0 for d in monitored.values())
    assert result.path_totals == problem.path_totals(result.deadlines)


@settings(max_examples=40, deadline=None)
@given(case=dag_instances())
def test_unschedulable_verdicts_have_no_maximal_witness(case):
    """When the solver gives up, the most conservative assignment really
    is infeasible (either Eq. (5') fails there or budgets cannot fit)."""
    dag = make_dag(case)
    problem = DagBudgetingProblem(dag, make_trace(case))
    result = problem.solve_greedy()
    if result.schedulable:
        return
    maximal = {
        name: problem.candidates(name)[-1] for name in dag.segments
    }
    report = problem.check(maximal)
    # Greedy starts at the maximal assignment and only descends, so an
    # unschedulable verdict with a feasible maximal point is a bug.
    assert not report.feasible


@settings(max_examples=60, deadline=None)
@given(
    misses=st.lists(st.booleans(), min_size=1, max_size=40),
    m=st.integers(min_value=0, max_value=4),
    k=st.integers(min_value=1, max_value=8),
)
def test_per_path_automaton_equivalent_to_miss_window(misses, m, k):
    if m > k:
        m = k
    mk = MKConstraint(m, k)
    seg = local_segment("s", "ecu", "t0", "t1")
    dag = DagChain("one", [seg], [], period=100, budget_e2e=1000, mk=mk)
    fired = []
    runtime = DagChainRuntime(
        dag, on_violation=lambda pid, n, w: fired.append(n)
    )
    reference = MissWindow(mk)
    expected_fired = []
    for n, miss in enumerate(misses):
        runtime.report_path(
            "s", n, Outcome.MISS if miss else Outcome.OK
        )
        runtime.advance_window(n)
        if reference.record(miss):
            expected_fired.append(n)
        automaton = runtime.automata["s"]
        assert automaton.misses_in_window == reference.misses_in_window, (
            f"divergence at record {n}"
        )
    assert fired == expected_fired
    assert runtime.automata["s"].violations == reference.violations
    final = runtime.finalize(len(misses) - 1)["s"]
    assert final.mk_satisfied == (reference.violations == 0)
