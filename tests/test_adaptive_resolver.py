"""Online d_mon re-derivation: alignment, drift trigger, padding."""

import random

import pytest

from repro.adaptive import BudgetResolver, ResolverConfig, significant_drift
from repro.adaptive.resolver import align_window
from repro.adaptive.chaos import fleet_chain
from repro.telemetry.records import segment_record

_MS = 1_000_000


def window_for(chain, per_activation, source="veh00", drop=()):
    """SEGMENT records for *per_activation* [{segment: latency_ns}]
    rows; ``drop`` holds (activation, segment) pairs left unobserved."""
    records = []
    seq = 0
    for activation, latencies in enumerate(per_activation):
        for segment in chain.segments:
            if (activation, segment.name) in drop:
                continue
            records.append(segment_record(
                source, chain.name, segment.name, activation,
                latencies[segment.name], "ok",
                (activation + 1) * chain.period, seq,
            ))
            seq += 1
    return records


def steady_rows(chain, count, seg0=4 * _MS, seg1=6 * _MS, seg2=8 * _MS):
    return [{"seg0": seg0, "seg1": seg1, "seg2": seg2}
            for _ in range(count)]


class TestAlignWindow:
    def test_keeps_only_complete_rows_sorted(self):
        chain = fleet_chain()
        window = window_for(chain, steady_rows(chain, 4),
                            drop={(2, "seg1")})
        window += window_for(chain, steady_rows(chain, 2), source="veh01")
        rows = align_window(window, chain)
        keys = [(source, activation) for source, activation, _ in rows]
        assert keys == [("veh00", 0), ("veh00", 1), ("veh00", 3),
                        ("veh01", 0), ("veh01", 1)]
        assert all(set(latencies) == {"seg0", "seg1", "seg2"}
                   for _, _, latencies in rows)

    def test_invariant_under_shuffles_and_duplicates(self):
        chain = fleet_chain()
        window = window_for(chain, steady_rows(chain, 6))
        baseline = align_window(window, chain)
        for seed in range(5):
            shuffled = list(window) + window[:4]  # dups carry equal payloads
            random.Random(seed).shuffle(shuffled)
            assert align_window(shuffled, chain) == baseline


class TestSignificantDrift:
    def test_relative_threshold(self):
        baseline = {"seg0": {"p95": 10.0}, "seg1": {"p95": 20.0}}
        assert not significant_drift(baseline, baseline)
        assert not significant_drift(
            baseline, {"seg0": {"p95": 11.0}, "seg1": {"p95": 20.0}}
        )
        assert significant_drift(
            baseline, {"seg0": {"p95": 14.0}, "seg1": {"p95": 20.0}}
        )
        # A segment the baseline never saw is drift by definition.
        assert significant_drift(baseline, {"seg9": {"p95": 1.0}})


class TestBudgetResolver:
    def test_rederived_epoch_is_feasible_and_telescopes(self):
        chain = fleet_chain()
        resolver = BudgetResolver({chain.name: chain})
        window = window_for(chain, steady_rows(chain, 20))
        outcome = resolver.resolve(window)
        assert outcome.ok
        epoch = outcome.epoch(epoch_id=1, parent_id=0)
        budgets = epoch.budgets[chain.name]
        assert set(budgets) == {"seg0", "seg1", "seg2"}
        for segment in chain.segments:
            d = budgets[segment.name] + segment.d_ex
            assert 0 < d <= chain.budget_seg  # Eqs. 2, 4
        total = sum(budgets[s.name] + s.d_ex for s in chain.segments)
        assert total <= chain.budget_e2e  # Eq. 3

    def test_thin_window_refuses_to_resolve(self):
        chain = fleet_chain()
        resolver = BudgetResolver(
            {chain.name: chain}, ResolverConfig(min_activations=12)
        )
        outcome = resolver.resolve(window_for(chain, steady_rows(chain, 5)))
        assert not outcome.ok
        assert "complete activations" in outcome.reasons[0]
        with pytest.raises(ValueError):
            outcome.epoch(epoch_id=1)

    def test_attribution_steers_the_slack(self):
        chain = fleet_chain()
        window = window_for(chain, steady_rows(chain, 20))
        resolver = BudgetResolver(
            {chain.name: chain}, ResolverConfig(slack_share=0.5)
        )
        skewed = resolver.resolve(
            window, attribution={"seg0": 0.98, "seg1": 0.01, "seg2": 0.01}
        ).epoch(1).budgets[chain.name]
        uniform = resolver.resolve(window).epoch(1).budgets[chain.name]
        assert skewed["seg0"] > uniform["seg0"]
        assert skewed["seg1"] < uniform["seg1"]
        # Padding never exceeds the per-segment bound.
        assert max(skewed.values()) <= chain.budget_seg

    def test_zero_slack_share_yields_minimal_budgets(self):
        chain = fleet_chain()
        window = window_for(chain, steady_rows(chain, 20))
        minimal = BudgetResolver(
            {chain.name: chain}, ResolverConfig(slack_share=0.0)
        ).resolve(window)
        padded = BudgetResolver(
            {chain.name: chain}, ResolverConfig(slack_share=1.0)
        ).resolve(window)
        res_min = minimal.resolutions[chain.name]
        res_pad = padded.resolutions[chain.name]
        assert res_min.padded_total == res_min.minimal_total
        assert res_pad.padded_total > res_pad.minimal_total

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ResolverConfig(min_activations=1)
        with pytest.raises(ValueError):
            ResolverConfig(solver="simplex")
        with pytest.raises(ValueError):
            ResolverConfig(slack_share=1.5)
        with pytest.raises(ValueError):
            BudgetResolver({})
