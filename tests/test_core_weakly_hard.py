"""Unit + property tests for (m,k) constraints and miss windows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MKConstraint, MissWindow, max_window_misses, satisfies_mk
from repro.core.weakly_hard import miss_indices


class TestMKConstraint:
    def test_valid_construction(self):
        mk = MKConstraint(2, 10)
        assert str(mk) == "(2,10)"
        assert not mk.hard

    def test_hard_constraint(self):
        assert MKConstraint(0, 1).hard

    @pytest.mark.parametrize("m,k", [(-1, 5), (6, 5), (0, 0)])
    def test_invalid_rejected(self, m, k):
        with pytest.raises(ValueError):
            MKConstraint(m, k)

    def test_satisfied_by(self):
        mk = MKConstraint(1, 3)
        assert mk.satisfied_by([False, True, False, False, True, False])
        assert not mk.satisfied_by([True, True])


class TestMaxWindowMisses:
    def test_empty_trace(self):
        assert max_window_misses([], 5) == 0

    def test_all_hits(self):
        assert max_window_misses([False] * 10, 3) == 0

    def test_all_misses(self):
        assert max_window_misses([True] * 10, 3) == 3

    def test_clustered_misses(self):
        trace = [False, True, True, False, False, True, False]
        assert max_window_misses(trace, 3) == 2
        assert max_window_misses(trace, 2) == 2
        assert max_window_misses(trace, 1) == 1

    def test_window_larger_than_trace(self):
        assert max_window_misses([True, False, True], 10) == 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            max_window_misses([True], 0)

    @given(
        st.lists(st.booleans(), max_size=60),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=200)
    def test_matches_naive_oracle(self, trace, k):
        naive = 0
        for i in range(len(trace)):
            naive = max(naive, sum(trace[i : i + k]))
        assert max_window_misses(trace, k) == naive

    @given(
        st.lists(st.booleans(), max_size=60),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=200)
    def test_satisfies_consistent_with_max(self, trace, k, m):
        assert satisfies_mk(trace, m, k) == (max_window_misses(trace, k) <= m)


class TestMissWindow:
    def test_no_violation_within_budget(self):
        window = MissWindow(MKConstraint(1, 3))
        assert window.record(True) is False
        assert window.record(False) is False
        assert window.record(False) is False
        assert window.record(True) is False  # window [F,F,T]: 1 miss
        assert not window.violated

    def test_violation_detected(self):
        window = MissWindow(MKConstraint(1, 3))
        window.record(True)
        assert window.record(True) is True
        assert window.violated
        assert window.violation_indices == [1]

    def test_window_slides(self):
        window = MissWindow(MKConstraint(0, 2))
        window.record(True)  # violation (1 > 0)
        window.record(False)
        window.record(False)  # miss slid out
        assert window.misses_in_window == 0

    def test_totals(self):
        window = MissWindow(MKConstraint(5, 10))
        for outcome in [True, False, True, False]:
            window.record(outcome)
        assert window.total == 4
        assert window.total_misses == 2

    @given(
        st.lists(st.booleans(), max_size=80),
        st.integers(min_value=1, max_value=15),
    )
    @settings(max_examples=200)
    def test_online_window_matches_offline(self, trace, k):
        m = k // 2
        window = MissWindow(MKConstraint(m, k))
        for outcome in trace:
            window.record(outcome)
        assert window.violated == (not satisfies_mk(trace, m, k))
        assert window.total_misses == sum(trace)

    @given(st.lists(st.booleans(), min_size=1, max_size=80))
    @settings(max_examples=100)
    def test_window_miss_count_never_exceeds_k(self, trace):
        window = MissWindow(MKConstraint(2, 4))
        for outcome in trace:
            window.record(outcome)
            assert 0 <= window.misses_in_window <= 4


class TestMissIndices:
    def test_indices(self):
        assert miss_indices([False, True, True, False]) == [1, 2]
