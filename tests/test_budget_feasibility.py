"""Load-time feasibility validation of configured d_mon budgets."""

import pytest

from repro.budgeting import (
    BudgetingProblem,
    ChainTrace,
    InfeasibleBudgetError,
    SegmentTrace,
    feasibility_violations,
    validate_chain_budgets,
)
from repro.core import EventChain, MKConstraint
from repro.core.segments import local_segment, remote_segment

_MS = 1_000_000


def make_chain(d_mons, budget_e2e=40 * _MS, budget_seg=16 * _MS, d_ex=0):
    segments = [
        remote_segment("seg0", "/sensor", "ecu0", "ecu1",
                       d_mon=d_mons[0], d_ex=d_ex),
        local_segment("seg1", "ecu1", "/sensor", "/fused",
                      d_mon=d_mons[1], d_ex=d_ex),
        remote_segment("seg2", "/fused", "ecu1", "ecu2",
                       d_mon=d_mons[2], d_ex=d_ex),
    ]
    return EventChain(
        name="pipeline", segments=segments, period=50 * _MS,
        budget_e2e=budget_e2e, budget_seg=budget_seg,
        mk=MKConstraint(3, 8),
    )


class TestStructuralFeasibility:
    def test_feasible_budgets_pass(self):
        validate_chain_budgets(make_chain([8 * _MS, 10 * _MS, 12 * _MS]))

    def test_unassigned_budgets_are_not_an_error(self):
        # Budgeting has not run: nothing monitored, nothing infeasible.
        assert feasibility_violations(make_chain([None, None, None])) == []

    def test_deadline_sum_beyond_e2e_budget_raises(self):
        chain = make_chain([16 * _MS, 16 * _MS, 16 * _MS])
        with pytest.raises(InfeasibleBudgetError, match="Eq.3"):
            validate_chain_budgets(chain)

    def test_segment_deadline_beyond_seg_budget_raises(self):
        # d = d_mon + d_ex breaks B_seg even though d_mon alone fits.
        chain = make_chain([14 * _MS, 10 * _MS, 12 * _MS], d_ex=4 * _MS,
                           budget_e2e=60 * _MS)
        with pytest.raises(InfeasibleBudgetError, match="Eq.4"):
            validate_chain_budgets(chain)

    def test_every_violation_is_reported_not_just_the_first(self):
        chain = make_chain([17 * _MS, 17 * _MS, 17 * _MS])
        violations = feasibility_violations(chain)
        assert len([v for v in violations if v.startswith("Eq.4")]) == 3
        assert any(v.startswith("Eq.3") for v in violations)

    def test_partial_assignment_checks_only_assigned_segments(self):
        # One segment over B_seg is caught even while the chain-wide
        # Eq. 3 sum is unjudgeable (not every segment assigned yet).
        chain = make_chain([17 * _MS, None, None])
        violations = feasibility_violations(chain)
        assert violations and all(v.startswith("Eq.4") for v in violations)


class TestWindowedFeasibility:
    def test_mk_violations_detected_with_a_trace(self):
        # Feasible per Eqs. 3-4, but the observed latencies make the
        # configured deadlines miss more than (3,8) allows.
        chain = make_chain([2 * _MS, 10 * _MS, 12 * _MS])
        trace = ChainTrace(chain.name)
        trace.add(SegmentTrace("seg0", [4 * _MS] * 16))
        trace.add(SegmentTrace("seg1", [6 * _MS] * 16))
        trace.add(SegmentTrace("seg2", [8 * _MS] * 16))
        problem = BudgetingProblem(chain, trace)
        with pytest.raises(InfeasibleBudgetError, match="Eq.5"):
            validate_chain_budgets(chain, problem)
        # The same assignment without the trace is structurally fine.
        validate_chain_budgets(chain)


class TestPerceptionLoadTime:
    def test_infeasible_scenario_config_fails_at_build_time(self):
        from repro.perception import PerceptionStack, StackConfig

        # Configured deadline sum far past B_e2e (Eq. 3): the stack
        # must refuse to build instead of monitoring the nonsense.
        with pytest.raises(InfeasibleBudgetError):
            PerceptionStack(StackConfig(seed=1, budget_e2e=1 * _MS))

    def test_unmonitored_stack_skips_the_gate(self):
        from repro.perception import PerceptionStack, StackConfig

        # Without monitoring the deadlines are inert; building the
        # stack for an unmonitored baseline run stays legal.
        PerceptionStack(StackConfig(seed=1, budget_e2e=1 * _MS,
                                    monitoring=False))
