"""Property tests of the budgeting CSP solvers (paper Eqs. 3-7).

Hypothesis generates small random instances; for every schedulable
solver outcome we assert

* the returned deadline vector satisfies Eqs. (3)-(5) -- which embed
  the windowed miss counts of Eqs. (6)-(7) via
  :func:`~repro.budgeting.windows.propagated_window_misses`; and
* **minimality**: no component-wise ("uniformly") smaller feasible
  vector exists, checked by brute force over the candidate lattice.

Instances are kept tiny (<= 3 segments, <= 12 activations, few distinct
latencies) so the brute-force oracle stays exact and fast.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.budgeting import (
    BudgetingProblem,
    ChainTrace,
    SegmentTrace,
    solve_branch_and_bound,
    solve_greedy_propagated,
    solve_independent,
)
from repro.core import EventChain, MKConstraint
from repro.core.segments import local_segment, remote_segment


def make_problem(latencies_by_segment, m, k, budget_e2e, budget_seg,
                 propagation=None):
    segments = []
    for i in range(len(latencies_by_segment)):
        if i % 2 == 0:
            seg = remote_segment(f"s{i}", f"t{i}", "ecuA", "ecuB")
        else:
            seg = local_segment(f"s{i}", "ecuB", f"t{i-1}", f"t{i}")
        segments.append(seg)
    for earlier, later in zip(segments, segments[1:]):
        later.start = earlier.end
    chain = EventChain(
        name="chain", segments=segments, period=100,
        budget_e2e=budget_e2e, budget_seg=budget_seg, mk=MKConstraint(m, k),
    )
    trace = ChainTrace("chain")
    for seg, lats in zip(segments, latencies_by_segment):
        trace.add(SegmentTrace(seg.name, list(lats)))
    return BudgetingProblem(chain, trace, propagation=propagation)


def brute_force_feasible(problem):
    """All feasible candidate-lattice assignments, exhaustively checked."""
    candidate_sets = [
        problem.candidates(i) for i in range(len(problem.order))
    ]
    return [
        list(vector)
        for vector in itertools.product(*candidate_sets)
        if problem.check(vector).feasible
    ]


#: Small random instances: 1-3 segments x 6-12 activations, latencies
#: drawn from a handful of values so the candidate lattice stays tiny.
@st.composite
def instances(draw):
    n_segments = draw(st.integers(min_value=1, max_value=3))
    n_activations = draw(st.integers(min_value=6, max_value=12))
    latencies = [
        draw(st.lists(st.integers(min_value=1, max_value=12),
                      min_size=n_activations, max_size=n_activations))
        for _ in range(n_segments)
    ]
    k = draw(st.integers(min_value=2, max_value=5))
    return {
        "latencies": latencies,
        "k": k,
        "m": draw(st.integers(min_value=0, max_value=min(3, k))),
        "budget_seg": draw(st.integers(min_value=4, max_value=14)),
        "budget_e2e": draw(st.integers(min_value=8, max_value=40)),
    }


@settings(max_examples=40, deadline=None)
@given(case=instances())
def test_solver_outputs_satisfy_constraints(case):
    """Every schedulable result passes the Eq. (3)-(5) checker."""
    problem = make_problem(
        case["latencies"], case["m"], case["k"],
        case["budget_e2e"], case["budget_seg"],
    )
    p0 = make_problem(
        case["latencies"], case["m"], case["k"],
        case["budget_e2e"], case["budget_seg"],
        propagation=[0] * len(case["latencies"]),
    )
    for solver, prob in (
        (solve_independent, p0),
        (solve_greedy_propagated, problem),
        (solve_branch_and_bound, problem),
    ):
        result = solver(prob)
        if result.schedulable:
            report = prob.check(result.deadlines)
            assert report.feasible, (
                f"{solver.__name__} returned an infeasible vector "
                f"{result.deadlines}: {report.violated_constraints}"
            )
            assert result.total == sum(result.deadlines)


@settings(max_examples=25, deadline=None)
@given(case=instances())
def test_no_uniformly_smaller_feasible_vector(case):
    """Brute force: nothing component-wise below a solver result is feasible."""
    problem = make_problem(
        case["latencies"], case["m"], case["k"],
        case["budget_e2e"], case["budget_seg"],
    )
    result = solve_branch_and_bound(problem)
    feasible = brute_force_feasible(problem)
    if not result.schedulable:
        assert feasible == [], (
            "solver reported unschedulable but brute force found "
            f"feasible vectors, e.g. {feasible[:3]}"
        )
        return
    assert result.total == min(sum(v) for v in feasible)
    dominated = [
        v for v in feasible
        if v != result.deadlines
        and all(a <= b for a, b in zip(v, result.deadlines))
    ]
    assert dominated == [], (
        f"{dominated[0]} is uniformly smaller than {result.deadlines} "
        "yet feasible"
    )


@settings(max_examples=25, deadline=None)
@given(case=instances())
def test_independent_is_per_segment_minimal(case):
    """For p = 0 each deadline is individually minimal: lowering any one
    component to the next smaller candidate breaks Eq. (5)."""
    propagation = [0] * len(case["latencies"])
    problem = make_problem(
        case["latencies"], case["m"], case["k"],
        case["budget_e2e"], case["budget_seg"], propagation=propagation,
    )
    result = solve_independent(problem)
    if not result.schedulable:
        return
    for i in range(len(result.deadlines)):
        lower = [c for c in problem.candidates(i) if c < result.deadlines[i]]
        for candidate in lower:
            trial = list(result.deadlines)
            trial[i] = candidate
            report = problem.check(trial)
            assert any(
                "Eq.5" in v for v in report.violated_constraints
            ), (
                f"segment {i}: deadline {candidate} < "
                f"{result.deadlines[i]} still satisfies Eq. (5)"
            )


@settings(max_examples=25, deadline=None)
@given(case=instances())
def test_greedy_never_beats_exact(case):
    """The heuristic is sound: when both find solutions, greedy >= exact."""
    problem = make_problem(
        case["latencies"], case["m"], case["k"],
        case["budget_e2e"], case["budget_seg"],
    )
    greedy = solve_greedy_propagated(problem)
    exact = solve_branch_and_bound(problem)
    if greedy.schedulable:
        # Greedy feasibility implies the exact search cannot miss it.
        assert exact.schedulable
        assert exact.total <= greedy.total
