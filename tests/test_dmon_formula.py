"""The paper's remote-deadline formula: d_mon = BCRT + J_R + J_a + eps.

Sec. IV-B1: for synchronization-based monitoring, the pessimism is
bounded by the arrival jitter and the synchronization error; the
monitored deadline can be set to the best-case response time plus
response jitter plus arrival jitter plus epsilon, all measurable from a
recorded trace.  This test performs that synthesis and verifies both
properties the paper claims:

- no false positives on a fresh run under the same conditions,
- genuine violations (delays beyond the budget) are detected.
"""

import pytest

from _harness import Message, activation_of, message_topic, two_ecu_world

from repro.core import (
    MKConstraint,
    MonitorThread,
    PropagateAlways,
    SyncRemoteMonitor,
    TimeoutContext,
)
from repro.core.segments import remote_segment
from repro.network import DriftingClock, PtpService
from repro.ros import Node
from repro.sim import msec, sec, usec

PERIOD = msec(100)
N_MEASURE = 80


def build_world(seed, fault_fn=None):
    sim, ecu1, ecu2, domain = two_ecu_world(seed=seed, jitter=usec(300))
    # Drifting clocks + PTP, as the formula presumes.
    clock1 = DriftingClock(sim, offset_ns=usec(40), drift_ppm=20.0, name="tx")
    clock2 = DriftingClock(sim, offset_ns=-usec(30), drift_ppm=-15.0, name="rx")
    ecu1.clock, ecu2.clock = clock1, clock2
    ptp = PtpService(sim, [clock1, clock2], sync_period=sec(1),
                     residual_error=usec(5))
    ptp.start()
    sender = Node(domain, ecu1, "sender", priority=40)
    receiver = Node(domain, ecu2, "receiver", priority=30)
    topic = message_topic("stream")
    arrivals = []

    sub = receiver.create_subscription(topic, lambda s: None)

    def observe(sample):
        arrivals.append(
            (sample.data.frame_index, sample.source_timestamp, ecu2.now())
        )

    sub.reader.on_receive_hooks.append(observe)
    pub = sender.create_publisher(topic)

    def publish(i):
        delay = fault_fn(i) if fault_fn else 0
        sim.schedule_at(
            msec(1) + i * PERIOD + delay,
            pub.publish,
            Message(frame_index=i),
        )

    return sim, publish, sub, arrivals, ptp, ecu2


def synthesize_d_mon(arrivals, ptp):
    """Measure BCRT, J_R and J_a from the trace; add epsilon."""
    responses = [arr - ts for _i, ts, arr in arrivals]
    bcrt = min(responses)
    j_r = max(responses) - bcrt
    # Arrival (activation) jitter: deviation of source timestamps from a
    # perfect period grid anchored at the first observation.
    base_i, base_ts, _ = arrivals[0]
    deviations = [
        ts - (base_ts + (i - base_i) * PERIOD) for i, ts, _a in arrivals
    ]
    j_a = max(deviations) - min(deviations)
    eps = ptp.error_bound()
    return bcrt + j_r + j_a + eps


class TestDmonFormula:
    def test_synthesized_deadline_has_no_false_positives(self):
        # Measurement pass.
        sim, publish, _sub, arrivals, ptp, _e = build_world(seed=11)
        for i in range(N_MEASURE):
            publish(i)
        sim.run(until=msec(1) + N_MEASURE * PERIOD)
        d_mon = synthesize_d_mon(arrivals, ptp)
        assert usec(200) < d_mon < msec(20)  # sane magnitude

        # Deployment pass (fresh seed -> different jitter draws).
        sim2, publish2, sub2, _arr2, _ptp2, ecu2 = build_world(seed=12)
        segment = remote_segment("seg", "stream", "ecu1", "ecu2", d_mon=int(d_mon))
        monitor = SyncRemoteMonitor(
            segment, sub2.reader, period=PERIOD,
            handler=PropagateAlways(), mk=MKConstraint(1, 10),
            context=TimeoutContext.MONITOR_THREAD,
            monitor_thread=MonitorThread(ecu2, priority=99),
            activation_fn=activation_of,
        )
        for i in range(N_MEASURE):
            publish2(i)
        sim2.run(until=msec(1) + (N_MEASURE - 1) * PERIOD + msec(10))
        monitor.stop()
        assert monitor.exceptions == []

    def test_synthesized_deadline_detects_real_violations(self):
        sim, publish, _sub, arrivals, ptp, _e = build_world(seed=11)
        for i in range(N_MEASURE):
            publish(i)
        sim.run(until=msec(1) + N_MEASURE * PERIOD)
        d_mon = synthesize_d_mon(arrivals, ptp)

        # Violations: frames 20 and 40 delayed by 3x the budget.
        def fault(i):
            return 3 * int(d_mon) if i in (20, 40) else 0

        sim2, publish2, sub2, _arr2, _ptp2, ecu2 = build_world(
            seed=12, fault_fn=fault
        )
        segment = remote_segment("seg", "stream", "ecu1", "ecu2", d_mon=int(d_mon))
        monitor = SyncRemoteMonitor(
            segment, sub2.reader, period=PERIOD,
            handler=PropagateAlways(), mk=MKConstraint(1, 10),
            context=TimeoutContext.MONITOR_THREAD,
            monitor_thread=MonitorThread(ecu2, priority=99),
            activation_fn=activation_of,
        )
        for i in range(N_MEASURE):
            publish2(i)
        sim2.run(until=msec(1) + (N_MEASURE - 1) * PERIOD + msec(10))
        monitor.stop()
        detected = {e.activation for e in monitor.exceptions}
        assert {20, 40} <= detected
        # And nothing else was flagged.
        assert detected == {20, 40}
