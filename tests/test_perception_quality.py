"""End-to-end perception quality: the pipeline's outputs must track the
scenario's ground truth, not merely flow.

These tests catch silent numeric regressions (a broken ground filter or
clustering would still 'publish something' and pass the flow tests)."""

import numpy as np
import pytest

from repro.perception import (
    DrivingScenario,
    ScenarioConfig,
    classify_ground,
    euclidean_clusters,
)
from repro.perception.clustering import boxes_from_clusters
from repro.perception.stack import PerceptionStack, StackConfig


class TestDetectionQuality:
    pytestmark = pytest.mark.slow

    def test_cluster_count_tracks_scene_objects(self):
        """On fused frames, the number of detected clusters approximates
        the number of objects both lidars can see."""
        scenario = DrivingScenario(ScenarioConfig(
            seed=8, spawn_prob=0.6, max_objects=6
        ))
        hits = 0
        total = 0
        for frame in range(10, 40):
            front = scenario.lidar_frame(frame, "front")
            rear = scenario.lidar_frame(frame, "rear")
            fused = front.concatenate(rear)
            truth = scenario.object_count
            mask = classify_ground(fused, sensor_height=1.8)
            nonground = fused.select(~mask)
            clusters = euclidean_clusters(nonground.xyz, eps=1.2, min_points=8)
            total += 1
            # Allow fuzz: distant objects merge/split occasionally.
            if truth == 0:
                hits += int(len(clusters) <= 1)
            else:
                hits += int(abs(len(clusters) - truth) <= max(2, truth // 2))
        assert hits / total > 0.6

    def test_boxes_have_physical_dimensions(self):
        scenario = DrivingScenario(ScenarioConfig(seed=8, spawn_prob=0.9))
        for frame in range(5, 25):
            cloud = scenario.lidar_frame(frame, "front")
            mask = classify_ground(cloud, sensor_height=1.8)
            nonground = cloud.select(~mask)
            clusters = euclidean_clusters(nonground.xyz, eps=1.2, min_points=8)
            for box in boxes_from_clusters(nonground.xyz, clusters):
                assert 0 < box.x_max - box.x_min < 20
                assert 0 < box.y_max - box.y_min < 20
                assert box.point_count >= 8

    def test_stack_detects_objects_when_present(self):
        stack = PerceptionStack(StackConfig(
            seed=9,
            scenario=ScenarioConfig(seed=9, spawn_prob=0.8, max_objects=6),
        ))
        stack.run(n_frames=25)
        arrivals = stack.sink.arrivals["objects"]
        assert len(arrivals) == 25
        # The detector output reaching the sink carries bounding boxes
        # in at least a majority of frames of this busy scenario.
        # (Sink records only metadata; re-derive via the detector count.)
        assert stack.detector.detected_count == 25


class TestGroundSplitConservation:
    def test_ground_plus_nonground_partitions_cloud(self):
        scenario = DrivingScenario(ScenarioConfig(seed=4, spawn_prob=0.7))
        for frame in range(3, 15):
            cloud = scenario.lidar_frame(frame, "front")
            mask = classify_ground(cloud)
            ground = cloud.select(mask)
            nonground = cloud.select(~mask)
            assert len(ground) + len(nonground) == len(cloud)
            merged = np.vstack([ground.points, nonground.points])
            assert merged.shape == cloud.points.shape
