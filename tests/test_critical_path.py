"""Critical-path extraction, attribution exactness, and the exporters."""

import json

import pytest

from repro.perception.stack import PerceptionStack, StackConfig
from repro.tracing.critical_path import (
    CriticalPathAnalyzer,
    attribute_chain,
    build_edges,
    render_attribution,
)
from repro.tracing.export import (
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.tracing.spans import SpanRecorder


FRAMES = 10


@pytest.fixture(scope="module")
def benign_stack():
    stack = PerceptionStack(StackConfig(seed=1, spans=True))
    stack.run(n_frames=FRAMES)
    return stack


@pytest.fixture(scope="module")
def lossy_stack():
    stack = PerceptionStack(StackConfig(seed=7, link_loss=0.08, spans=True))
    stack.run(n_frames=FRAMES)
    return stack


class TestEdgeDecomposition:
    def test_edges_telescope_exactly(self, benign_stack):
        analyzer = CriticalPathAnalyzer(benign_stack.spans)
        total = 0
        for chain in benign_stack.chains.values():
            for path in analyzer.analyze(chain, range(FRAMES)):
                # verify() already ran inside instance_path; re-check the
                # invariant explicitly here.
                assert sum(e.duration for e in path.edges) == path.e2e_ns
                assert all(e.duration >= 0 for e in path.edges)
                total += 1
        assert total == 4 * FRAMES  # benign: every instance completes

    def test_edges_telescope_under_faults(self, lossy_stack):
        analyzer = CriticalPathAnalyzer(lossy_stack.spans)
        checked = 0
        for chain in lossy_stack.chains.values():
            for path in analyzer.analyze(chain, range(FRAMES)):
                assert sum(e.duration for e in path.edges) == path.e2e_ns
                checked += 1
        assert checked > 0

    def test_path_spans_start_at_chain_publication(self, benign_stack):
        analyzer = CriticalPathAnalyzer(benign_stack.spans)
        chain = benign_stack.chains["front_objects"]
        path = analyzer.instance_path(chain, 3)
        assert path is not None
        first, last = path.spans[0], path.spans[-1]
        assert first.name == "dds.publish"
        assert first.attrs["topic"] == "points_front"
        assert last.name == "dds.transport"
        assert last.attrs["topic"] == "objects"
        assert path.frame == 3

    def test_categories_cover_compute_and_network(self, benign_stack):
        analyzer = CriticalPathAnalyzer(benign_stack.spans)
        chain = benign_stack.chains["front_objects"]
        path = analyzer.instance_path(chain, 2)
        totals = path.by_category()
        assert totals.get("compute", 0) > 0
        assert totals.get("network", 0) > 0
        assert sum(totals.values()) == path.e2e_ns

    def test_build_edges_splits_queue_gaps(self):
        rec = SpanRecorder(sim=type("S", (), {"now": 0})())
        a = rec.begin("a", "compute", parent=None, start=0)
        rec.end(a, end=10)
        b = rec.begin("b", "compute", parent=a.context, start=25)
        rec.end(b, end=40)
        edges = build_edges([a, b])
        assert [(e.name, e.category, e.duration) for e in edges] == [
            ("a", "compute", 10),
            ("queue:b", "queue", 15),
            ("b", "compute", 15),
        ]
        assert sum(e.duration for e in edges) == 40

    def test_missing_frame_returns_none(self, benign_stack):
        analyzer = CriticalPathAnalyzer(benign_stack.spans)
        chain = benign_stack.chains["front_objects"]
        assert analyzer.instance_path(chain, FRAMES + 50) is None


class TestAttribution:
    def test_aggregates_all_instances(self, benign_stack):
        analyzer = CriticalPathAnalyzer(benign_stack.spans)
        chain = benign_stack.chains["rear_ground"]
        attribution = attribute_chain(analyzer, chain, range(FRAMES))
        assert attribution.n_instances == FRAMES
        assert attribution.e2e_histogram.count == FRAMES
        shares = attribution.category_share()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        assert shares["compute"] > 0.5  # perception is compute-bound

    def test_segment_burn_within_budgets_when_benign(self, benign_stack):
        analyzer = CriticalPathAnalyzer(benign_stack.spans)
        chain = benign_stack.chains["front_objects"]
        attribution = attribute_chain(analyzer, chain, range(FRAMES))
        for name, (hist, budget) in attribution.segment_burn.items():
            assert hist.count == FRAMES, name
            assert budget is not None
            assert hist.max <= budget, f"{name} overran d_mon in benign run"

    def test_render_report_mentions_every_segment(self, benign_stack):
        analyzer = CriticalPathAnalyzer(benign_stack.spans)
        chain = benign_stack.chains["front_objects"]
        text = render_attribution(attribute_chain(analyzer, chain, range(FRAMES)))
        for segment in chain.segments:
            assert segment.name in text
        assert "e2e" in text and "share=" in text


class TestExport:
    def test_chrome_trace_structure(self, benign_stack):
        document = chrome_trace(benign_stack.spans)
        events = document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"
        phases = {event["ph"] for event in events}
        assert {"X", "i", "M"} <= phases
        for event in events:
            assert "pid" in event and "name" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["args"]["dur_ns"] >= 0

    def test_chrome_trace_written_file_is_json(self, benign_stack, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(benign_stack.spans, str(path))
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == count

    def test_jsonl_round_trip_is_lossless(self, benign_stack, tmp_path):
        path = tmp_path / "spans.jsonl"
        count = write_jsonl(benign_stack.spans, str(path))
        assert count == len(benign_stack.spans)
        restored = read_jsonl(str(path))
        original = benign_stack.spans.spans
        assert len(restored) == len(original)
        for a, b in zip(original, restored):
            assert (
                a.name, a.category, a.trace_id, a.span_id, a.parent_id,
                a.start, a.end, a.links, a.attrs,
            ) == (
                b.name, b.category, b.trace_id, b.span_id, b.parent_id,
                b.start, b.end, b.links, b.attrs,
            )

    def test_analyzer_works_on_reimported_spans(self, benign_stack, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_jsonl(benign_stack.spans, str(path))
        replayed = SpanRecorder(benign_stack.sim)
        replayed.spans = read_jsonl(str(path))
        replayed._by_id = {s.span_id: s for s in replayed.spans}
        analyzer = CriticalPathAnalyzer(replayed)
        chain = benign_stack.chains["front_objects"]
        path_obj = analyzer.instance_path(chain, 1)
        assert path_obj is not None
        assert sum(e.duration for e in path_obj.edges) == path_obj.e2e_ns


class TestTraceCli:
    def test_trace_subcommand_routes_and_exports(self, tmp_path, capsys):
        from repro.experiments.runner import main as runner_main

        chrome = tmp_path / "trace.json"
        code = runner_main([
            "trace", "--frames", "8", "--no-report",
            "--chrome", str(chrome),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "attribution exact on" in out
        assert json.loads(chrome.read_text())["traceEvents"]

    def test_trace_cli_report_lists_chains(self, capsys):
        from repro.tracing.cli import main as trace_main

        code = trace_main(["--frames", "8", "--chain", "front_objects"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chain front_objects" in out
        assert "budget burn" in out
