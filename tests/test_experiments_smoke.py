"""Smoke tests for the experiment drivers (small scales).

The full shape assertions live in benchmarks/; these tests pin the
structural contract of each driver so refactors fail fast.
"""

import pytest

from repro.core import Outcome
from repro.sim import msec, usec


class TestFig02:
    def test_structure(self):
        from repro.experiments.fig02_event_sequence import run_fig02

        result = run_fig02(n_frames=20)
        assert set(result.segment_stats) >= {"s0_front", "s2", "s3_objects"}
        assert len(result.e2e_front_objects) == len(result.composed_front_objects)
        assert result.e2e_front_objects == result.composed_front_objects


class TestFig03:
    def test_paper_sequence(self):
        from repro.experiments.fig03_error_case import run_fig03

        result = run_fig03(n_frames=18)
        assert result.faulty["s1_front"].outcome is Outcome.RECOVERED
        assert result.faulty["s2"].outcome is Outcome.MISS
        assert result.faulty["s3_objects"].outcome is Outcome.SKIPPED
        assert all(r.outcome is Outcome.OK for r in result.clean.values())


class TestFig06:
    def test_scores_structure(self):
        from repro.experiments.fig06_interarrival import run_fig06

        result = run_fig06(n_frames=60)
        assert set(result.scores) == {
            "accumulating lateness", "consecutive misses", "benign jitter"
        }
        for monitors in result.scores.values():
            assert set(monitors) == {"inter-arrival", "sync-based"}

    def test_sync_dominates_interarrival(self):
        from repro.experiments.fig06_interarrival import run_fig06

        result = run_fig06(n_frames=60)
        for scenario, monitors in result.scores.items():
            assert (
                monitors["sync-based"].missed <= monitors["inter-arrival"].missed
            ), scenario
            assert monitors["sync-based"].false_positives == 0, scenario


class TestFig09:
    pytestmark = pytest.mark.slow

    def test_small_run(self):
        from repro.experiments.fig09_segment_latencies import run_fig09

        result = run_fig09(n_frames=60)
        for name in ("s3_objects", "s3_ground"):
            assert len(result.monitored[name]) >= 58
            assert max(result.monitored[name]) <= result.deadline + msec(1)


class TestFig10:
    pytestmark = pytest.mark.slow

    def test_exception_cases_only(self):
        from repro.experiments.fig10_exception_latencies import run_fig10

        result = run_fig10(n_frames=80)
        for name, latencies in result.exception_latencies.items():
            assert len(latencies) == len(result.overshoots[name])
            for latency in latencies:
                assert latency >= result.deadline


class TestFig11:
    def test_real_measurement(self):
        from repro.experiments.fig11_overheads import run_fig11

        result = run_fig11(n_events=200)
        assert len(result.start_overheads) == 200
        assert len(result.end_overheads) == 200
        assert result.monitor_latencies
        assert all(v > 0 for v in result.start_overheads)


class TestFig12:
    def test_both_contexts_measured(self):
        from repro.experiments.fig12_remote_entry import run_fig12

        result = run_fig12(n_periods=90)
        assert len(result.entry_latencies) == 2
        for label, samples in result.entry_latencies.items():
            assert samples, label
            assert all(v >= 0 for v in samples)


class TestRunnerCli:
    def test_cli_single_experiment(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig03"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "recovered" in out

    def test_cli_rejects_unknown(self):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["fig99"])
