"""The multiprocessing fan-out must be byte-identical to serial runs.

Every shard builds its own simulator with deterministic RNG streams, so
process placement cannot leak into results -- these tests prove it by
comparing merged parallel output against a serial run of the same
shards.  Kept small: few scenarios, few frames.
"""

import pytest

from repro.experiments.parallel import (
    run_campaign_parallel,
    run_experiments_parallel,
)
from repro.faults.campaign import CampaignConfig, FaultCampaign, default_scenarios

#: Whole module exercises multi-second stack/campaign runs.
pytestmark = pytest.mark.slow

SCENARIOS = ["loss_burst", "clock_step", "silent_sensor_boot"]
N_FRAMES = 16  # minimum the config admits with default warmup/tail


@pytest.fixture
def config():
    return CampaignConfig(n_frames=N_FRAMES)


class TestCampaignParallel:
    def test_matches_serial_bytewise(self, config):
        registry = {s.name: s for s in default_scenarios()}
        campaign = FaultCampaign(
            [registry[n] for n in SCENARIOS], config=config
        )
        serial = campaign.run()
        parallel = run_campaign_parallel(SCENARIOS, config=config, jobs=2)
        assert serial.render_report() == parallel.render_report()
        assert len(serial.scenarios) == len(parallel.scenarios)
        for a, b in zip(serial.scenarios, parallel.scenarios):
            assert a == b, f"scenario {a.name} diverged between runs"

    def test_merge_preserves_input_order(self, config):
        reordered = list(reversed(SCENARIOS))
        result = run_campaign_parallel(reordered, config=config, jobs=2)
        assert [s.name for s in result.scenarios] == reordered

    def test_serial_fallback_for_single_job(self, config):
        result = run_campaign_parallel(SCENARIOS[:1], config=config, jobs=4)
        assert [s.name for s in result.scenarios] == SCENARIOS[:1]

    def test_watchdog_skip_rule_replicated(self, config):
        """Scenarios requiring the watchdog drop out, exactly as serially."""
        no_watchdog = CampaignConfig(n_frames=N_FRAMES, watchdog=False)
        result = run_campaign_parallel(SCENARIOS, config=no_watchdog, jobs=2)
        assert [s.name for s in result.scenarios] == [
            "loss_burst", "clock_step"  # silent_sensor_boot needs watchdog
        ]

    def test_unknown_scenario_rejected(self, config):
        with pytest.raises(KeyError, match="nope"):
            run_campaign_parallel(["nope"], config=config)


class TestExperimentsParallel:
    def test_matches_serial_bytewise(self, monkeypatch):
        # Spawned workers inherit os.environ, so the frame override
        # reaches them the same way it reaches the serial run.
        monkeypatch.setenv("REPRO_FRAMES", "40")
        monkeypatch.setenv("REPRO_FAULT_FRAMES", "16")
        from repro.experiments.runner import EXPERIMENTS

        names = ["budgeting", "fig02"]
        serial = [(name, EXPERIMENTS[name]()) for name in names]
        parallel = run_experiments_parallel(names, jobs=2)
        assert serial == parallel

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="nope"):
            run_experiments_parallel(["nope"], jobs=2)
