"""Unit tests for the preemptive fixed-priority multicore scheduler."""

import pytest

from repro.sim import (
    Compute,
    Ecu,
    MulticoreScheduler,
    SchedulerPolicy,
    Semaphore,
    Simulator,
    Sleep,
    SimThread,
    ThreadState,
    WaitSem,
    Yield,
    msec,
    usec,
)


def make_sched(n_cores=1, policy=SchedulerPolicy.GLOBAL, seed=0):
    sim = Simulator(seed=seed)
    sched = MulticoreScheduler(sim, n_cores=n_cores, policy=policy)
    return sim, sched


class TestSingleThread:
    def test_compute_completes_after_duration(self):
        sim, sched = make_sched()
        done = []

        def body(_):
            yield Compute(msec(5))
            done.append(sim.now)

        sched.spawn("t", body)
        sim.run()
        assert done == [msec(5)]

    def test_sequential_computes_accumulate(self):
        sim, sched = make_sched()
        marks = []

        def body(_):
            yield Compute(msec(2))
            marks.append(sim.now)
            yield Compute(msec(3))
            marks.append(sim.now)

        sched.spawn("t", body)
        sim.run()
        assert marks == [msec(2), msec(5)]

    def test_zero_compute_takes_no_time(self):
        sim, sched = make_sched()
        marks = []

        def body(_):
            yield Compute(0)
            marks.append(sim.now)

        sched.spawn("t", body)
        sim.run()
        assert marks == [0]

    def test_sleep_blocks_without_cpu(self):
        sim, sched = make_sched()
        marks = []

        def body(_):
            yield Sleep(msec(10))
            marks.append(sim.now)

        thread = sched.spawn("t", body)
        sim.run()
        assert marks == [msec(10)]
        assert thread.total_cpu_time == 0

    def test_cpu_time_is_charged(self):
        sim, sched = make_sched()

        def body(_):
            yield Compute(msec(4))
            yield Sleep(msec(10))
            yield Compute(msec(1))

        thread = sched.spawn("t", body)
        sim.run()
        assert thread.total_cpu_time == msec(5)
        assert thread.done

    def test_thread_state_done_after_completion(self):
        sim, sched = make_sched()

        def body(_):
            yield Compute(1)

        thread = sched.spawn("t", body)
        sim.run()
        assert thread.state is ThreadState.DONE


class TestPriorities:
    def test_higher_priority_runs_first(self):
        sim, sched = make_sched()
        order = []

        def body(name):
            def gen(_):
                yield Compute(msec(1))
                order.append(name)
            return gen

        sched.spawn("low", body("low"), priority=1)
        sched.spawn("high", body("high"), priority=10)
        sim.run()
        assert order == ["high", "low"]

    def test_preemption_delays_lower_priority_compute(self):
        sim, sched = make_sched()
        marks = {}

        def low(_):
            yield Compute(msec(10))
            marks["low"] = sim.now

        def high(_):
            yield Sleep(msec(3))
            yield Compute(msec(4))
            marks["high"] = sim.now

        sched.spawn("low", low, priority=1)
        sched.spawn("high", high, priority=10)
        sim.run()
        # High sleeps 3ms, computes 4ms -> done at 7ms.
        # Low computes 3ms, is preempted for 4ms, finishes remaining 7ms
        # at 3 + 4 + 7 = 14ms.
        assert marks["high"] == msec(7)
        assert marks["low"] == msec(14)

    def test_preemption_count_recorded(self):
        sim, sched = make_sched()

        def low(_):
            yield Compute(msec(10))

        def high(_):
            yield Sleep(msec(3))
            yield Compute(msec(4))

        # Spawn high first so low is not already preempted at t=0.
        sched.spawn("high", high, priority=10)
        t_low = sched.spawn("low", low, priority=1)
        sim.run()
        assert t_low.preemptions == 1

    def test_equal_priority_fifo_order(self):
        sim, sched = make_sched()
        order = []

        def body(name):
            def gen(_):
                yield Compute(msec(1))
                order.append(name)
            return gen

        sched.spawn("a", body("a"), priority=5)
        sched.spawn("b", body("b"), priority=5)
        sim.run()
        assert order == ["a", "b"]


class TestMulticore:
    def test_two_threads_run_in_parallel_on_two_cores(self):
        sim, sched = make_sched(n_cores=2)
        marks = {}

        def body(name):
            def gen(_):
                yield Compute(msec(5))
                marks[name] = sim.now
            return gen

        sched.spawn("a", body("a"))
        sched.spawn("b", body("b"))
        sim.run()
        assert marks == {"a": msec(5), "b": msec(5)}

    def test_third_thread_waits_for_a_core(self):
        sim, sched = make_sched(n_cores=2)
        marks = {}

        def body(name, dur):
            def gen(_):
                yield Compute(dur)
                marks[name] = sim.now
            return gen

        sched.spawn("a", body("a", msec(5)), priority=2)
        sched.spawn("b", body("b", msec(3)), priority=2)
        sched.spawn("c", body("c", msec(2)), priority=1)
        sim.run()
        assert marks["b"] == msec(3)
        assert marks["a"] == msec(5)
        # c starts when b's core frees at 3ms.
        assert marks["c"] == msec(5)

    def test_global_policy_allows_migration(self):
        sim, sched = make_sched(n_cores=2)
        cores_seen = []

        def spinner(_):
            yield Compute(msec(10))

        def migrator(thread):
            yield Compute(msec(1))
            cores_seen.append(thread.core_index)
            yield Sleep(usec(10))
            yield Compute(msec(1))
            cores_seen.append(thread.core_index)

        # Fill core 0 with a long spinner first, then observe the migrator.
        sched.spawn("spin", spinner, priority=5)
        sched.spawn("mig", migrator, priority=4)
        sim.run()
        assert len(cores_seen) == 2

    def test_partitioned_policy_respects_affinity(self):
        sim, sched = make_sched(n_cores=2, policy=SchedulerPolicy.PARTITIONED)
        marks = {}

        def body(name, dur):
            def gen(_):
                yield Compute(dur)
                marks[name] = sim.now
            return gen

        # Both pinned to core 0: they serialize despite core 1 being idle.
        sched.spawn("a", body("a", msec(5)), priority=2, affinity=0)
        sched.spawn("b", body("b", msec(5)), priority=1, affinity=0)
        sim.run()
        assert marks["a"] == msec(5)
        assert marks["b"] == msec(10)

    def test_partitioned_default_affinity_is_core0(self):
        sim, sched = make_sched(n_cores=2, policy=SchedulerPolicy.PARTITIONED)
        thread = sched.spawn("t", lambda _: iter([]))
        assert thread.affinity == 0

    def test_affinity_out_of_range_rejected(self):
        sim, sched = make_sched(n_cores=2)
        with pytest.raises(ValueError):
            sched.spawn("t", lambda _: iter([]), affinity=5)


class TestYield:
    def test_yield_rotates_equal_priority_threads(self):
        sim, sched = make_sched()
        order = []

        def a_body(_):
            yield Compute(msec(1))
            yield Yield()
            order.append("a-resumed")
            yield Compute(msec(1))

        def b_body(_):
            order.append("b-start")
            yield Compute(msec(1))
            order.append("b-done")

        sched.spawn("a", a_body, priority=5)
        sched.spawn("b", b_body, priority=5)
        sim.run()
        # After a yields at 1ms, b (waiting since t=0) runs to completion
        # before a is given the core again.
        assert order == ["b-start", "b-done", "a-resumed"]


class TestSemaphoreIntegration:
    def test_wait_then_post(self):
        sim, sched = make_sched()
        sem = Semaphore(sim)
        results = []

        def waiter(_):
            got = yield WaitSem(sem)
            results.append((got, sim.now))

        def poster(_):
            yield Sleep(msec(5))
            sem.post()

        sched.spawn("w", waiter, priority=5)
        sched.spawn("p", poster, priority=1)
        sim.run()
        assert results == [(True, msec(5))]

    def test_timedwait_times_out(self):
        sim, sched = make_sched()
        sem = Semaphore(sim)
        results = []

        def waiter(_):
            got = yield WaitSem(sem, timeout=msec(3))
            results.append((got, sim.now))

        sched.spawn("w", waiter)
        sim.run()
        assert results == [(False, msec(3))]

    def test_post_preempts_lower_priority_poster(self):
        """A post by a low-priority thread immediately schedules the
        high-priority waiter -- the monitor-thread mechanism."""
        sim, sched = make_sched()
        sem = Semaphore(sim)
        order = []

        def monitor(_):
            got = yield WaitSem(sem)
            assert got
            order.append(("monitor", sim.now))
            yield Compute(usec(10))
            order.append(("monitor-done", sim.now))

        def worker(_):
            yield Compute(msec(1))
            sem.post()
            yield Compute(msec(1))
            order.append(("worker-done", sim.now))

        sched.spawn("mon", monitor, priority=99)
        sched.spawn("wrk", worker, priority=1)
        sim.run()
        assert order[0] == ("monitor", msec(1))
        assert order[1] == ("monitor-done", msec(1) + usec(10))
        # Worker's second compute was delayed by the monitor's execution.
        assert order[2] == ("worker-done", msec(2) + usec(10))


class TestSpeedScaling:
    def test_half_speed_doubles_wall_time(self):
        sim, sched = make_sched()
        sched.cores[0].set_speed(0.5)
        marks = []

        def body(_):
            yield Compute(msec(4))
            marks.append(sim.now)

        sched.spawn("t", body)
        sim.run()
        assert marks == [msec(8)]

    def test_speed_change_mid_compute_rescales_remaining_work(self):
        sim, sched = make_sched()
        marks = []

        def body(_):
            yield Compute(msec(10))
            marks.append(sim.now)

        sched.spawn("t", body)
        # After 5ms at speed 1.0 (5ms work done), drop to 0.5: the
        # remaining 5ms of work takes 10ms of wall time.
        sim.schedule_at(msec(5), lambda: sched.cores[0].set_speed(0.5))
        sim.run()
        assert marks == [msec(15)]

    def test_invalid_speed_rejected(self):
        sim, sched = make_sched()
        with pytest.raises(ValueError):
            sched.cores[0].set_speed(0)


class TestAccounting:
    def test_utilization_half(self):
        sim, sched = make_sched()

        def body(_):
            yield Compute(msec(5))

        sched.spawn("t", body)
        sim.run(until=msec(10))
        assert sched.utilization == pytest.approx(0.5)

    def test_observer_sees_dispatch_and_exit(self):
        sim, sched = make_sched()
        events = []
        sched.observers.append(lambda kind, t: events.append((kind, t.name)))

        def body(_):
            yield Compute(1)

        sched.spawn("t", body)
        sim.run()
        assert ("dispatch", "t") in events
        assert ("exit", "t") in events

    def test_thread_cannot_join_two_schedulers(self):
        sim, sched = make_sched()
        sched2 = MulticoreScheduler(sim, n_cores=1, name="other")
        thread = SimThread("t", lambda _: iter([]))
        sched.add_thread(thread, start=False)
        with pytest.raises(ValueError):
            sched2.add_thread(thread)


class TestEcu:
    def test_ecu_spawn_prefixes_thread_name(self):
        sim = Simulator()
        ecu = Ecu(sim, "ecu1", n_cores=2)
        thread = ecu.spawn("svc", lambda _: iter([]))
        assert thread.name == "ecu1.svc"

    def test_ecu_clock_reads_sim_time(self):
        sim = Simulator()
        ecu = Ecu(sim, "ecu1")
        sim.schedule_at(msec(3), lambda: None)
        sim.run()
        assert ecu.now() == msec(3)
