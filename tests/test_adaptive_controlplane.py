"""Control plane: canary staging, promotion, rollback, crash recovery."""

import pytest

from repro.adaptive import (
    BudgetControlPlane,
    BudgetEpoch,
    ControlPlaneConfig,
    ControlPlaneState,
    EpochLedgerError,
)
from repro.adaptive.chaos import fleet_chain
from repro.telemetry.uplink.transport import EPOCH_ACK_SCHEMA
from test_adaptive_resolver import steady_rows, window_for

_MS = 1_000_000

VEHICLES = ["veh00", "veh01", "veh02"]


class Harness:
    """A control plane wired to perfectly obedient vehicles: every
    frame is acked "applied" immediately (no channel, no loss)."""

    def __init__(self, tmp_path, **config):
        self.chain = fleet_chain()
        self.sent = []  # (vehicle, epoch_id)
        self.plane = BudgetControlPlane(
            {self.chain.name: self.chain}, VEHICLES, tmp_path,
            send=self._send,
            config=ControlPlaneConfig(
                rederive_every=0, canary_count=1, probation_steps=4,
                regression_margin=0.5, resend_every=4, **config,
            ),
        )
        self.violations = {vehicle: 0 for vehicle in VEHICLES}

    def _send(self, payload, vehicle, now):
        from repro.telemetry.uplink.transport import decode_envelope

        doc = decode_envelope(payload)
        epoch_id = doc["epoch"]["epoch_id"]
        self.sent.append((vehicle, epoch_id))
        self.plane.on_ack({
            "schema": EPOCH_ACK_SCHEMA, "vehicle": vehicle,
            "epoch_id": epoch_id, "status": "applied",
        }, now=0)

    def run(self, start, steps):
        for now in range(start, start + steps):
            self.plane.tick(now, lambda: dict(self.violations))
        return start + steps

    def settle_bootstrap(self):
        now = self.run(0, 2)
        assert self.plane.state is ControlPlaneState.IDLE
        return now

    def feed_window(self, rows=None):
        self.plane.observe_many(window_for(
            self.chain, rows or steady_rows(self.chain, 20)
        ))


class TestBootstrapAndInvariant:
    def test_bootstrap_publishes_factory_epoch_fleet_wide(self, tmp_path):
        harness = Harness(tmp_path)
        harness.settle_bootstrap()
        assert {v for v, _ in harness.sent} == set(VEHICLES)
        assert harness.plane.last_good.epoch_id == 0
        assert harness.plane.ledger.last_published("fleet") == 0

    def test_unvalidated_epoch_cannot_be_published(self, tmp_path):
        harness = Harness(tmp_path)
        harness.settle_bootstrap()
        rogue = BudgetEpoch(
            epoch_id=harness.plane.ledger.next_epoch_id,
            budgets={"pipeline": {"seg0": 8 * _MS, "seg1": 10 * _MS,
                                  "seg2": 12 * _MS}},
        )
        harness.plane.ledger.record_epoch(rogue)
        with pytest.raises(EpochLedgerError, match="no shadow"):
            harness.plane.distributor.publish(rogue, VEHICLES, "fleet")
        assert all(eid != rogue.epoch_id for _, eid in harness.sent)


class TestCanaryLifecycle:
    def test_accepted_candidate_canaries_then_promotes(self, tmp_path):
        harness = Harness(tmp_path)
        now = harness.settle_bootstrap()
        harness.feed_window()
        staged = harness.plane.consider(now)
        assert staged is not None and staged.epoch_id == 1
        assert harness.plane.state is ControlPlaneState.CANARY
        now = harness.run(now, 1)
        # Only the canary cohort saw the epoch so far.
        assert {v for v, eid in harness.sent if eid == 1} == {"veh00"}
        now = harness.run(now, 8)  # probation passes quietly
        assert harness.plane.promotions == 1
        assert harness.plane.state is ControlPlaneState.IDLE
        assert harness.plane.last_good.epoch_id == 1
        assert {v for v, eid in harness.sent if eid == 1} == set(VEHICLES)

    def test_rejected_candidate_never_reaches_a_vehicle(self, tmp_path):
        harness = Harness(tmp_path)
        now = harness.settle_bootstrap()
        harness.feed_window()
        bad = BudgetEpoch(
            epoch_id=harness.plane.ledger.next_epoch_id,
            budgets={"pipeline": {"seg0": 1 * _MS, "seg1": 10 * _MS,
                                  "seg2": 12 * _MS}},
        )
        assert harness.plane.consider(now, candidate=bad) is None
        assert harness.plane.rejections == 1
        assert harness.plane.state is ControlPlaneState.IDLE
        assert bad.epoch_id in harness.plane.ledger.rejected
        assert all(eid != bad.epoch_id for _, eid in harness.sent)

    def test_canary_regression_rolls_back_to_last_good(self, tmp_path):
        harness = Harness(tmp_path)
        now = harness.settle_bootstrap()
        harness.feed_window()
        staged = harness.plane.consider(now)
        assert staged is not None
        now = harness.run(now, 2)  # canary applied; probation starts
        harness.violations["veh00"] += 3  # canary regresses, control flat
        now = harness.run(now, 8)
        assert harness.plane.rollback_count == 1
        assert harness.plane.promotions == 0
        rollback_id = harness.plane.ledger.rollbacks[0][1]
        rollback = harness.plane.ledger.epochs[rollback_id]
        assert rollback.rollback_of == staged.epoch_id
        # Rollback budgets are byte-identical to the proven assignment.
        assert rollback.digest() == harness.plane.ledger.epochs[0].digest()
        assert harness.plane.state is ControlPlaneState.IDLE
        assert harness.plane.last_good.epoch_id == rollback_id

    def test_fleet_wide_regression_is_not_blamed_on_the_canary(
        self, tmp_path
    ):
        harness = Harness(tmp_path)
        now = harness.settle_bootstrap()
        harness.feed_window()
        assert harness.plane.consider(now) is not None
        now = harness.run(now, 2)
        for vehicle in VEHICLES:  # everyone regresses equally
            harness.violations[vehicle] += 3
        harness.run(now, 8)
        assert harness.plane.rollback_count == 0
        assert harness.plane.promotions == 1


class TestRecovery:
    def test_crash_mid_canary_walks_the_cohort_back(self, tmp_path):
        harness = Harness(tmp_path)
        now = harness.settle_bootstrap()
        harness.feed_window()
        staged = harness.plane.consider(now)
        assert staged is not None
        harness.run(now, 1)  # canary has applied epoch 1
        harness.plane.close()

        sent = []
        plane, recovery = BudgetControlPlane.recover(
            {harness.chain.name: harness.chain}, VEHICLES, tmp_path,
            send=lambda payload, vehicle, now: sent.append(vehicle),
        )
        assert recovery["abandoned"] == [staged.epoch_id]
        assert recovery["last_good"] == 0
        # The recovery rollback is ledgered and published fleet-wide.
        assert plane.ledger.rollbacks[-1][0] == staged.epoch_id
        rollback_id = plane.ledger.rollbacks[-1][1]
        assert plane.ledger.status_of(rollback_id).value == "fleet"
        assert plane.ledger.epochs[rollback_id].digest() == \
            plane.ledger.epochs[0].digest()
        plane.tick(0)
        assert set(sent) == set(VEHICLES)
        plane.close()

    def test_crash_between_validate_and_publish_abandons_the_draft(
        self, tmp_path
    ):
        harness = Harness(tmp_path)
        harness.settle_bootstrap()
        harness.feed_window()
        # Stage a validated-but-unpublished draft directly on the
        # ledger (consider() cannot be interrupted mid-call).
        draft = BudgetEpoch(
            epoch_id=harness.plane.ledger.next_epoch_id,
            budgets={"pipeline": {"seg0": 7 * _MS, "seg1": 10 * _MS,
                                  "seg2": 12 * _MS}},
        )
        harness.plane.ledger.record_epoch(draft)
        harness.plane.ledger.record_validated(draft.epoch_id, {})
        harness.plane.close()

        sent = []
        plane, recovery = BudgetControlPlane.recover(
            {harness.chain.name: harness.chain}, VEHICLES, tmp_path,
            send=lambda payload, vehicle, now: sent.append(vehicle),
        )
        assert recovery["abandoned"] == [draft.epoch_id]
        # No publication was invented for the draft...
        assert plane.ledger.status_of(draft.epoch_id).value == "validated"
        # ...and the fleet re-targets the last published epoch.
        assert plane.last_good.epoch_id == 0
        plane.close()
