"""Tests for per-key remote monitoring (keyed DDS topics).

Two publishers (e.g. two zones of a sensor array) share one topic with
distinct instance keys; the group must supervise each stream
independently: a missing sample of one key raises an exception for that
key only.
"""

import pytest

from _harness import Message, activation_of, message_topic, two_ecu_world

from repro.core import (
    KeyedSyncMonitorGroup,
    MKConstraint,
    MonitorThread,
    Outcome,
    PropagateAlways,
    RecoverAlways,
)
from repro.core.segments import remote_segment
from repro.ros import Node
from repro.sim import msec


def keyed_setup(seed=1, d_mon=msec(5), period=msec(100), handler=None):
    sim, ecu1, ecu2, domain = two_ecu_world(seed=seed)
    sender = Node(domain, ecu1, "sender", priority=40)
    receiver = Node(domain, ecu2, "receiver", priority=30)
    topic = message_topic("array")
    received = []
    sub = receiver.create_subscription(
        topic,
        lambda s: received.append((s.key, s.data.frame_index, s.recovered)),
    )
    pub_a = sender.create_publisher(topic)
    pub_b = sender.create_publisher(topic)
    segment = remote_segment("seg_array", "array", "ecu1", "ecu2", d_mon=d_mon)
    monitor_thread = MonitorThread(ecu2, priority=99)
    group = KeyedSyncMonitorGroup(
        segment, sub.reader, period=period,
        handler=handler or PropagateAlways(),
        mk=MKConstraint(2, 10), monitor_thread=monitor_thread,
        activation_fn=activation_of,
    )
    return sim, pub_a, pub_b, group, received


class TestKeyedMonitoring:
    def test_one_monitor_per_key(self):
        sim, pub_a, pub_b, group, received = keyed_setup()
        for i in range(3):
            sim.schedule_at(
                msec(1) + i * msec(100),
                lambda i=i: pub_a.writer.write(Message(frame_index=i), key="zone_a"),
            )
            sim.schedule_at(
                msec(2) + i * msec(100),
                lambda i=i: pub_b.writer.write(Message(frame_index=i), key="zone_b"),
            )
        sim.run(until=msec(250))
        group.stop()
        assert set(group.monitors) == {"zone_a", "zone_b"}
        assert len(received) == 6

    def test_missing_key_detected_independently(self):
        sim, pub_a, pub_b, group, received = keyed_setup()
        for i in range(4):
            sim.schedule_at(
                msec(1) + i * msec(100),
                lambda i=i: pub_a.writer.write(Message(frame_index=i), key="zone_a"),
            )
            # zone_b skips frame 2.
            if i != 2:
                sim.schedule_at(
                    msec(2) + i * msec(100),
                    lambda i=i: pub_b.writer.write(Message(frame_index=i), key="zone_b"),
                )
        sim.run(until=msec(350))
        group.stop()
        mon_a = group.monitors["zone_a"]
        mon_b = group.monitors["zone_b"]
        assert mon_a.exceptions == []
        assert [e.activation for e in mon_b.exceptions] == [2]
        assert mon_b.segment.name == "seg_array[zone_b]"

    def test_per_key_recovery_is_keyed(self):
        handler = RecoverAlways(
            lambda ctx: Message(frame_index=ctx.exception.activation)
        )
        sim, pub_a, pub_b, group, received = keyed_setup(handler=handler)
        for i in range(4):
            sim.schedule_at(
                msec(1) + i * msec(100),
                lambda i=i: pub_a.writer.write(Message(frame_index=i), key="zone_a"),
            )
            if i != 2:
                sim.schedule_at(
                    msec(2) + i * msec(100),
                    lambda i=i: pub_b.writer.write(Message(frame_index=i), key="zone_b"),
                )
        sim.run(until=msec(350))
        group.stop()
        recovered = [(k, f) for k, f, r in received if r]
        assert recovered == [("zone_b", 2)]

    def test_default_key_falls_back_to_writer_guid(self):
        sim, pub_a, pub_b, group, received = keyed_setup()
        # No explicit keys: the two writers' GUIDs separate the streams.
        for i in range(2):
            sim.schedule_at(
                msec(1) + i * msec(100),
                lambda i=i: pub_a.writer.write(Message(frame_index=i)),
            )
            sim.schedule_at(
                msec(2) + i * msec(100),
                lambda i=i: pub_b.writer.write(Message(frame_index=i)),
            )
        sim.run(until=msec(150))
        group.stop()
        assert len(group.monitors) == 2

    def test_late_sample_of_one_key_discarded(self):
        sim, pub_a, pub_b, group, received = keyed_setup(d_mon=msec(5))
        sim.schedule_at(msec(1), lambda: pub_a.writer.write(Message(frame_index=0), key="a"))
        # Frame 1 of key 'a' arrives 60 ms late (deadline at 106 ms).
        sim.schedule_at(msec(161), lambda: pub_a.writer.write(Message(frame_index=1), key="a"))
        sim.schedule_at(msec(201), lambda: pub_a.writer.write(Message(frame_index=2), key="a"))
        sim.run(until=msec(280))
        group.stop()
        frames = [f for k, f, _r in received if k == "a"]
        assert 1 not in frames
        assert 2 in frames
        assert group.monitors["a"].late_discarded == 1
