"""``python -m repro warehouse`` and the bench-compare attribution gate.

Drives the real CLI entry points in-process: trace --export-run writes
a bundle, warehouse ingest/query/diff/report consume it, and a failing
``bench --compare`` with ``--warehouse`` attaches the attribution-diff
artifact.
"""

import json

import pytest

from repro.bench import cli as bench_cli
from repro.bench.harness import compare_suites
from repro.bench.suites import SUITES
from repro.experiments.runner import main as runner_main
from repro.perception.stack import PerceptionStack, StackConfig
from repro.tracing.cli import main as trace_main
from repro.warehouse import (
    DIFF_SCHEMA,
    RunKey,
    RunManifest,
    SpanWarehouse,
    attach_attribution_diff,
    build_regression_artifact,
    load_run_bundle,
    write_run_bundle,
)
from repro.warehouse.cli import main as warehouse_main
from repro.warehouse.query import RunSelector

FRAMES = 8


@pytest.fixture(scope="module")
def bundles(tmp_path_factory):
    """Two run bundles + a warehouse pre-loaded with both."""
    root = tmp_path_factory.mktemp("warehouse_cli")
    for run_id, commit, scenario, config in (
        ("base", "cA", "benign", StackConfig(seed=1, spans=True)),
        ("head", "cB", "lossy_link",
         StackConfig(seed=7, link_loss=0.08, spans=True)),
    ):
        stack = PerceptionStack(config)
        stack.run(n_frames=FRAMES)
        write_run_bundle(
            stack.spans, stack.chains, FRAMES, root / run_id,
            RunKey(run_id=run_id, commit=commit, suite="trace",
                   scenario=scenario, vehicle="veh0"),
        )
    db = root / "wh.db"
    code = warehouse_main(
        ["ingest", str(db), str(root / "base"), str(root / "head")]
    )
    assert code == 0
    return root, db


class TestIngestCommand:
    def test_reingest_is_skipped(self, bundles, capsys):
        root, db = bundles
        code = warehouse_main(["ingest", str(db), str(root / "base")])
        assert code == 0
        assert "skipped (already ingested) base" in capsys.readouterr().out

    def test_not_a_bundle_raises(self, bundles, tmp_path):
        _, db = bundles
        with pytest.raises(FileNotFoundError, match="not a run bundle"):
            warehouse_main(["ingest", str(db), str(tmp_path)])

    def test_bundle_round_trip(self, bundles):
        root, _ = bundles
        manifest, spans = load_run_bundle(root / "base")
        assert manifest.key.run_id == "base"
        assert manifest.key.commit == "cA"
        assert manifest.n_frames == FRAMES
        assert spans
        assert all(span.end is not None for span in spans)


class TestQueryCommand:
    def test_cohort_query(self, bundles, capsys):
        _, db = bundles
        code = warehouse_main(["query", str(db), "--select", "commit=cA"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cohort [commit=cA]: 1 runs" in out
        assert "telescoping OK" in out

    def test_single_chain_filter(self, bundles, capsys):
        _, db = bundles
        code = warehouse_main(
            ["query", str(db), "--chain", "front_objects"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "front_objects" in out
        assert "rear_objects" not in out

    def test_no_match_exits_nonzero(self, bundles, capsys):
        _, db = bundles
        assert warehouse_main(
            ["query", str(db), "--select", "commit=nope"]
        ) == 1
        assert "no runs match" in capsys.readouterr().out

    def test_unknown_chain_exits_nonzero(self, bundles, capsys):
        _, db = bundles
        assert warehouse_main(["query", str(db), "--chain", "nope"]) == 1
        assert "unknown chain" in capsys.readouterr().out

    def test_bad_selector_is_a_usage_error(self, bundles):
        _, db = bundles
        with pytest.raises(SystemExit) as excinfo:
            warehouse_main(["query", str(db), "--select", "branch=main"])
        assert excinfo.value.code == 2


class TestDiffCommand:
    def test_diff_writes_document(self, bundles, tmp_path, capsys):
        _, db = bundles
        out_path = tmp_path / "diff.json"
        code = warehouse_main([
            "diff", str(db), "--base", "commit=cA", "--head", "commit=cB",
            "--json", str(out_path),
        ])
        assert code == 0
        assert "attribution diff" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        assert document["schema"] == DIFF_SCHEMA
        assert document["base"]["runs"] == ["base"]
        assert document["head"]["runs"] == ["head"]

    def test_empty_side_exits_nonzero(self, bundles, capsys):
        _, db = bundles
        assert warehouse_main([
            "diff", str(db), "--base", "commit=nope", "--head", "commit=cB",
        ]) == 1
        assert "no runs match the base selector" in capsys.readouterr().out


class TestReportCommand:
    def test_inventory(self, bundles, capsys):
        _, db = bundles
        assert warehouse_main(["report", str(db)]) == 0
        out = capsys.readouterr().out
        assert "base" in out and "head" in out
        assert "2 runs" in out and "digest" in out

    def test_empty_warehouse(self, tmp_path, capsys):
        assert warehouse_main(["report", str(tmp_path / "empty.db")]) == 0
        assert "warehouse is empty" in capsys.readouterr().out


class TestTraceExportIntegration:
    def test_trace_export_run_ingests(self, tmp_path, capsys):
        bundle = tmp_path / "run"
        code = trace_main([
            "--scenario", "benign", "--frames", "6", "--no-report",
            "--export-run", str(bundle), "--run-id", "t1",
            "--commit", "deadbeef",
        ])
        assert code == 0
        assert "wrote run bundle t1" in capsys.readouterr().out
        db = tmp_path / "wh.db"
        assert warehouse_main(["ingest", str(db), str(bundle)]) == 0
        assert "ingested t1" in capsys.readouterr().out

    def test_routed_from_runner(self, tmp_path, capsys):
        assert runner_main(
            ["warehouse", "report", str(tmp_path / "empty.db")]
        ) == 0
        assert "warehouse is empty" in capsys.readouterr().out


def synthetic_suite(medians, suite="kernel"):
    return {
        "schema": "repro-bench/1",
        "suite": suite,
        "python": "3.x",
        "benchmarks": {
            name: {
                "layer": suite, "iterations": 3, "units": 100,
                "unit": "events", "median_ns": median, "p95_ns": median,
                "min_ns": median, "units_per_s": 100 / (median / 1e9),
            }
            for name, median in medians.items()
        },
    }


class TestBenchGate:
    def test_passing_report_attaches_nothing(self, bundles, tmp_path):
        _, db = bundles
        report = compare_suites(
            synthetic_suite({"a": 100}), synthetic_suite({"a": 100})
        )
        assert report.passed
        out = tmp_path / "diff.json"
        assert attach_attribution_diff(
            report, db, out, RunSelector(), RunSelector()
        ) is None
        assert not out.exists()

    def test_failing_report_writes_artifact(self, bundles, tmp_path):
        _, db = bundles
        report = compare_suites(
            synthetic_suite({"a": 200, "b": 100}),
            synthetic_suite({"a": 100, "b": 100, "gone": 50}),
        )
        assert not report.passed
        out = tmp_path / "diff.json"
        path = attach_attribution_diff(
            report, db, out,
            RunSelector.parse("commit=cA"), RunSelector.parse("commit=cB"),
        )
        assert path == out
        document = json.loads(out.read_text())
        assert document["schema"] == DIFF_SCHEMA
        assert document["bench"]["suite"] == "kernel"
        assert document["bench"]["flagged"] == ["a", "gone"]
        assert "regressed_categories" in document

    def test_build_regression_artifact_annotates(self, bundles):
        _, db = bundles
        with SpanWarehouse(db) as store:
            artifact = build_regression_artifact(
                store, RunSelector.parse("commit=cA"),
                RunSelector.parse("commit=cB"),
                flagged=["ingest_frame"], suite="e2e", threshold=0.25,
            )
        assert artifact["bench"] == {
            "suite": "e2e", "flagged": ["ingest_frame"], "threshold": 0.25,
        }
        for entry in artifact["regressed_categories"]:
            assert entry["ratio_p95"] > 1.25

    def test_bench_cli_end_to_end(self, bundles, tmp_path, monkeypatch,
                                  capsys):
        """A failing --compare with --warehouse emits the artifact."""
        _, db = bundles
        monkeypatch.setitem(
            SUITES, "kernel", [("noop", "kernel", "events", lambda: 10)]
        )
        baseline = tmp_path / "BENCH_kernel.json"
        baseline.write_text(json.dumps(synthetic_suite({"noop": 1})))
        artifact = tmp_path / "attribution_diff.json"
        code = bench_cli.main([
            "--suite", "kernel", "--quick", "--compare", str(baseline),
            "--warehouse", str(db),
            "--attr-base", "commit=cA", "--attr-head", "commit=cB",
            "--attribution-out", str(artifact),
        ])
        assert code == 1  # the regression still fails the gate
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert f"wrote attribution diff to {artifact}" in out
        document = json.loads(artifact.read_text())
        assert document["bench"]["flagged"] == ["noop"]
        assert document["base"]["runs"] == ["base"]

    def test_bench_cli_without_warehouse_skips_artifact(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setitem(
            SUITES, "kernel", [("noop", "kernel", "events", lambda: 10)]
        )
        baseline = tmp_path / "BENCH_kernel.json"
        baseline.write_text(json.dumps(synthetic_suite({"noop": 1})))
        code = bench_cli.main([
            "--suite", "kernel", "--quick", "--compare", str(baseline),
        ])
        assert code == 1
        assert "attribution diff" not in capsys.readouterr().out
