"""Edge cases of the local monitoring machinery."""

import pytest

from _harness import Message, PipelineWorld, activation_of

from repro.core import MKConstraint, Outcome, SkipGate
from repro.core.local_monitor import MonitorCosts
from repro.dds.topic import Sample, Topic


class TestSkipGateCounterMode:
    def sample(self, data="x", recovered=False):
        return Sample(
            topic=Topic("t"), data=data, source_timestamp=0,
            sequence_number=0, recovered=recovered,
        )

    def test_counter_mode_without_activation_fn(self):
        gate = SkipGate(activation_fn=None)
        gate.add(None)
        assert gate._filter(self.sample()) is False
        assert gate._filter(self.sample()) is True
        assert gate.suppressed == 1

    def test_activation_mode_skips_exact_frame(self):
        gate = SkipGate(activation_fn=lambda s: s.data.frame_index)
        gate.add(5)
        ok = self.sample(data=Message(frame_index=4))
        late = self.sample(data=Message(frame_index=5))
        assert gate._filter(ok) is True
        assert gate._filter(late) is False
        # Idempotent: frame 5 only suppressed once.
        assert gate._filter(self.sample(data=Message(frame_index=5))) is True

    def test_recovered_samples_never_suppressed(self):
        gate = SkipGate(activation_fn=None)
        gate.add(None)
        assert gate._filter(self.sample(recovered=True)) is True
        # The pending suppression still applies to the next real sample.
        assert gate._filter(self.sample()) is False

    def test_duplicate_install_is_noop(self):
        from repro.sim import Ecu, Simulator
        from repro.dds import DdsDomain

        sim = Simulator()
        ecu = Ecu(sim, "e")
        domain = DdsDomain(sim)
        part = domain.create_participant(ecu, "p")
        writer = part.create_writer(Topic("t"))
        gate = SkipGate()
        gate.install_writer(writer)
        gate.install_writer(writer)
        assert len(writer.publish_filters) == 1


class TestBufferOverflow:
    def test_tiny_start_buffer_counts_overflows(self):
        """With capacity 1 and no monitor processing (all cores hogged),
        overflows are counted rather than corrupting state."""
        from repro.sim import Compute, msec

        world = PipelineWorld(worker_time=lambda i: msec(1), d_mon=msec(50))
        # Replace buffers with tiny ones.
        from repro.core.local_monitor import EventRingBuffer

        world.runtime.start_buffer = EventRingBuffer(capacity=1)
        # Hog every core at a priority above the monitor so it can never
        # drain the buffer.
        for i in range(len(world.ecu.scheduler.cores)):
            world.ecu.spawn(f"hog{i}", lambda _: iter([Compute(msec(10_000))]),
                            priority=100)
        world.publish_frames(5)
        world.run(until=msec(600))
        assert world.runtime.start_buffer.overflows >= 3


class TestMonitorCosts:
    def test_zero_costs_allowed(self):
        from repro.sim import msec

        world = PipelineWorld(worker_time=lambda i: msec(30), d_mon=msec(10))
        world.monitor.costs = MonitorCosts(
            start_event=0, end_event=0, exception_detect=0, remote_entry=0
        )
        world.runtime.handler.cost_ns = 0
        world.publish_frames(3)
        world.run(until=msec(500))
        # Exceptions still raised, with zero-overhead detection.
        assert len(world.runtime.exceptions) == 3
        for exc in world.runtime.exceptions:
            assert exc.detection_latency == 0


class TestMonitorLatencySamples:
    def test_monitor_latency_recorded_per_start_event(self):
        from repro.sim import msec

        world = PipelineWorld(worker_time=lambda i: msec(1), d_mon=msec(50))
        world.publish_frames(6)
        world.run(until=msec(800))
        assert len(world.runtime.monitor_latency_samples) == 6
        assert all(v >= 0 for v in world.runtime.monitor_latency_samples)
