"""Unit tests for execution-time models."""

import numpy as np
import pytest

from repro.sim import (
    AffineModel,
    ConstantModel,
    HeavyTailModel,
    LogNormalModel,
    ShiftedParetoModel,
    Simulator,
    msec,
    usec,
)
from repro.sim.workload import compute_work


def rng():
    return np.random.default_rng(123)


class TestConstantModel:
    def test_sample_is_constant(self):
        model = ConstantModel(usec(50))
        assert model.sample(rng()) == usec(50)
        assert model.sample(rng(), size=1000) == usec(50)

    def test_bound_equals_value(self):
        assert ConstantModel(100).bound() == 100

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantModel(-1)


class TestAffineModel:
    def test_scales_with_size(self):
        model = AffineModel(base_ns=usec(10), per_item_ns=100)
        assert model.sample(rng(), size=0) == usec(10)
        assert model.sample(rng(), size=1000) == usec(10) + 100_000

    def test_noise_within_bounds(self):
        model = AffineModel(base_ns=usec(100), per_item_ns=0, noise=0.2)
        generator = rng()
        samples = [model.sample(generator) for _ in range(500)]
        assert all(usec(80) <= s <= usec(120) for s in samples)
        assert len(set(samples)) > 1

    def test_bound_covers_all_samples(self):
        model = AffineModel(base_ns=usec(100), per_item_ns=10, noise=0.3)
        bound = model.bound(size=50)
        generator = rng()
        assert all(model.sample(generator, size=50) <= bound for _ in range(500))

    def test_invalid_noise_rejected(self):
        with pytest.raises(ValueError):
            AffineModel(1, noise=1.5)


class TestLogNormalModel:
    def test_median_roughly_matches(self):
        model = LogNormalModel(median_ns=msec(10), sigma=0.4)
        generator = rng()
        samples = [model.sample(generator) for _ in range(4000)]
        assert msec(9) < np.median(samples) < msec(11)

    def test_always_positive(self):
        model = LogNormalModel(median_ns=100, sigma=2.0)
        generator = rng()
        assert all(model.sample(generator) >= 1 for _ in range(1000))

    def test_invalid_median_rejected(self):
        with pytest.raises(ValueError):
            LogNormalModel(0)


class TestShiftedParetoModel:
    def test_minimum_is_scale(self):
        model = ShiftedParetoModel(scale_ns=msec(1), alpha=2.0)
        generator = rng()
        samples = [model.sample(generator) for _ in range(2000)]
        assert min(samples) >= msec(1)

    def test_has_heavy_tail(self):
        model = ShiftedParetoModel(scale_ns=msec(1), alpha=1.5)
        generator = rng()
        samples = [model.sample(generator) for _ in range(5000)]
        assert max(samples) > 5 * np.median(samples)


class TestHeavyTailModel:
    def test_tail_probability_zero_never_draws_tail(self):
        model = HeavyTailModel(
            body=ConstantModel(100), tail=ConstantModel(10_000), tail_prob=0.0
        )
        generator = rng()
        assert all(model.sample(generator) == 100 for _ in range(200))

    def test_tail_probability_one_always_draws_tail(self):
        model = HeavyTailModel(
            body=ConstantModel(100), tail=ConstantModel(10_000), tail_prob=1.0
        )
        generator = rng()
        assert all(model.sample(generator) == 10_000 for _ in range(200))

    def test_mixture_fraction_approximates_tail_prob(self):
        model = HeavyTailModel(
            body=ConstantModel(100), tail=ConstantModel(10_000), tail_prob=0.1
        )
        generator = rng()
        samples = [model.sample(generator) for _ in range(5000)]
        frac = sum(1 for s in samples if s == 10_000) / len(samples)
        assert 0.07 < frac < 0.13

    def test_invalid_prob_rejected(self):
        with pytest.raises(ValueError):
            HeavyTailModel(ConstantModel(1), ConstantModel(2), tail_prob=1.5)


class TestComputeWork:
    def test_uses_named_stream_deterministically(self):
        model = LogNormalModel(median_ns=msec(1), sigma=0.5)
        a = compute_work(Simulator(seed=9), model, "svc", size=10)
        b = compute_work(Simulator(seed=9), model, "svc", size=10)
        assert a == b
